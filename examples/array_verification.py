#!/usr/bin/env python3
"""Verify array-manipulating programs (universally quantified invariants).

Reproduces the INITCHECK narrative of Section 2.2 on a couple of programs of
the built-in suite: the proof requires universally quantified predicates,
which the path-invariant refiner synthesizes from the path program.

Run with:  python examples/array_verification.py  [program ...]
"""

import sys

from repro import verify
from repro.lang import get_program, list_programs

DEFAULT_PROGRAMS = ["initcheck", "array_init_const", "array_init_buggy"]


def main() -> None:
    names = sys.argv[1:] or DEFAULT_PROGRAMS
    for name in names:
        if name not in list_programs():
            print(f"unknown program {name!r}; available: {', '.join(list_programs())}")
            continue
        print(f"=== {name} ===")
        result = verify(get_program(name), max_refinements=4)
        print(result.summary())
        if result.is_unsafe and result.counterexample is not None:
            inputs = result.counterexample.witness_inputs(result.program.variables)
            print("bug witness (initial values):",
                  {k: str(v) for k, v in inputs.items()})
        elif result.is_safe and result.precision is not None:
            quantified = [
                str(predicate)
                for location in result.precision.locations()
                for predicate in result.precision.predicates_at(location)
                if predicate.has_quantifier()
            ]
            print("quantified predicates used in the proof:")
            for predicate in sorted(set(quantified)):
                print("  ", predicate)
        print()


if __name__ == "__main__":
    main()
