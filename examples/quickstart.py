#!/usr/bin/env python3
"""Quickstart: verify a small program with path-invariant CEGAR.

Run with:  python examples/quickstart.py
"""

from repro import verify

SOURCE = """
void double_counter(int n) {
  int i, a;
  assume(n >= 0);
  i = 0;
  a = 0;
  while (i < n) {
    a = a + 2;
    i = i + 1;
  }
  assert(a == 2 * n);
}
"""


def main() -> None:
    print("Verifying double_counter with path-invariant refinement ...")
    result = verify(SOURCE, refiner="path-invariant", max_refinements=5)
    print(result.summary())
    print()
    print("Predicates discovered per location:")
    print(result.precision)

    print()
    print("For comparison, the classic path-formula refinement on the same program:")
    baseline = verify(SOURCE, refiner="path-formula", max_refinements=3)
    print(baseline.summary())
    lengths = [r.counterexample_length for r in baseline.iterations if r.counterexample_length]
    print(f"counterexample lengths per iteration: {lengths} (the loop is being unrolled)")


if __name__ == "__main__":
    main()
