#!/usr/bin/env python3
"""Quickstart: verify programs with the incremental lazy-abstraction engine.

Run with:  python examples/quickstart.py
"""

from repro import Session, VerifierOptions, verify
from repro.core import Budget, VerificationEngine

SOURCE = """
void double_counter(int n) {
  int i, a;
  assume(n >= 0);
  i = 0;
  a = 0;
  while (i < n) {
    a = a + 2;
    i = i + 1;
  }
  assert(a == 2 * n);
}
"""


def main() -> None:
    print("One-call API: verify() with path-invariant refinement ...")
    result = verify(SOURCE, options=VerifierOptions(max_refinements=5))
    print(result.summary())
    print()
    print("Predicates discovered per location:")
    print(result.precision)

    print()
    print("The engine behind it: persistent ART, budgets, pluggable strategy ...")
    engine = VerificationEngine(
        SOURCE,
        strategy="error-distance",
        budget=Budget(max_refinements=5, max_nodes=2000, max_seconds=60.0),
    )
    result = engine.run()
    for record in result.iterations:
        repaired = (
            f", repair {record.repair}" if record.repair is not None else ""
        )
        print(
            f"  iteration {record.iteration}: "
            f"{record.nodes_created} nodes created, "
            f"{record.post_decisions} abstract-post decisions"
            f"{repaired}"
        )
    stats = result.engine_stats
    print(
        f"  -> {result.verdict} with {stats['nodes_reused']} node-reuses; "
        f"a restart engine would have re-derived each of those from scratch"
    )

    print()
    print("Sessions: one shared checker + precision store, warm-started batches ...")
    session = Session(VerifierOptions(max_refinements=5))
    batch = session.run_many(
        ["forward", "lock_step", "simple_unsafe", ("inline", SOURCE)], jobs=2
    )
    for row in batch:
        print(
            f"  {row['name']:12s} {row['verdict']:7s} "
            f"{row['seconds']:6.2f}s  {row['refinements']} refinements, "
            f"{row['post_decisions']} post decisions"
        )
    cold = next(row for row in batch if row["name"] == "forward")
    warm = session.run("forward")  # seeded from the batch's banked precision
    print(
        f"  warm rerun of forward: {warm.post_decisions()} post decisions "
        f"(cold run paid {cold['post_decisions']}), "
        f"{warm.num_refinements} refinements needed"
    )
    print()
    print("Same corpus from the shell:  python -m repro batch forward lock_step --jobs 2")

    print()
    print("For comparison, the classic path-formula refinement on the same program:")
    baseline = verify(SOURCE, options=VerifierOptions(refiner="path-formula", max_refinements=3))
    print(baseline.summary())
    lengths = [r.counterexample_length for r in baseline.iterations if r.counterexample_length]
    print(f"counterexample lengths per iteration: {lengths} (the loop is being unrolled)")

    print()
    print("The portfolio picks the refiner for you (and demotes a diverging one):")
    portfolio = verify(
        SOURCE,
        options=VerifierOptions(refiner="portfolio", portfolio_mode="round-robin"),
    )
    print(portfolio.summary())
    print(
        f"  -> winner: {portfolio.winner}; per-arm divergence verdicts: "
        + ", ".join(
            f"{arm['refiner']}={arm['budget_class']}" for arm in portfolio.arms
        )
    )
    print("Same from the shell:  python -m repro verify forward --refiner portfolio")


if __name__ == "__main__":
    main()
