#!/usr/bin/env python3
"""Explore the central objects of the paper on the FORWARD example.

The script builds the FORWARD program from Figure 1(a), extracts the first
spurious counterexample, constructs its path program (Figure 1(c)), runs the
path-invariant synthesizer on it, and prints the resulting invariant map.

Run with:  python examples/path_program_exploration.py
"""

from repro.core import AbstractReachability, Precision, build_path_program
from repro.invgen import PathInvariantSynthesizer
from repro.lang import format_path, format_program, get_program
from repro.smt.vcgen import VcChecker


def main() -> None:
    program = get_program("forward")
    print("=== The FORWARD program (Figure 1a) as a transition system ===")
    print(format_program(program))

    checker = VcChecker()
    outcome = AbstractReachability(program, checker).run(Precision())
    assert outcome.counterexample is not None
    print("\n=== First abstract counterexample (cf. Figure 1b) ===")
    print(format_path(outcome.counterexample))

    path_program = build_path_program(program, outcome.counterexample)
    print("\n=== Its path program (cf. Figure 1c) ===")
    print("nested blocks:")
    for block in path_program.blocks:
        print("  ", block)
    print(format_program(path_program.program))

    print("\n=== Path invariant synthesis ===")
    synthesizer = PathInvariantSynthesizer(checker)
    result = synthesizer.synthesize(path_program.program)
    print(f"success: {result.success}  (candidates: {result.candidates_proposed} proposed, "
          f"{result.candidates_surviving} inductive, {result.houdini_iterations} Houdini sweeps)")
    if result.invariant_map is not None:
        print("invariant map:")
        print(result.invariant_map)


if __name__ == "__main__":
    main()
