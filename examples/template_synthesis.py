#!/usr/bin/env python3
"""The Section 5 FORWARD template experiment, step by step.

First the equality template ``c_i i + c_n n + c_a a + c_b b + c = 0`` is
tried on the FORWARD path program and fails; then an inequality conjunct is
added (the paper's template refinement) and the instantiation succeeds with
``a + b = 3i  /\\  a + b <= 3n``.

Run with:  python examples/template_synthesis.py
"""

import time

from repro.core import AbstractReachability, PathFormulaRefiner, Precision, build_path_program
from repro.invgen import FarkasEngine, cutpoints, equality_template
from repro.lang import get_program
from repro.logic.terms import Var
from repro.smt.vcgen import VcChecker


def forward_path_program():
    program = get_program("forward")
    checker = VcChecker()
    precision = Precision()
    reach = AbstractReachability(program, checker)
    refiner = PathFormulaRefiner()
    while True:
        outcome = reach.run(precision)
        assert outcome.counterexample is not None
        path = outcome.counterexample
        visited = [path[0].source] + [t.target for t in path]
        if len(set(visited)) < len(visited):
            return build_path_program(program, path).program
        refiner.refine(program, path, precision)


def main() -> None:
    path_program = forward_path_program()
    variables = [Var(name) for name in ("a", "b", "i", "n")]
    engine = FarkasEngine()
    cuts = cutpoints(path_program)

    print("=== Attempt 1: equality template only ===")
    start = time.perf_counter()
    result = engine.synthesize(path_program, {c: equality_template(variables) for c in cuts})
    print(f"success: {result.success}   ({time.perf_counter() - start:.3f}s, "
          f"{result.lp_calls} LP calls)   reason: {result.reason}")

    print("\n=== Attempt 2: equality template conjoined with an inequality ===")
    start = time.perf_counter()
    templates = {
        c: equality_template(variables).with_extra_inequality(variables) for c in cuts
    }
    result = engine.synthesize(path_program, templates)
    print(f"success: {result.success}   ({time.perf_counter() - start:.3f}s, "
          f"{result.lp_calls} LP calls)")
    for location, formula in result.assertions.items():
        print(f"  eta({location}) = {formula}")


if __name__ == "__main__":
    main()
