"""E13 — Chaos bar: the process-backend daemon under injected worker crashes.

The acceptance bar for crash isolation (ISSUE 10): with ~20% of the suite's
programs drawing a *real* ``SIGKILL`` of their worker process on the first
attempt, the daemon still answers every request (zero lost requests), every
verdict matches the fault-free run, and the whole suite finishes within
**1.5x** the fault-free wall-clock.

The schedule is seeded so the victim set — and therefore the measured
overhead — is reproducible run to run.  The fault rows this produces are
marked ``fault_injected`` downstream so trend tooling never treats the
deliberately-slowed run as a regression.
"""

import random
import time

import pytest

from common import record, run_once
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.serve import ServiceClient, ServiceConfig, VerificationService

#: The 12-program suite with per-program refinement budgets (mirrors
#: benchmarks/run_all.py and tests/serve/test_chaos.py).
SUITE = [
    ("forward", 8),
    ("initcheck", 8),
    ("double_counter", 8),
    ("up_down", 8),
    ("lock_step", 8),
    ("diamond_safe", 8),
    ("simple_safe", 8),
    ("simple_unsafe", 8),
    ("array_init_const", 8),
    ("array_copy", 8),
    ("array_init_buggy", 8),
    ("initcheck_buggy", 5),
]

SEED = 2027

#: Fraction of the suite whose first attempt SIGKILLs its worker process.
CRASH_RATE = 0.2


def crash_plan():
    rng = random.Random(SEED)
    count = max(1, round(CRASH_RATE * len(SUITE)))
    victims = rng.sample([name for name, _ in SUITE], count)
    plan = FaultPlan(
        [
            FaultSpec(kind="kill-worker", key=name, attempts=(0,))
            for name in victims
        ]
    )
    return plan, victims


def run_suite():
    service = VerificationService(
        ServiceConfig(workers=4, max_queue=32, worker_backend="process")
    ).start()
    try:
        started = time.perf_counter()
        with ServiceClient(port=service.port, timeout=300.0) as client:
            docs = client.submit_many(
                [
                    {
                        "source": name,
                        "name": name,
                        "options": {"max_refinements": budget},
                    }
                    for name, budget in SUITE
                ]
            )
        seconds = time.perf_counter() - started
        stats = service.statistics()["service"]
    finally:
        service.stop()
    return docs, seconds, stats


def test_crashy_suite_within_1p5x_of_faultfree(benchmark):
    clean_docs, clean_seconds, _ = run_suite()
    plan, victims = crash_plan()

    def run():
        with installed(plan):
            return run_suite()

    docs, faulted_seconds, stats = run_once(benchmark, run)
    record(
        benchmark,
        clean_seconds=round(clean_seconds, 4),
        faulted_seconds=round(faulted_seconds, 4),
        ratio=round(faulted_seconds / clean_seconds, 4),
        victims=sorted(victims),
        crashes=stats["supervision"]["crashes"],
        tasks_recovered=stats["supervision"]["tasks_recovered"],
    )
    # Zero lost requests: every submission came back, with the verdict the
    # fault-free run produced.
    assert len(docs) == len(SUITE)
    assert {d["name"]: d["verdict"] for d in docs} == {
        d["name"]: d["verdict"] for d in clean_docs
    }
    # The kills genuinely happened — and every one was recovered.
    assert stats["supervision"]["crashes"] >= len(victims)
    assert stats["supervision"]["tasks_failed"] == 0
    # The bar: injected worker crashes cost at most 1.5x the fault-free wall.
    assert faulted_seconds <= 1.5 * clean_seconds, (
        faulted_seconds,
        clean_seconds,
    )
