"""E12 — The verification daemon: warm-start over the wire and coalescing.

Two acceptance bars for verification-as-a-service (ISSUE 9):

* **Warm second submission** — a repeat submission of the same program over
  the wire warm-starts from the precision the daemon banked for the first
  one and performs *strictly fewer* abstract-post decisions.
* **Coalesce bar** — 8 identical concurrent requests attach to (nearly) one
  in-flight engine run: the daemon's total posts for all 8 must be ≤ 1.25×
  the posts of a single request.  (The slack covers the benign race where a
  late request arrives just after the shared run finished and starts a
  second — warm-started, so cheap — run.)

Both measure the *service*, not the engine: the engine-side warm-start bars
live in bench_e10_session.py; here the requests cross a real TCP socket into
a live daemon.
"""

import pytest

from common import record, run_once
from repro.serve import ServiceClient, ServiceConfig, VerificationService

#: Programs that refine on the cold run (so warm-starting has predicates to
#: transfer) without dominating wall-clock.
WARM_PROGRAMS = ["forward", "initcheck", "double_counter"]

OPTIONS = {"max_refinements": 8}


@pytest.fixture
def service():
    service = VerificationService(ServiceConfig(workers=4, max_queue=32)).start()
    yield service
    service.stop()


@pytest.mark.parametrize("name", WARM_PROGRAMS)
def test_warm_second_submission_strictly_fewer_posts(benchmark, service, name):
    def run():
        with ServiceClient(port=service.port) as client:
            cold = client.verify(name, options=OPTIONS)
            warm = client.verify(name, options=OPTIONS)
        return cold, warm

    cold, warm = run_once(benchmark, run)
    record(
        benchmark,
        cold_posts=cold["post_decisions"],
        warm_posts=warm["post_decisions"],
        reduction=round(1 - warm["post_decisions"] / cold["post_decisions"], 4),
        warm_hits=service.warm_hits,
    )
    assert cold["verdict"] == warm["verdict"]
    assert cold["verdict"] in ("safe", "unsafe")
    assert not cold["engine"]["session"]["warm_started"]
    assert warm["engine"]["session"]["warm_started"]
    # The bar: a repeat fingerprint does strictly fewer abstract posts.
    assert warm["post_decisions"] < cold["post_decisions"]


def test_eight_identical_concurrent_requests_coalesce(benchmark, service):
    """8 identical concurrent requests cost ≤ 1.25× one request's posts."""

    def single_run_posts():
        # One isolated request for the same work the 8 will ask for, on a
        # daemon with an empty store (a true cold single-request cost).
        probe = VerificationService(ServiceConfig(workers=1)).start()
        try:
            with ServiceClient(port=probe.port) as client:
                return client.verify("forward", options=OPTIONS)["post_decisions"]
        finally:
            probe.stop()

    def run():
        posts_before = service.posts_executed
        with ServiceClient(port=service.port) as client:
            docs = client.submit_many([("forward", "forward")] * 8, options=OPTIONS)
        return docs, service.posts_executed - posts_before

    one = single_run_posts()
    docs, batch_posts = run_once(benchmark, run)
    stats = service.statistics()["service"]
    record(
        benchmark,
        single_request_posts=one,
        eight_request_posts=batch_posts,
        ratio=round(batch_posts / one, 4),
        coalesce_hits=stats["coalesce_hits"],
        engine_runs=stats["engine_runs"],
    )
    assert len(docs) == 8
    assert {doc["verdict"] for doc in docs} == {"safe"}
    assert stats["coalesce_hits"] >= 1  # the batch genuinely coalesced
    assert stats["engine_runs"] + stats["coalesce_hits"] == 8
    # The coalesce bar: 8 identical concurrent requests must not cost more
    # than 1.25x one request's abstract posts.
    assert batch_posts <= 1.25 * one, (batch_posts, one)
