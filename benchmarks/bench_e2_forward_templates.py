"""E2 — Section 5 "Example FORWARD": template instantiation on the path program.

The paper reports that the equality template
``c_i i + c_n n + c_a a + c_b b + c = 0`` cannot be instantiated (failure
reported in 40 ms on their machine) and that conjoining an inequality
template yields ``a+b = 3i  /\\  a+b <= 3n`` (130 ms).  We reproduce the
fail/succeed pattern and the resulting invariant with our Farkas engine.
"""

import pytest

from common import looping_counterexample, record, run_once
from repro.core import PathFormulaRefiner, build_path_program
from repro.invgen import FarkasEngine, cutpoints, equality_template
from repro.lang import get_program
from repro.logic.formulas import eq
from repro.logic.terms import Var, var
from repro.smt.vcgen import VcChecker


def _forward_path_program():
    program = get_program("forward")
    path, _ = looping_counterexample(program, PathFormulaRefiner())
    return build_path_program(program, path).program


VARIABLES = [Var(name) for name in ("a", "b", "i", "n")]


def test_equality_template_fails(benchmark):
    path_program = _forward_path_program()
    engine = FarkasEngine()
    templates = {cut: equality_template(VARIABLES) for cut in cutpoints(path_program)}
    result = run_once(benchmark, engine.synthesize, path_program, templates)
    record(benchmark, success=result.success, lp_calls=result.lp_calls, reason=result.reason)
    assert not result.success


def test_refined_template_succeeds(benchmark):
    path_program = _forward_path_program()
    engine = FarkasEngine()
    templates = {
        cut: equality_template(VARIABLES).with_extra_inequality(VARIABLES)
        for cut in cutpoints(path_program)
    }
    result = run_once(benchmark, engine.synthesize, path_program, templates)
    record(
        benchmark,
        success=result.success,
        lp_calls=result.lp_calls,
        invariants={str(k): str(v) for k, v in result.assertions.items()},
    )
    assert result.success
    checker = VcChecker()
    target = eq(var("a") + var("b"), var("i") * 3)
    assert any(
        checker.check_entailment(formula, target) for formula in result.assertions.values()
    )
