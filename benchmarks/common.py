"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one artifact of the paper's evaluation
(see DESIGN.md section 3 and EXPERIMENTS.md for the mapping).  The benchmarks
use pytest-benchmark in *pedantic* mode with a single round, because a single
CEGAR run already takes seconds and the quantity of interest is the shape of
the result (who proves what, with how many refinements), not micro-timings.
"""

from __future__ import annotations

from repro.core import AbstractReachability, Precision, build_path_program
from repro.lang import get_program
from repro.smt.vcgen import VcChecker

#: The fast-deciding verdict suite shared by the session benchmarks
#: (bench_e10) and run_all.py's session section — one definition so the CI
#: assertion and the BENCH_pr*.json trajectory always measure the same
#: corpus.  Covers safe, unsafe and array workloads under both refiners'
#: default engine.
SESSION_SUITE = [
    "forward", "initcheck", "double_counter", "up_down", "lock_step",
    "simple_safe", "diamond_safe", "simple_unsafe", "array_init_buggy",
]

#: Refinement budget the session benchmarks run the suite under.
SESSION_MAX_REFINEMENTS = 8


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def first_counterexample(program, precision=None, checker=None):
    """The first abstract counterexample under the given precision."""
    checker = checker or VcChecker()
    outcome = AbstractReachability(program, checker).run(precision or Precision())
    assert outcome.counterexample is not None
    return outcome.counterexample


def looping_counterexample(program, refiner, checker=None, max_rounds=4):
    """Refine until the abstract counterexample traverses a loop, and return it."""
    checker = checker or VcChecker()
    precision = Precision()
    reach = AbstractReachability(program, checker)
    for _ in range(max_rounds):
        outcome = reach.run(precision)
        assert outcome.counterexample is not None
        path = outcome.counterexample
        visited = [path[0].source] + [t.target for t in path]
        if len(set(visited)) < len(visited):
            return path, precision
        refiner.refine(program, path, precision)
    raise AssertionError("no looping counterexample found")


def record(benchmark, **info):
    """Attach experiment outcomes to the benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
