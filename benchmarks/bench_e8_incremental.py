"""E8 — Incremental lazy-abstraction engine vs the restart baseline.

Measures what the persistent ART buys: after a refinement, the engine
delta-rechecks pivot nodes and repairs only what the new predicates actually
change, while the restart baseline re-expands the whole tree from the
initial location.  The metric is *abstract-post decisions* — edge
feasibility checks plus per-predicate Cartesian post checks requested by
reachability (``CegarResult.post_decisions()``), the same work the seed
counted as reachability triple checks.

How much is saved is a property of the refinement geometry, not of the
engine alone:

* INITCHECK (three refinements across two loop phases) and the divergent
  INITCHECK_BUGGY workload (one refinement per loop unrolling, each tree
  extending the last) retain large subtrees; the reduction clears 30%
  comfortably and *grows with every further round* on divergent workloads.
* FORWARD's entire proof is two refinements whose predicates touch every
  location of its five-location CFG, and ~90% of its total work is the
  final proof tree, which no engine can avoid building once.  Reuse is
  therefore real but small end-to-end; the assertion is strict reduction
  plus nonzero retention, with the ratio recorded for trend tracking.

Verdict equivalence across the whole suite is asserted alongside, so the
speedup is never bought with a changed answer.
"""

import pytest

from common import record, run_once
from repro.core import Verdict, verify
from repro.lang import PROGRAMS, get_program


def run_both(name, max_refinements):
    incremental = verify(
        get_program(name), max_refinements=max_refinements, incremental=True
    )
    restart = verify(
        get_program(name), max_refinements=max_refinements, incremental=False
    )
    return incremental, restart


@pytest.mark.parametrize("name", ["forward", "initcheck"])
def test_incremental_beats_restart(benchmark, name):
    incremental, restart = run_once(benchmark, run_both, name, 8)
    reduction = 1 - incremental.post_decisions() / restart.post_decisions()
    record(
        benchmark,
        verdict=incremental.verdict,
        incremental_posts=incremental.post_decisions(),
        restart_posts=restart.post_decisions(),
        reduction=round(reduction, 4),
        nodes_reused=incremental.nodes_reused(),
    )
    assert incremental.verdict == restart.verdict == Verdict.SAFE
    # Post-refinement reachability reuses ART work: strictly fewer
    # abstract-post decisions than restart-the-world, with retained nodes.
    assert incremental.post_decisions() < restart.post_decisions()
    assert incremental.nodes_reused() > 0
    if name == "initcheck":
        # Multi-phase refinement geometry: the persistent ART retains the
        # first loop's subtree while the second is refined (~33% measured).
        assert reduction >= 0.30


def test_incremental_reduction_on_divergent_workload(benchmark):
    """One refinement per loop unrolling — the regime incrementality targets.

    Each round of INITCHECK_BUGGY's (real) divergence extends the previous
    tree by one unrolling; the persistent ART re-derives only the new tail,
    so the saving compounds per round (~37% after five, ~44% after six).
    """
    incremental, restart = run_once(benchmark, run_both, "initcheck_buggy", 5)
    reduction = 1 - incremental.post_decisions() / restart.post_decisions()
    record(
        benchmark,
        incremental_posts=incremental.post_decisions(),
        restart_posts=restart.post_decisions(),
        reduction=round(reduction, 4),
    )
    assert incremental.verdict == restart.verdict
    assert reduction >= 0.30


#: Fast representative slice of the suite (heavier array programs are
#: exercised with the same equivalence assertion in tests/core/test_engine).
VERDICT_SUITE = [
    "forward", "initcheck", "double_counter", "up_down", "lock_step",
    "simple_safe", "diamond_safe", "simple_unsafe", "array_init_buggy",
]


def test_suite_verdicts_unchanged(benchmark):
    """Incremental repair never changes an answer anywhere in the suite."""

    def run_all():
        verdicts = {}
        for name in VERDICT_SUITE:
            incremental, restart = run_both(name, 4)
            verdicts[name] = (incremental.verdict, restart.verdict)
        return verdicts

    verdicts = run_once(benchmark, run_all)
    record(benchmark, verdicts={k: v[0] for k, v in verdicts.items()})
    for name, (inc_verdict, res_verdict) in verdicts.items():
        assert inc_verdict == res_verdict, name
        expected_safe = PROGRAMS[name].expected_safe
        if inc_verdict != Verdict.UNKNOWN:
            assert (inc_verdict == Verdict.SAFE) == expected_safe, name
