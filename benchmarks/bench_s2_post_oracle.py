"""S2 — the batched abstract-post oracle vs the scalar baseline.

The abstract-post oracle is the innermost loop of the lazy-abstraction
engine: every ART expansion asks all precision predicates of the target
location against one ``(state, transition)`` pair.  The scalar oracle pays
``ssa_translate`` + skolemisation + store resolution + a cold ``check_sat``
once per predicate; the batched oracle (``VcChecker.post_all_predicates``)
prepares the edge once, asserts the ``pre ∧ trans`` core into an incremental
``SolverContext`` and decides each predicate with a push/check/pop of its
negated renamed form.

Two regression bars are enforced over the engine equivalence suite:

* **preparation work** — the batched oracle must run ``ssa_translate`` (and
  the pipeline hanging off it) at least 2x less often than the scalar
  oracle, summed over the suite;
* **verdict fidelity** — both oracles must produce identical verdicts,
  precisions and post-decision counts on every program (the differential
  test corpus lives in ``tests/smt/test_batched_post.py``; the bench
  re-checks it on the full runs it measures anyway).

Wall-clock reductions are recorded in ``extra_info`` for the BENCH_pr*.json
trajectory but not asserted (CI runners are noisy); the deterministic
preparation counters are the enforced signal.
"""

from __future__ import annotations

import time

import pytest

from common import record, run_once
from repro.core.engine import Budget, VerificationEngine
from repro.lang import get_program
from repro.smt.vcgen import VcChecker

#: Programs of the engine suite that exercise the oracle in both its pure
#: scalar-arithmetic shape and the array/quantifier fallback shape.
SUITE = [
    "forward",
    "initcheck",
    "double_counter",
    "up_down",
    "lock_step",
    "diamond_safe",
    "simple_safe",
    "simple_unsafe",
    "array_init_buggy",
]

MAX_REFINEMENTS = 8


def run_suite(batched: bool) -> dict:
    totals = {
        "seconds": 0.0,
        "ssa_translations": 0,
        "prepare_calls": 0,
        "context_reuses": 0,
        "batched_posts": 0,
        "scalar_fallbacks": 0,
    }
    per_program = {}
    for name in SUITE:
        checker = VcChecker(batched_posts=batched)
        engine = VerificationEngine(
            get_program(name), checker=checker,
            budget=Budget(max_refinements=MAX_REFINEMENTS),
        )
        started = time.perf_counter()
        result = engine.run()
        seconds = time.perf_counter() - started
        stats = checker.statistics()
        per_program[name] = {
            "verdict": result.verdict,
            "precision": result.precision.snapshot(),
            "post_decisions": result.post_decisions(),
            "seconds": seconds,
            "ssa_translations": stats["ssa_translations"],
        }
        totals["seconds"] += seconds
        for key in ("ssa_translations", "prepare_calls", "context_reuses",
                    "batched_posts", "scalar_fallbacks"):
            totals[key] += stats[key]
    totals["per_program"] = per_program
    return totals


def test_batched_oracle_halves_preparation_work(benchmark):
    batched = run_once(benchmark, run_suite, True)
    scalar = run_suite(False)

    # Verdict fidelity on the full runs: identical verdicts, precisions and
    # post-decision counts, program by program.
    for name in SUITE:
        b, s = batched["per_program"][name], scalar["per_program"][name]
        assert b["verdict"] == s["verdict"], name
        assert b["precision"] == s["precision"], name
        assert b["post_decisions"] == s["post_decisions"], name

    record(
        benchmark,
        batched_ssa_translations=batched["ssa_translations"],
        scalar_ssa_translations=scalar["ssa_translations"],
        translation_reduction=round(
            scalar["ssa_translations"] / batched["ssa_translations"], 2
        ),
        prepare_calls=batched["prepare_calls"],
        context_reuses=batched["context_reuses"],
        batched_posts=batched["batched_posts"],
        scalar_fallbacks=batched["scalar_fallbacks"],
        batched_seconds=round(batched["seconds"], 3),
        scalar_seconds=round(scalar["seconds"], 3),
    )

    # Acceptance bar: >= 2x fewer pipeline preparations than the scalar
    # oracle over the suite.  (Locally the ratio is ~3x; the bar leaves
    # room for corpus drift without letting the batching rot away.)
    assert batched["ssa_translations"] * 2 <= scalar["ssa_translations"], (
        f"batched={batched['ssa_translations']} "
        f"scalar={scalar['ssa_translations']} translations"
    )
    # The context must actually be reused across batches of the same edge
    # (the delta-recheck path), not just built once per predicate.
    assert batched["context_reuses"] > 0
    assert batched["batched_posts"] > 0


def test_prepared_context_amortises_across_refinements(benchmark):
    """On FORWARD the repair wave re-asks edges: reuses must be substantial."""
    def run():
        checker = VcChecker()
        VerificationEngine(
            get_program("forward"), checker=checker,
            budget=Budget(max_refinements=MAX_REFINEMENTS),
        ).run()
        return checker.statistics()

    stats = run_once(benchmark, run)
    record(
        benchmark,
        prepare_calls=stats["prepare_calls"],
        context_reuses=stats["context_reuses"],
        prepare_seconds=stats["prepare_seconds"],
        post_solve_seconds=stats["post_solve_seconds"],
    )
    # Every reuse is a full pipeline run the scalar oracle would pay again.
    assert stats["context_reuses"] >= stats["prepare_calls"] * 0.5
