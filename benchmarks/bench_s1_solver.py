"""S1 — solver micro-benchmark: lazy case splitting vs eager DNF expansion.

Times ``check_sat``/``entails`` on the verification-condition shapes the
CEGAR pipeline produces — deep conjunctions, disequality splits, and
read-over-write style case splits — and records how many theory-solver calls
(incremental-simplex feasibility checks for the lazy engine, conjunction
solves for the eager oracle) and how many DNF cubes each query costs.  This
gives future solver PRs a trajectory to compare against: the lazy engine
must stay well ahead of eager enumeration on disjunction-heavy shapes.
"""

from __future__ import annotations

import pytest

from common import record, run_once
from repro.logic.formulas import conjoin, disjoin, eq, ge, implies_formula, le, ne
from repro.logic.terms import const, read, var
from repro.logic.transform import cube_size_of
from repro.smt.solver import SmtSolver


def deep_conjunction(size: int = 24):
    """A long chain x0 <= x1 <= ... with consistent bounds (no splits)."""
    parts = [le(var(f"x{k}"), var(f"x{k+1}")) for k in range(size)]
    parts += [ge(var("x0"), 0), le(var(f"x{size}"), size)]
    return conjoin(parts)


def disequality_splits(size: int = 5):
    """A cluster of disequalities over a narrow integer range (unsat)."""
    parts = [le(const(0), var(f"d{k}")) for k in range(size)]
    parts += [le(var(f"d{k}"), const(1)) for k in range(size)]
    parts += [ne(var(f"d{k}"), var(f"d{k+1}")) for k in range(size - 1)]
    parts += [ne(var(f"d{k}"), const(1)) for k in range(size)]
    parts += [ne(var(f"d{k}"), const(0)) for k in range(0, size, 2)]
    return conjoin(parts)


def read_over_write_splits(size: int = 4):
    """Chained read-over-write case splits as resolve_stores produces them."""
    cases = []
    for k in range(size):
        hit = conjoin([eq(var("t"), var(f"i{k}")), eq(read("a", var("t")), var(f"v{k}"))])
        miss = conjoin([ne(var("t"), var(f"i{k}")), eq(read("a", var("t")), read("b", var("t")))])
        cases.append(disjoin([hit, miss]))
    cases.append(eq(read("b", var("t")), 7))
    cases.append(ne(read("a", var("t")), 7))
    for k in range(size):
        cases.append(ne(var("t"), var(f"i{k}")))
    return conjoin(cases)


def instantiation_implications(size: int = 6):
    """Implication chains like instantiated array-property hypotheses."""
    parts = []
    for k in range(size):
        bound = conjoin([le(const(0), var(f"k{k}")), le(var(f"k{k}"), var("n"))])
        parts.append(implies_formula(bound, eq(read("a", var(f"k{k}")), 0)))
        parts.append(le(const(0), var(f"k{k}")))
        parts.append(le(var(f"k{k}"), var("n")))
    parts.append(ne(read("a", var("k0")), 0))
    return conjoin(parts)


_SHAPES = {
    "deep_conjunction": deep_conjunction,
    "disequality_splits": disequality_splits,
    "read_over_write": read_over_write_splits,
    "instantiation": instantiation_implications,
}

#: Shapes whose boolean structure actually branches (the 5x claim applies
#: to these; a pure conjunction has nothing to split).
_DISJUNCTIVE = ("disequality_splits", "read_over_write", "instantiation")


def _theory_calls_lazy(formula) -> tuple[int, dict]:
    solver = SmtSolver()
    solver.check_sat(formula)
    # Conjunction-level feasibility decisions: pivot-loop checks plus
    # assert-time conflicts, across pruning, lookaheads, branch-and-bound
    # and functionality loops.
    return solver.stats.simplex_checks, solver.cache_info()


def _theory_calls_eager(formula) -> int:
    solver = SmtSolver()
    solver.check_sat_eager(formula)
    # The comparable unit on the eager side: one theory decision per cube
    # conjunction handed to the LRA solver (disequality recursion included).
    return solver.lra.num_checks


@pytest.mark.parametrize("shape", sorted(_SHAPES))
def test_lazy_solver_on_shape(benchmark, shape):
    formula = _SHAPES[shape]()
    solver = SmtSolver()
    result = run_once(benchmark, solver.check_sat, formula)
    lazy_calls, info = _theory_calls_lazy(formula)
    eager_calls = _theory_calls_eager(formula)
    cubes = cube_size_of(formula)
    record(
        benchmark,
        satisfiable=result.satisfiable,
        dnf_cubes=cubes,
        lazy_theory_calls=lazy_calls,
        eager_theory_calls=eager_calls,
        splits=info["splits"],
        pruned_branches=info["pruned_branches"],
    )
    if shape in _DISJUNCTIVE:
        # Acceptance: the lazy engine does at least 5x fewer theory-solver
        # calls than eager DNF enumeration on disjunction-heavy shapes.
        assert lazy_calls * 5 <= eager_calls, (
            f"lazy={lazy_calls} eager={eager_calls} on {shape}"
        )


def test_entailment_shapes(benchmark):
    """entails() on a transitivity query over a deep conjunction."""
    antecedent = deep_conjunction(16)
    consequent = le(var("x0"), var("x16"))
    solver = SmtSolver()
    result = run_once(benchmark, solver.entails, antecedent, consequent)
    record(benchmark, entailed=result)
    assert result
