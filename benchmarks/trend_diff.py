#!/usr/bin/env python3
"""Diff the two newest ``BENCH_*.json`` snapshots and fail on perf drift.

Each PR's benchmark run (``benchmarks/run_all.py``) leaves a ``BENCH_prN.json``
snapshot in the repository root.  This script compares the *engine* section
(incremental/restart modes), the *parallel* section (sequential/parallel
modes), the *fuzz* section (per-oracle fixed-seed differential batches),
the *service* section (cold/warm daemon submissions over a socket) and the
*chaos* section (clean/faulted process-backend suite runs)
of the two newest snapshots program by program and exits non-zero
when any shared program regressed beyond a metric's threshold in either
mode — the automated bench-trend check the ROADMAP asks for.

Three metrics are diffed:

* ``post_decisions`` (default bar 25%, **failing**) — deterministic (no
  wall-clock noise on shared CI runners) and the work the incremental
  engine exists to avoid;
* ``solver_calls`` (default bar 25%, **failing**) — solver-level decisions
  (cold ``check_sat`` queries plus batched-oracle context checks), the work
  the solver-layer caching and batching exist to avoid;
* ``seconds`` (default bar 60%, **advisory**) — wall clock is noisy on CI
  runners, so a regression prints a loud warning but does not fail; it
  exists to catch order-of-magnitude slowdowns the deterministic counters
  cannot see (e.g. constant-factor blowups per decision).

Usage::

    python benchmarks/trend_diff.py                # repo-root BENCH_pr*.json
    python benchmarks/trend_diff.py --threshold 0.10
    python benchmarks/trend_diff.py --dir some/dir
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Trend-checked sections and the per-row modes each one carries.
SECTIONS = {
    "engine": ("incremental", "restart"),
    "parallel": ("sequential", "parallel"),
    # Differential-fuzz rows (one per oracle, fixed seed, so the counters
    # are comparable across snapshots); older snapshots without the
    # section just print a "share no programs" note.
    "fuzz": ("baseline", "variant"),
    # Verification-daemon rows: each suite program submitted over a real
    # socket cold then warm — the warm mode's post counters track the
    # cross-request warm-start payoff across snapshots.
    "service": ("cold", "warm"),
    # Chaos rows: the suite through the process-backend daemon, fault-free
    # vs under the seeded worker-kill schedule.  Victim rows carry
    # ``fault_injected`` and are dropped by ``section_rows``; the survivors'
    # counters must stay flat across snapshots.
    "chaos": ("clean", "faulted"),
}

#: (metric key, threshold argparse attr, failing?) — the diffed metrics.
METRICS = (
    ("post_decisions", "threshold", True),
    ("solver_calls", "solver_threshold", True),
    ("seconds", "seconds_threshold", False),
)


def bench_files(directory: Path) -> list[Path]:
    """``BENCH_*.json`` files, oldest first.

    Ordered by the numeric PR suffix (``BENCH_pr3.json`` < ``BENCH_pr10.json``
    — plain lexicographic order would get this wrong); files without a
    numeric suffix sort first by modification time.
    """
    entries = []
    for path in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_pr(\d+)\.json", path.name)
        order = int(match.group(1)) if match else -1
        entries.append((order, path.stat().st_mtime, path.name, path))
    entries.sort()
    return [entry[3] for entry in entries]


def section_rows(path: Path, section: str) -> dict[str, dict]:
    """One snapshot section's rows, keyed by program name.

    Rows flagged ``"fault_injected": true`` are exempt: their wall clock
    and retry counts measure the fault-injection harness (deliberate
    crashes, backoff sleeps), not engine performance.
    """
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not valid JSON ({error})")
    rows = doc.get("sections", {}).get(section, [])
    return {
        row["program"]: row
        for row in rows
        if "program" in row and not row.get("fault_injected")
    }


def diff(
    old: Path, new: Path, thresholds: dict[str, float]
) -> tuple[list[str], list[str]]:
    """``(regressions, warnings)`` lines (both empty when the trend is clean)."""
    regressions: list[str] = []
    warnings: list[str] = []
    header_printed = False
    for section, modes in SECTIONS.items():
        old_rows = section_rows(old, section)
        new_rows = section_rows(new, section)
        shared = sorted(set(old_rows) & set(new_rows))
        if not shared:
            print(
                f"note: {old.name} and {new.name} share no {section} programs"
            )
            continue
        if not header_printed:
            print(
                f"{'program':20s} {'mode':12s} {'metric':15s} "
                f"{old.name:>14s} {new.name:>14s}  change"
            )
            header_printed = True
        for program in shared:
            for mode in modes:
                for metric, attr, failing in METRICS:
                    before = old_rows[program].get(mode, {}).get(metric)
                    after = new_rows[program].get(mode, {}).get(metric)
                    if not before or after is None:
                        continue
                    threshold = thresholds[attr]
                    change = after / before - 1
                    marker = ""
                    if change > threshold:
                        line = (
                            f"{program} [{mode}] {metric}: {before} -> {after} "
                            f"({change:+.1%} > {threshold:.0%} threshold)"
                        )
                        if failing:
                            marker = "  REGRESSION"
                            regressions.append(line)
                        else:
                            marker = "  WARNING (advisory)"
                            warnings.append(line)
                    rendered = (
                        (f"{before:14.3f}", f"{after:14.3f}")
                        if isinstance(before, float) or isinstance(after, float)
                        else (f"{before:14d}", f"{after:14d}")
                    )
                    print(
                        f"{program:20s} {mode:12s} {metric:15s} "
                        f"{rendered[0]} {rendered[1]}  {change:+7.1%}{marker}"
                    )
    return regressions, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=str(REPO_ROOT), metavar="DIR",
        help="directory holding the BENCH_*.json snapshots (default: repo root)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="maximum tolerated post-decision growth per program (default: 0.25)",
    )
    parser.add_argument(
        "--solver-threshold", type=float, default=0.25, metavar="FRACTION",
        help="maximum tolerated solver-call growth per program (default: 0.25)",
    )
    parser.add_argument(
        "--seconds-threshold", type=float, default=0.60, metavar="FRACTION",
        help="advisory wall-clock growth bar per program — prints a warning, "
        "never fails (default: 0.60)",
    )
    args = parser.parse_args(argv)

    files = bench_files(Path(args.dir))
    if len(files) < 2:
        print(
            f"trend-diff: found {len(files)} BENCH_*.json snapshot(s) in "
            f"{args.dir}; need two to diff — nothing to check"
        )
        return 0
    old, new = files[-2], files[-1]
    thresholds = {
        "threshold": args.threshold,
        "solver_threshold": args.solver_threshold,
        "seconds_threshold": args.seconds_threshold,
    }
    regressions, warnings = diff(old, new, thresholds)
    if warnings:
        print(f"\n{len(warnings)} advisory wall-clock warning(s):", file=sys.stderr)
        for line in warnings:
            print(f"  {line}", file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\ntrend clean: {old.name} -> {new.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
