#!/usr/bin/env python3
"""Diff the two newest ``BENCH_*.json`` snapshots and fail on perf drift.

Each PR's benchmark run (``benchmarks/run_all.py``) leaves a ``BENCH_prN.json``
snapshot in the repository root.  This script compares the *engine* sections
of the two newest snapshots program by program and exits non-zero when any
shared program's abstract-post-decision count regressed by more than the
threshold (default 25%) in either engine mode — the automated bench-trend
check the ROADMAP asks for.

Post decisions are the deliberate metric: they are deterministic (no
wall-clock noise on shared CI runners) and they are the work the incremental
engine exists to avoid.

Usage::

    python benchmarks/trend_diff.py                # repo-root BENCH_pr*.json
    python benchmarks/trend_diff.py --threshold 0.10
    python benchmarks/trend_diff.py --dir some/dir
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Engine modes whose post-decision counts are trend-checked.
MODES = ("incremental", "restart")


def bench_files(directory: Path) -> list[Path]:
    """``BENCH_*.json`` files, oldest first.

    Ordered by the numeric PR suffix (``BENCH_pr3.json`` < ``BENCH_pr10.json``
    — plain lexicographic order would get this wrong); files without a
    numeric suffix sort first by modification time.
    """
    entries = []
    for path in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_pr(\d+)\.json", path.name)
        order = int(match.group(1)) if match else -1
        entries.append((order, path.stat().st_mtime, path.name, path))
    entries.sort()
    return [entry[3] for entry in entries]


def engine_rows(path: Path) -> dict[str, dict]:
    """The engine section of one snapshot, keyed by program name."""
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not valid JSON ({error})")
    rows = doc.get("sections", {}).get("engine", [])
    return {row["program"]: row for row in rows if "program" in row}


def diff(old: Path, new: Path, threshold: float) -> list[str]:
    """Human-readable regression lines (empty when the trend is clean)."""
    old_rows, new_rows = engine_rows(old), engine_rows(new)
    shared = sorted(set(old_rows) & set(new_rows))
    if not shared:
        print(f"note: {old.name} and {new.name} share no engine programs")
        return []
    regressions = []
    print(f"{'program':20s} {'mode':12s} {old.name:>16s} {new.name:>16s}  change")
    for program in shared:
        for mode in MODES:
            before = old_rows[program].get(mode, {}).get("post_decisions")
            after = new_rows[program].get(mode, {}).get("post_decisions")
            if not before or after is None:
                continue
            change = after / before - 1
            marker = ""
            if change > threshold:
                marker = "  REGRESSION"
                regressions.append(
                    f"{program} [{mode}]: {before} -> {after} posts "
                    f"({change:+.1%} > {threshold:.0%} threshold)"
                )
            print(
                f"{program:20s} {mode:12s} {before:16d} {after:16d}  "
                f"{change:+7.1%}{marker}"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=str(REPO_ROOT), metavar="DIR",
        help="directory holding the BENCH_*.json snapshots (default: repo root)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="maximum tolerated post-decision growth per program (default: 0.25)",
    )
    args = parser.parse_args(argv)

    files = bench_files(Path(args.dir))
    if len(files) < 2:
        print(
            f"trend-diff: found {len(files)} BENCH_*.json snapshot(s) in "
            f"{args.dir}; need two to diff — nothing to check"
        )
        return 0
    old, new = files[-2], files[-1]
    regressions = diff(old, new, args.threshold)
    if regressions:
        print(f"\n{len(regressions)} post-decision regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\ntrend clean: {old.name} -> {new.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
