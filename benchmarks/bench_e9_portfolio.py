"""E9 — The refiner portfolio on the divergent corpus.

The paper's empirical claim is a *complementarity* claim: path-invariant
refinement succeeds exactly where path-formula refinement diverges (FORWARD,
DOUBLE_COUNTER — their loop invariants ``a+b = 3i`` / ``a = 2i`` are not
atoms of any finite path), while the cheap path-formula refiner is perfectly
adequate on programs whose proofs need no loop invariant.  The portfolio
layer exploits that automatically: it races both refiners, demotes a
diverging arm on monitor evidence (stale pivots + growing counterexamples +
a non-shrinking frontier) and hands its remaining budget to the survivors.

What this benchmark pins down, per divergent program:

* the portfolio proves the program SAFE although path-formula alone diverges
  (``verify --refiner portfolio`` needs no flag-picking by the user);
* **bounded overhead** — with the paper's refiner ordered first, the
  round-robin portfolio costs the *same* abstract-post decisions as the best
  single refiner (+25% bar; measured 0% because the winner finishes inside
  its first slices and arms share one memoised checker), and wall time stays
  within 1.25x + a small scheduling constant;
* **bounded waste under adversarial ordering** — with the diverging refiner
  scheduled first, the extra refinements are capped by the slice size (the
  monitor demotes the staller no later than ``window`` observed
  refinements), so the portfolio still proves the program within
  ``winner + slice`` refinements here;
* the process race (both refiners at full speed in worker processes) reaches
  the same verdict with wall time bounded by the winner plus pool-spawn
  overhead (recorded; the assertion allows a generous constant because CI
  process spawn is noisy).
"""

import time

import pytest

from common import record, run_once
from repro.core import Budget, PortfolioEngine, Verdict, verify
from repro.lang import get_program, get_source

#: The divergent corpus: path-formula alone diverges on these (one loop
#: unrolling per refinement), path-invariant proves them in two refinements.
DIVERGENT = ["forward", "double_counter"]

#: Relative overhead bar of the acceptance criterion.
OVERHEAD = 1.25
#: Absolute wall-clock slack for scheduling noise (seconds).
WALL_SLACK = 0.75


def run_single(name, refiner, max_refinements=25):
    started = time.perf_counter()
    result = verify(get_program(name), refiner=refiner, max_refinements=max_refinements)
    return result, time.perf_counter() - started


@pytest.mark.parametrize("name", DIVERGENT)
def test_portfolio_within_best_single_budget(benchmark, name):
    """Portfolio <= best single refiner + 25% on the divergent corpus."""

    def run_both():
        single, single_seconds = run_single(name, "path-invariant")
        started = time.perf_counter()
        portfolio = PortfolioEngine(get_source(name), mode="round-robin").run()
        return single, single_seconds, portfolio, time.perf_counter() - started

    single, single_seconds, portfolio, portfolio_seconds = run_once(benchmark, run_both)
    portfolio_posts = sum(arm["post_decisions"] for arm in portfolio.arms)
    record(
        benchmark,
        verdict=portfolio.verdict,
        winner=portfolio.winner,
        single_posts=single.post_decisions(),
        portfolio_posts=portfolio_posts,
        single_seconds=round(single_seconds, 4),
        portfolio_seconds=round(portfolio_seconds, 4),
        arms={arm["refiner"]: arm["status"] for arm in portfolio.arms},
    )
    # Path-formula alone diverges here; the portfolio proves it regardless.
    assert portfolio.verdict == Verdict.SAFE
    assert portfolio.winner == "path-invariant"
    # Total budget consumed: abstract-post decisions across every arm, and
    # wall clock, both within the acceptance bar of best-single + 25%.
    assert portfolio_posts <= single.post_decisions() * OVERHEAD
    assert portfolio_seconds <= single_seconds * OVERHEAD + WALL_SLACK


@pytest.mark.parametrize("name", DIVERGENT)
def test_divergent_refiner_alone_fails(benchmark, name):
    """The honesty baseline: path-formula really does diverge here."""
    result, seconds = run_once(benchmark, run_single, name, "path-formula", 12)
    lengths = [r.counterexample_length for r in result.iterations if r.refinement]
    record(benchmark, verdict=result.verdict, seconds=round(seconds, 4),
           counterexample_lengths=lengths)
    assert result.verdict == Verdict.UNKNOWN
    # One loop unrolling per refinement: monotonically growing spurious
    # counterexamples (the signature the divergence monitor keys on).
    assert max(lengths) > min(lengths)


@pytest.mark.parametrize("name", DIVERGENT)
def test_adversarial_order_waste_is_bounded(benchmark, name):
    """Even with the diverging refiner scheduled first, waste <= one slice.

    The staller gets `slice_refinements` refinements per sweep and the
    winner decides inside its own first slices, so the portfolio spends at
    most `winner + slice` refinements in total.
    """
    slice_refinements = 2

    def run_adversarial():
        single, _ = run_single(name, "path-invariant")
        portfolio = PortfolioEngine(
            get_source(name),
            refiners=("path-formula", "path-invariant"),
            mode="round-robin",
            slice_refinements=slice_refinements,
        ).run()
        return single, portfolio

    single, portfolio = run_once(benchmark, run_adversarial)
    total_refinements = sum(arm["refinements"] for arm in portfolio.arms)
    record(
        benchmark,
        verdict=portfolio.verdict,
        winner=portfolio.winner,
        total_refinements=total_refinements,
        single_refinements=single.num_refinements,
        arms={arm["refiner"]: arm["status"] for arm in portfolio.arms},
    )
    assert portfolio.verdict == Verdict.SAFE
    assert portfolio.winner == "path-invariant"
    assert total_refinements <= single.num_refinements + slice_refinements


def test_process_race_reaches_the_verdict(benchmark):
    """The full-speed process race decides FORWARD; spawn overhead recorded."""

    def run_race():
        single, single_seconds = run_single("forward", "path-invariant")
        started = time.perf_counter()
        portfolio = PortfolioEngine(
            get_source("forward"), mode="process", budget=Budget(max_seconds=60.0)
        ).run()
        return single_seconds, portfolio, time.perf_counter() - started

    single_seconds, portfolio, race_seconds = run_once(benchmark, run_race)
    record(
        benchmark,
        verdict=portfolio.verdict,
        mode=portfolio.mode,
        winner=portfolio.winner,
        single_seconds=round(single_seconds, 4),
        race_seconds=round(race_seconds, 4),
    )
    assert portfolio.verdict == Verdict.SAFE
    assert portfolio.winner == "path-invariant"
    # Wall time = winner + pool spawn; the constant absorbs CI spawn noise.
    assert race_seconds <= single_seconds * OVERHEAD + 10.0


def test_tight_shared_pool_still_proves(benchmark):
    """A tight shared refinement pool (8 for both arms together) suffices:
    slicing caps what the diverging arm can burn before the winner decides,
    so the proof fits where an unsupervised path-formula run would have
    drained the whole pool alone.

    (Monitor-driven demotion proper needs the winner to be slower than the
    monitor window; that scenario is asserted with a synthetically delayed
    winner in ``tests/core/test_portfolio.py``.)
    """

    def run_tight():
        return PortfolioEngine(
            get_source("double_counter"),
            refiners=("path-formula", "path-invariant"),
            mode="round-robin",
            slice_refinements=1,
            budget=Budget(max_refinements=8),
        ).run()

    portfolio = run_once(benchmark, run_tight)
    by_name = {arm["refiner"]: arm for arm in portfolio.arms}
    record(
        benchmark,
        verdict=portfolio.verdict,
        arms={name: (arm["status"], arm["refinements"]) for name, arm in by_name.items()},
    )
    assert portfolio.verdict == Verdict.SAFE
    assert by_name["path-invariant"]["status"] == "won"
    # The diverging arm consumed at most its per-sweep slices, leaving the
    # pool (which path-formula alone exhausts without a verdict) intact.
    assert by_name["path-formula"]["refinements"] < 8 - by_name["path-invariant"]["refinements"]
