#!/usr/bin/env python3
"""Run the ``bench_e*`` experiment suite and emit ``BENCH_pr10.json``.

Ten data sections feed the perf trajectory (``benchmarks/trend_diff.py``
diffs the engine, parallel, fuzz, service and chaos sections of
consecutive snapshots in CI):

* ``pytest``      — every ``bench_e*.py`` benchmark run through
  pytest-benchmark (wall time per benchmark plus the experiment facts each
  test records in ``extra_info``: verdicts, refinement counts, reductions).
* ``engine``      — direct incremental-vs-restart engine runs over the suite
  programs, recording per program: wall time, ART nodes created/reused,
  abstract-post decisions, solver calls (cold ``check_sat`` queries plus
  context checks of the batched post oracle) and the oracle's
  prepare/context-reuse counters for both modes.
* ``post_oracle`` — the batched abstract-post oracle vs the scalar baseline
  over the suite: per program wall time and ``ssa_translate`` counts (the
  bench_s2 story in raw numbers).
* ``portfolio``   — the refiner portfolio on the divergent corpus: per
  program the single-refiner baselines and the round-robin portfolio's
  verdict, winner, per-arm statuses and total cost (the bench_e9
  complementarity story in raw numbers).
* ``session``     — warm-started vs cold suite batches through the session
  API: total and per-program abstract-post reductions bought by precision
  transfer (the bench_e10 story in raw numbers).
* ``supervision`` — the supervised pool batch under a deterministic
  fault plan (worker crashes on first attempts): per-program verdicts and
  attempt counts plus the supervisor's recovery counters.  Its rows carry
  ``"fault_injected": true`` and are exempt from the trend check — the
  injected retries are deliberate wall-clock noise, not a regression.
* ``parallel``    — sequential vs ``jobs=4`` intra-run parallel exploration
  over the wide-ART programs: per program and mode the verdict, wall time,
  abstract-post decisions and solver calls (bit-identical counters are the
  design invariant — see bench_e11), plus the speculative pool's
  offer/install counters for the parallel mode.
* ``fuzz``        — a fixed-seed differential-fuzz batch through every
  paired-configuration oracle (``repro.testgen``): per oracle the program
  count, mismatch count and both sides' total abstract-post decisions,
  plus a summary row (programs generated, total mismatches, mean posts).
  Any mismatch fails the run, like a verdict disagreement.
* ``service``     — the verification daemon (``repro.serve``): the suite
  submitted twice over a real TCP socket (``cold``/``warm`` modes per
  program — the warm pass must warm-start from the precision the daemon
  banked for the cold one), plus a summary row with the daemon's
  coalesce/warm-hit counters and the 8-identical-concurrent-requests
  coalesce ratio (must stay ≤ 1.25× one request's posts).
* ``chaos``       — the process-backend daemon under a seeded schedule that
  SIGKILLs the worker process of ~20% of the suite's programs on their
  first attempt: per program the clean/faulted verdicts and post counters
  (victim rows carry ``"fault_injected": true`` and are exempt from the
  trend check), plus a summary row with the recovery counters, the journal
  lag after the batch (must be 0) and the crash-overhead wall-clock ratio
  (must stay ≤ 1.5× the fault-free run).

Usage::

    python benchmarks/run_all.py                  # full run, writes BENCH_pr10.json
    python benchmarks/run_all.py --skip-pytest    # direct sections only (fast)
    python benchmarks/run_all.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Session, VerifierOptions  # noqa: E402  (path set up above)
from repro.core import PortfolioEngine  # noqa: E402
from repro.lang import get_source  # noqa: E402

#: Programs of the engine section, with per-program refinement budgets (the
#: divergent ones are capped where rounds get solver-expensive).
ENGINE_PROGRAMS = [
    ("forward", 8),
    ("initcheck", 8),
    ("double_counter", 8),
    ("up_down", 8),
    ("lock_step", 8),
    ("diamond_safe", 8),
    ("simple_safe", 8),
    ("simple_unsafe", 8),
    ("array_init_const", 8),
    ("array_copy", 8),
    ("array_init_buggy", 8),
    ("initcheck_buggy", 5),
]


def run_pytest_section() -> list[dict]:
    """Run bench_e*.py under pytest-benchmark; return one record per test."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest_bench.json"
        bench_files = sorted(str(p) for p in BENCH_DIR.glob("bench_e*.py"))
        completed = subprocess.run(
            [
                sys.executable, "-m", "pytest", "-q",
                *bench_files,
                f"--benchmark-json={json_path}",
            ],
            cwd=REPO_ROOT,
            env={
                **dict(PYTHONPATH=str(REPO_ROOT / "src"), PATH="/usr/bin:/bin"),
            },
            capture_output=True,
            text=True,
        )
        print(completed.stdout.splitlines()[-1] if completed.stdout else "(no output)")
        if completed.returncode != 0:
            print(completed.stdout, file=sys.stderr)
            print(completed.stderr, file=sys.stderr)
            raise SystemExit(f"pytest benchmark run failed ({completed.returncode})")
        data = json.loads(json_path.read_text())
    records = []
    for bench in data.get("benchmarks", []):
        records.append(
            {
                "name": bench["name"],
                "file": bench.get("fullname", "").split("::")[0],
                "seconds": bench["stats"]["mean"],
                "extra_info": bench.get("extra_info", {}),
            }
        )
    return records


def run_engine_section() -> list[dict]:
    """Direct incremental-vs-restart runs with reuse and solver counters.

    Every run uses a fresh cold session: the two modes must not share memo
    caches or warm-start seeds, or the comparison (and the per-run solver
    counters) would be polluted.
    """
    records = []
    for name, max_refinements in ENGINE_PROGRAMS:
        row: dict = {"program": name, "max_refinements": max_refinements}
        for mode, label in ((True, "incremental"), (False, "restart")):
            options = VerifierOptions(
                max_refinements=max_refinements, incremental=mode, warm_start=False
            )
            started = time.perf_counter()
            result = Session(options).run(name)
            solver = result.iterations[-1].solver_stats or {}
            row[label] = {
                "verdict": result.verdict,
                "seconds": round(time.perf_counter() - started, 4),
                "refinements": result.num_refinements,
                "post_decisions": result.post_decisions(),
                "nodes_created": result.engine_stats.get("nodes_created", 0),
                "nodes_reused": result.engine_stats.get("nodes_reused", 0),
                # Solver-level decisions: cold check_sat queries plus
                # assumption checks inside the batched oracle's contexts
                # (pre-batching snapshots only have the first term, so the
                # sum is the comparable trajectory number).
                "solver_calls": (
                    solver.get("sat_queries", 0) + solver.get("context_checks", 0)
                ),
                "triple_checks": solver.get("triple_checks", 0),
                "prepare_calls": solver.get("prepare_calls", 0),
                "context_reuses": solver.get("context_reuses", 0),
                "ssa_translations": solver.get("ssa_translations", 0),
            }
        restart_posts = row["restart"]["post_decisions"]
        if restart_posts:
            row["post_decision_reduction"] = round(
                1 - row["incremental"]["post_decisions"] / restart_posts, 4
            )
        row["verdicts_agree"] = (
            row["incremental"]["verdict"] == row["restart"]["verdict"]
        )
        records.append(row)
        print(
            f"  {name:18s} inc={row['incremental']['verdict']}/"
            f"{row['incremental']['post_decisions']:5d} "
            f"restart={row['restart']['verdict']}/{restart_posts:5d} "
            f"reduction={row.get('post_decision_reduction', 0):7.2%}"
        )
    return records


def run_post_oracle_section() -> dict:
    """Batched vs scalar abstract-post oracle over the engine suite.

    The scalar oracle re-runs the whole pipeline (``ssa_translate`` through a
    cold ``check_sat``) per predicate; the batched one prepares each edge
    once and reuses its solver context.  Wall seconds and translation counts
    per program, plus suite totals — the bench_s2 regression bar (>= 2x
    fewer translations) in trajectory form.
    """
    from repro.core.engine import Budget, VerificationEngine
    from repro.lang import get_program
    from repro.smt.vcgen import VcChecker

    per_program = []
    totals = {"batched": [0.0, 0], "scalar": [0.0, 0]}  # seconds, translations
    for name, max_refinements in ENGINE_PROGRAMS:
        row = {"program": name}
        for batched, label in ((True, "batched"), (False, "scalar")):
            checker = VcChecker(batched_posts=batched)
            engine = VerificationEngine(
                get_program(name), checker=checker,
                budget=Budget(max_refinements=max_refinements),
            )
            started = time.perf_counter()
            result = engine.run()
            seconds = time.perf_counter() - started
            stats = checker.statistics()
            row[label] = {
                "verdict": result.verdict,
                "seconds": round(seconds, 4),
                "ssa_translations": stats["ssa_translations"],
                "prepare_calls": stats["prepare_calls"],
                "context_reuses": stats["context_reuses"],
                "scalar_fallbacks": stats["scalar_fallbacks"],
            }
            totals[label][0] += seconds
            totals[label][1] += stats["ssa_translations"]
        row["verdicts_agree"] = row["batched"]["verdict"] == row["scalar"]["verdict"]
        row["translation_reduction"] = round(
            row["scalar"]["ssa_translations"]
            / max(row["batched"]["ssa_translations"], 1), 2
        )
        per_program.append(row)
        print(
            f"  {name:18s} batched={row['batched']['seconds']:7.3f}s/"
            f"{row['batched']['ssa_translations']:4d}tr "
            f"scalar={row['scalar']['seconds']:7.3f}s/"
            f"{row['scalar']['ssa_translations']:4d}tr "
            f"({row['translation_reduction']}x fewer translations)"
        )
    section = {
        "programs": per_program,
        "batched_seconds": round(totals["batched"][0], 4),
        "scalar_seconds": round(totals["scalar"][0], 4),
        "batched_translations": totals["batched"][1],
        "scalar_translations": totals["scalar"][1],
        "translation_reduction": round(
            totals["scalar"][1] / max(totals["batched"][1], 1), 2
        ),
    }
    print(
        f"  total: batched={section['batched_seconds']}s "
        f"scalar={section['scalar_seconds']}s, "
        f"{section['translation_reduction']}x fewer ssa translations"
    )
    return section


#: The portfolio section's corpus: the divergent programs (path-formula
#: unrolls forever) plus one where the cheap baseline is perfectly adequate.
PORTFOLIO_PROGRAMS = ["forward", "double_counter", "lock_step"]


def run_portfolio_section() -> list[dict]:
    """Single-refiner baselines vs the round-robin portfolio.

    Both sides run under the same refinement budget, so the recorded
    seconds/post-decision comparison is the "same total budget" claim in
    raw numbers.
    """
    from repro.core import Budget

    max_refinements = 12
    records = []
    for name in PORTFOLIO_PROGRAMS:
        row: dict = {"program": name, "max_refinements": max_refinements}
        for refiner in ("path-invariant", "path-formula"):
            options = VerifierOptions(
                refiner=refiner, max_refinements=max_refinements, warm_start=False
            )
            started = time.perf_counter()
            result = Session(options).run(name)
            row[refiner] = {
                "verdict": result.verdict,
                "seconds": round(time.perf_counter() - started, 4),
                "refinements": result.num_refinements,
                "post_decisions": result.post_decisions(),
            }
        started = time.perf_counter()
        portfolio = PortfolioEngine(
            get_source(name),
            mode="round-robin",
            budget=Budget(max_refinements=max_refinements),
        ).run()
        row["portfolio"] = {
            "verdict": portfolio.verdict,
            "winner": portfolio.winner,
            "seconds": round(time.perf_counter() - started, 4),
            "post_decisions": sum(arm["post_decisions"] for arm in portfolio.arms),
            "arms": {
                arm["refiner"]: {
                    "status": arm["status"],
                    "refinements": arm["refinements"],
                    "budget_class": arm["budget_class"],
                }
                for arm in portfolio.arms
            },
        }
        records.append(row)
        print(
            f"  {name:18s} portfolio={portfolio.verdict}/{portfolio.winner} "
            f"pi={row['path-invariant']['verdict']} pf={row['path-formula']['verdict']} "
            f"({row['portfolio']['seconds']}s)"
        )
    return records


def run_session_section() -> dict:
    """Warm-started vs cold two-epoch suite batches through one session."""
    from common import SESSION_MAX_REFINEMENTS, SESSION_SUITE

    options = VerifierOptions(max_refinements=SESSION_MAX_REFINEMENTS)
    tasks = SESSION_SUITE * 2
    results = {}
    for warm, label in ((True, "warm"), (False, "cold")):
        session = Session(options.replace(warm_start=warm))
        started = time.perf_counter()
        docs = session.run_many(tasks, jobs=1)
        results[label] = {
            "seconds": round(time.perf_counter() - started, 4),
            "post_decisions": sum(doc["post_decisions"] for doc in docs),
            "verdicts": [doc["verdict"] for doc in docs],
            "warm_starts": session.warm_starts,
            "predicates_banked": session.predicates_banked,
        }
    warm_posts = results["warm"]["post_decisions"]
    cold_posts = results["cold"]["post_decisions"]
    section = {
        "programs": SESSION_SUITE,
        "epochs": 2,
        **results,
        "post_decision_reduction": round(1 - warm_posts / cold_posts, 4),
        "verdicts_agree": results["warm"]["verdicts"] == results["cold"]["verdicts"],
    }
    print(
        f"  warm={warm_posts} cold={cold_posts} posts "
        f"(reduction={section['post_decision_reduction']:.2%}, "
        f"{results['warm']['warm_starts']} warm starts)"
    )
    return section


def run_supervision_section() -> dict:
    """The supervised pool batch, fault-free vs under an injected fault plan.

    Three suite programs crash their worker on the first attempt; the
    supervisor must retry them on fresh workers and reproduce the
    fault-free verdicts.  Every per-program row carries
    ``"fault_injected": True`` so the trend check skips them.
    """
    from repro.core.faults import FaultPlan, FaultSpec, installed

    budgets = dict(ENGINE_PROGRAMS)
    base = VerifierOptions(task_timeout=120.0, task_retries=2)

    def suite_tasks(session: Session) -> list:
        return [
            session.task(name, options=base.replace(max_refinements=budget))
            for name, budget in ENGINE_PROGRAMS
        ]

    started = time.perf_counter()
    clean_session = Session(base)
    clean_docs = clean_session.run_many(suite_tasks(clean_session), jobs=4)
    clean_seconds = round(time.perf_counter() - started, 4)

    plan = FaultPlan(
        [
            FaultSpec(kind="crash", key="forward", attempts=(0,)),
            FaultSpec(kind="crash", key="lock_step", attempts=(0,)),
            FaultSpec(kind="crash", key="simple_unsafe", attempts=(0,)),
        ],
        seed=7,
    )
    with installed(plan):
        started = time.perf_counter()
        faulted_session = Session(base)
        faulted_docs = faulted_session.run_many(
            suite_tasks(faulted_session), jobs=4
        )
        faulted_seconds = round(time.perf_counter() - started, 4)

    rows = []
    for clean, faulted in zip(clean_docs, faulted_docs):
        rows.append(
            {
                "program": faulted["name"],
                "fault_injected": True,
                "verdict": faulted["verdict"],
                "attempts": faulted["attempts"],
                "recovered": bool(faulted.get("failures")),
                "verdict_agrees": faulted["verdict"] == clean["verdict"],
            }
        )
    section = {
        "fault_plan": plan.to_payload(),
        "programs": rows,
        "clean_seconds": clean_seconds,
        "faulted_seconds": faulted_seconds,
        "supervision": faulted_session.statistics()["supervision"],
        "verdicts_agree": all(row["verdict_agrees"] for row in rows),
    }
    stats = section["supervision"]
    print(
        f"  clean={clean_seconds}s faulted={faulted_seconds}s "
        f"crashes={stats['crashes']} recovered={stats['tasks_recovered']} "
        f"failed={stats['tasks_failed']} "
        f"verdicts_agree={section['verdicts_agree']}"
    )
    return section


#: The parallel section's corpus: the wide-ART programs of bench_e11, with
#: per-program engine options.  PARTITION stops before its third refinement
#: (pure refiner compute, see bench_e11's docstring).
PARALLEL_PROGRAMS = [
    ("forward", dict(max_refinements=8)),
    ("initcheck", dict(max_refinements=8)),
    ("partition", dict(max_refinements=2, max_nodes=40)),
]

#: Worker count of the parallel section's parallel mode.
PARALLEL_JOBS = 4


def run_parallel_section() -> list[dict]:
    """Sequential vs ``jobs=4`` parallel exploration over the wide-ART suite.

    The load-bearing numbers are the deterministic counters: the parallel
    engine must post exactly the same abstract-post decisions and solver
    calls as the sequential one (speculation is charged like inline work).
    Raw wall time rides along; the latency-hiding speedup story lives in
    bench_e11, which injects per-query solver latency to make it visible
    on a single GIL-bound core.
    """
    records = []
    for name, engine_kw in PARALLEL_PROGRAMS:
        row: dict = {"program": name, "jobs": PARALLEL_JOBS, **engine_kw}
        for jobs, label in ((1, "sequential"), (PARALLEL_JOBS, "parallel")):
            options = VerifierOptions(jobs=jobs, warm_start=False, **engine_kw)
            started = time.perf_counter()
            result = Session(options).run(name)
            solver = result.iterations[-1].solver_stats or {}
            row[label] = {
                "verdict": result.verdict,
                "seconds": round(time.perf_counter() - started, 4),
                "refinements": result.num_refinements,
                "post_decisions": result.post_decisions(),
                "solver_calls": (
                    solver.get("sat_queries", 0) + solver.get("context_checks", 0)
                ),
                "triple_checks": solver.get("triple_checks", 0),
            }
            pool = result.engine_stats.get("parallel")
            if pool is not None:
                row[label]["pool"] = {
                    key: pool[key]
                    for key in ("offered", "chunks", "installed", "missed", "wasted")
                }
        row["verdicts_agree"] = (
            row["sequential"]["verdict"] == row["parallel"]["verdict"]
        )
        row["posts_identical"] = (
            row["sequential"]["post_decisions"] == row["parallel"]["post_decisions"]
        )
        records.append(row)
        print(
            f"  {name:18s} seq={row['sequential']['verdict']}/"
            f"{row['sequential']['post_decisions']:5d} "
            f"par(j{PARALLEL_JOBS})={row['parallel']['verdict']}/"
            f"{row['parallel']['post_decisions']:5d} "
            f"identical={row['posts_identical']}"
        )
    return records


#: The fuzz section's fixed recipe: same seed every snapshot, so the
#: per-oracle post-decision totals are comparable across PRs.
FUZZ_SEED = 1
FUZZ_COUNT = 40


def run_fuzz_section() -> list[dict]:
    """A fixed-seed differential-fuzz batch through every oracle.

    One row per oracle in the trend layout (``baseline``/``variant`` sides
    with ``post_decisions``), plus a ``summary`` row with batch-level
    facts.  Any mismatch fails the benchmark run, like a verdict
    disagreement in the engine section.
    """
    from repro.testgen import run_fuzz

    report = run_fuzz(seed=FUZZ_SEED, count=FUZZ_COUNT)
    rows = []
    for oracle in report.oracles:
        totals = report.oracle_totals[oracle]
        mismatches = sum(1 for m in report.mismatches if m.oracle == oracle)
        rows.append(
            {
                "program": f"fuzz:{oracle}",
                "count": totals["programs"],
                "mismatches": mismatches,
                "baseline": {
                    "post_decisions": totals["reference_posts"],
                    "seconds": totals["seconds"],
                },
                "variant": {"post_decisions": totals["variant_posts"]},
            }
        )
        print(
            f"  {oracle:12s} {totals['programs']:3d} programs "
            f"posts={totals['reference_posts']}/{totals['variant_posts']} "
            f"mismatches={mismatches} ({totals['seconds']}s)"
        )
    rows.append(
        {
            "program": "summary",
            "programs_generated": len(report.programs),
            "total_mismatches": len(report.mismatches),
            "divergences": report.divergences,
            "verdicts": report.verdicts,
            "mean_posts": report.mean_posts(),
            "seconds": round(report.seconds, 3),
        }
    )
    print(
        f"  total: {len(report.programs)} programs, "
        f"{len(report.mismatches)} mismatches, "
        f"{report.divergences} explained divergences, "
        f"mean posts {report.mean_posts()}"
    )
    return rows


def run_service_section() -> list[dict]:
    """The daemon over a real socket: cold/warm passes plus the coalesce bar.

    One row per suite program in the trend layout (``cold``/``warm`` modes
    with ``post_decisions``/``seconds``), plus a ``summary`` row carrying
    the daemon's request counters and the 8-identical-concurrent-requests
    coalesce ratio.
    """
    from repro.serve import ServiceClient, ServiceConfig, VerificationService

    service = VerificationService(ServiceConfig(workers=4, max_queue=64)).start()
    try:
        rows = []
        with ServiceClient(port=service.port, timeout=600.0) as client:
            for name, max_refinements in ENGINE_PROGRAMS:
                row: dict = {"program": name, "max_refinements": max_refinements}
                options = {"max_refinements": max_refinements}
                for label in ("cold", "warm"):
                    started = time.perf_counter()
                    doc = client.verify(name, options=options)
                    row[label] = {
                        "verdict": doc["verdict"],
                        "seconds": round(time.perf_counter() - started, 4),
                        "post_decisions": doc["post_decisions"],
                        "warm_started": doc["engine"]["session"]["warm_started"],
                    }
                row["verdicts_agree"] = row["cold"]["verdict"] == row["warm"]["verdict"]
                cold_posts = row["cold"]["post_decisions"]
                if cold_posts:
                    row["post_decision_reduction"] = round(
                        1 - row["warm"]["post_decisions"] / cold_posts, 4
                    )
                rows.append(row)
                print(
                    f"  {name:18s} cold={row['cold']['verdict']}/"
                    f"{cold_posts:5d} warm={row['warm']['verdict']}/"
                    f"{row['warm']['post_decisions']:5d} "
                    f"reduction={row.get('post_decision_reduction', 0):7.2%}"
                )

        # The coalesce bar: 8 identical concurrent requests of a program the
        # daemon has not seen must cost ≤ 1.25x one request's posts.
        coalesce_options = {"max_refinements": 2, "max_nodes": 40}
        probe = VerificationService(ServiceConfig(workers=1)).start()
        try:
            with ServiceClient(port=probe.port, timeout=600.0) as client:
                one = client.verify("partition", options=coalesce_options)
        finally:
            probe.stop()
        posts_before = service.posts_executed
        with ServiceClient(port=service.port, timeout=600.0) as client:
            batch = client.submit_many(
                [("partition", "partition")] * 8, options=coalesce_options
            )
        batch_posts = service.posts_executed - posts_before
        stats = service.statistics()["service"]
        summary = {
            "program": "summary",
            "verify_requests": stats["verify_requests"],
            "engine_runs": stats["engine_runs"],
            "coalesce_hits": stats["coalesce_hits"],
            "warm_hits": stats["warm_hits"],
            "rejections": stats["rejections"],
            "coalesce_single_posts": one["post_decisions"],
            "coalesce_batch_posts": batch_posts,
            "coalesce_ratio": round(
                batch_posts / max(one["post_decisions"], 1), 4
            ),
            "coalesce_verdicts": sorted({doc["verdict"] for doc in batch}),
        }
        rows.append(summary)
        print(
            f"  coalesce: 8 identical requests cost {batch_posts} posts vs "
            f"{one['post_decisions']} for one ({summary['coalesce_ratio']}x); "
            f"{stats['coalesce_hits']} hits, {stats['warm_hits']} warm starts"
        )
        return rows
    finally:
        service.stop()


#: The chaos section's seeded schedule: the fraction of suite programs whose
#: first attempt SIGKILLs its worker process (mirrors bench_e13_chaos.py).
CHAOS_SEED = 2027
CHAOS_CRASH_RATE = 0.2


def run_chaos_section() -> list[dict]:
    """The process-backend daemon under a seeded worker-crash schedule.

    One row per suite program in the trend layout (``clean``/``faulted``
    modes with ``post_decisions``); victim rows carry
    ``"fault_injected": True`` so the trend check skips them.  The summary
    row holds the crash-overhead ratio (the bench_e13 bar: ≤ 1.5× the
    fault-free wall) and the request-journal lag after the batch (must be
    0: every accepted request was answered despite the kills).
    """
    import random
    import tempfile

    from repro.core.faults import FaultPlan, FaultSpec, installed
    from repro.serve import ServiceClient, ServiceConfig, VerificationService

    rng = random.Random(CHAOS_SEED)
    count = max(1, round(CHAOS_CRASH_RATE * len(ENGINE_PROGRAMS)))
    victims = set(rng.sample([name for name, _ in ENGINE_PROGRAMS], count))
    plan = FaultPlan(
        [
            FaultSpec(kind="kill-worker", key=name, attempts=(0,))
            for name in sorted(victims)
        ]
    )

    def run_pass(journal_path: Path):
        service = VerificationService(
            ServiceConfig(
                workers=4,
                max_queue=32,
                worker_backend="process",
                journal_path=journal_path,
            )
        ).start()
        try:
            started = time.perf_counter()
            with ServiceClient(port=service.port, timeout=600.0) as client:
                docs = client.submit_many(
                    [
                        {
                            "source": name,
                            "name": name,
                            "options": {"max_refinements": budget},
                        }
                        for name, budget in ENGINE_PROGRAMS
                    ]
                )
            seconds = round(time.perf_counter() - started, 4)
            stats = service.statistics()["service"]
        finally:
            service.stop()
        return docs, seconds, stats

    with tempfile.TemporaryDirectory() as tmp:
        clean_docs, clean_seconds, _ = run_pass(Path(tmp) / "clean.wal")
        with installed(plan):
            faulted_docs, faulted_seconds, stats = run_pass(
                Path(tmp) / "faulted.wal"
            )

    rows: list[dict] = []
    for clean, faulted in zip(clean_docs, faulted_docs):
        row: dict = {
            "program": faulted["name"],
            "clean": {
                "verdict": clean["verdict"],
                "post_decisions": clean["post_decisions"],
            },
            "faulted": {
                "verdict": faulted["verdict"],
                "post_decisions": faulted["post_decisions"],
                "attempts": faulted["attempts"],
            },
            "verdicts_agree": clean["verdict"] == faulted["verdict"],
        }
        if faulted["name"] in victims:
            row["fault_injected"] = True
            row["recovered"] = bool(faulted.get("failures"))
        rows.append(row)
        marker = " [killed]" if faulted["name"] in victims else ""
        print(
            f"  {faulted['name']:18s} clean={clean['verdict']:7s} "
            f"faulted={faulted['verdict']:7s} "
            f"attempts={faulted['attempts']}{marker}"
        )
    supervision = stats["supervision"]
    summary = {
        "program": "summary",
        "worker_backend": "process",
        "fault_plan": plan.to_payload(),
        "clean_seconds": clean_seconds,
        "faulted_seconds": faulted_seconds,
        "overhead_ratio": round(faulted_seconds / clean_seconds, 4),
        "crashes": supervision["crashes"],
        "tasks_recovered": supervision["tasks_recovered"],
        "tasks_failed": supervision["tasks_failed"],
        "journal_lag": stats["journal"]["lag"],
        "verdicts_agree": all(row["verdicts_agree"] for row in rows),
    }
    rows.append(summary)
    print(
        f"  clean={clean_seconds}s faulted={faulted_seconds}s "
        f"({summary['overhead_ratio']}x), crashes={summary['crashes']} "
        f"recovered={summary['tasks_recovered']} "
        f"journal_lag={summary['journal_lag']}"
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", "-o", default=str(REPO_ROOT / "BENCH_pr10.json"),
        help="where to write the JSON report (default: repo root BENCH_pr10.json)",
    )
    parser.add_argument(
        "--skip-pytest", action="store_true",
        help="skip the pytest-benchmark section (engine section only)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report: dict = {"suite": "bench_e*", "sections": {}}
    print("engine section (incremental vs restart):")
    report["sections"]["engine"] = run_engine_section()
    print("post-oracle section (batched vs scalar abstract posts):")
    report["sections"]["post_oracle"] = run_post_oracle_section()
    print("portfolio section (refiner complementarity):")
    report["sections"]["portfolio"] = run_portfolio_section()
    print("session section (warm-start precision transfer):")
    report["sections"]["session"] = run_session_section()
    print("supervision section (fault-injected supervised batch):")
    report["sections"]["supervision"] = run_supervision_section()
    print(f"parallel section (sequential vs jobs={PARALLEL_JOBS} exploration):")
    report["sections"]["parallel"] = run_parallel_section()
    print(f"fuzz section (seed={FUZZ_SEED}, {FUZZ_COUNT} programs, all oracles):")
    report["sections"]["fuzz"] = run_fuzz_section()
    print("service section (the daemon over a real socket, cold vs warm):")
    report["sections"]["service"] = run_service_section()
    print("chaos section (process-backend daemon under injected worker kills):")
    report["sections"]["chaos"] = run_chaos_section()
    if not args.skip_pytest:
        print("pytest section (bench_e*.py):")
        report["sections"]["pytest"] = run_pytest_section()
    report["total_seconds"] = round(time.perf_counter() - started, 2)

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output} in {report['total_seconds']}s")
    disagreements = [
        row["program"]
        for row in report["sections"]["engine"]
        if not row["verdicts_agree"]
    ]
    disagreements += [
        f"{row['program']} (parallel)"
        for row in report["sections"]["parallel"]
        if not (row["verdicts_agree"] and row["posts_identical"])
    ]
    disagreements += [
        f"{row['program']} ({row['mismatches']} fuzz mismatches)"
        for row in report["sections"]["fuzz"]
        if row.get("mismatches")
    ]
    disagreements += [
        f"{row['program']} (service)"
        for row in report["sections"]["service"]
        if not row.get("verdicts_agree", True)
    ]
    service_summary = report["sections"]["service"][-1]
    if service_summary["coalesce_ratio"] > 1.25:
        disagreements.append(
            f"service coalesce ratio {service_summary['coalesce_ratio']} > 1.25"
        )
    disagreements += [
        f"{row['program']} (chaos)"
        for row in report["sections"]["chaos"]
        if not row.get("verdicts_agree", True)
    ]
    chaos_summary = report["sections"]["chaos"][-1]
    if chaos_summary["overhead_ratio"] > 1.5:
        disagreements.append(
            f"chaos crash-overhead ratio {chaos_summary['overhead_ratio']} > 1.5"
        )
    if chaos_summary["journal_lag"]:
        disagreements.append(
            f"chaos journal lag {chaos_summary['journal_lag']} != 0"
        )
    if disagreements:
        print(f"VERDICT DISAGREEMENTS: {disagreements}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
