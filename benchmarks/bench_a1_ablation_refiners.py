"""A1 — Ablation: refinement strategy.

Compares the two refiners on the same programs: outcome, number of
refinements and number of predicates.  This quantifies the paper's core
claim — generalising counterexamples to path programs is what makes the
loop-coupling programs provable.
"""

import pytest

from common import record, run_once
from repro.core import Verdict, verify
from repro.lang import get_program

PROGRAMS_UNDER_TEST = ["forward", "double_counter", "lock_step"]

#: Whether the path-formula baseline proves the program within the budget.
#: The baseline tracks the atoms of the negated assertion (as BLAST does), so
#: a program whose inductive invariant *is* an assertion atom — lock_step's
#: ``i = j`` — is legitimately proved in one refinement.  The baseline only
#: diverges when the invariant relates variables in a way no path atom does
#: (``a + b = 3i`` for forward, ``a = 2i`` for double_counter): those loops
#: are unrolled one counterexample at a time.
BASELINE_PROVES = {"forward": False, "double_counter": False, "lock_step": True}


@pytest.mark.parametrize("name", PROGRAMS_UNDER_TEST)
@pytest.mark.parametrize("refiner", ["path-invariant", "path-formula"])
def test_refiner_ablation(benchmark, name, refiner):
    result = run_once(benchmark, verify, get_program(name), refiner=refiner, max_refinements=3)
    record(
        benchmark,
        verdict=result.verdict,
        refinements=result.num_refinements,
        predicates=result.total_predicates(),
    )
    if refiner == "path-invariant" or BASELINE_PROVES[name]:
        assert result.verdict == Verdict.SAFE
    else:
        assert result.verdict != Verdict.SAFE
