"""E4 — Section 5 "Example INITCHECK": quantified template instantiation.

On the path program of the INITCHECK counterexample, the synthesizer must
instantiate quantified templates at the two cut-points without any template
refinement; the paper reports the invariants
``forall k: 0 <= k <= i-1 -> a[k] = 0`` (initialisation loop, as derived in
Section 4.2) and ``forall k: i <= k <= n-1 -> a[k] = 0`` (checking loop).
"""

import pytest

from common import first_counterexample, record, run_once
from repro.core import PathInvariantRefiner, Precision, build_path_program
from repro.core.predabs import AbstractReachability
from repro.invgen import PathInvariantSynthesizer
from repro.invgen.postcond import make_range_forall
from repro.lang import get_program
from repro.logic.formulas import eq
from repro.logic.terms import Var, const, read, var
from repro.smt.vcgen import VcChecker


def _initcheck_path_program():
    program = get_program("initcheck")
    checker = VcChecker()
    precision = Precision()
    reach = AbstractReachability(program, checker)
    refiner = PathInvariantRefiner(checker)
    # The first counterexample skips the loops; refine once to obtain the
    # counterexample that traverses both loops (the one shown in Figure 2(b)).
    refiner.refine(program, reach.run(precision).counterexample, precision)
    path = reach.run(precision).counterexample
    return build_path_program(program, path).program


def test_initcheck_quantified_synthesis(benchmark):
    path_program = _initcheck_path_program()
    synthesizer = PathInvariantSynthesizer()
    result = run_once(benchmark, synthesizer.synthesize, path_program)
    record(
        benchmark,
        success=result.success,
        candidates_proposed=result.candidates_proposed,
        candidates_surviving=result.candidates_surviving,
        houdini_iterations=result.houdini_iterations,
        assertions={str(k): str(v) for k, v in result.cutpoint_assertions.items()},
    )
    assert result.success
    # The initialisation-loop invariant of Section 4.2 must be implied by one
    # of the cut-point assertions.
    checker = VcChecker()
    target = make_range_forall(
        Var("__k"), const(0), var("i") - const(1), eq(read("a", var("__k")), 0)
    )
    assert any(
        checker.check_entailment(formula, target)
        for formula in result.cutpoint_assertions.values()
    )
