"""E11 — Parallel in-run ART exploration vs the sequential engine.

Two properties, measured separately:

**Equivalence** — ``jobs=N`` must be *observationally identical* to the
sequential engine on the full 16-combo corpus the incremental-vs-restart
differential (bench_e8 / tests/core/test_engine.py) established: same
verdicts, same precisions, same abstract-post decision counts.  Workers
only pre-decide ``(state, transition, predicate)`` verdicts the unchanged
sequential commit loop then consumes as cache hits, so nothing about the
answer may move.

**Latency hiding** — the wall-clock win of column-sharded speculation.  On
one CPython core the solver shards cannot add raw compute (the GIL
serialises pure-Python solving), so the speedup experiment injects a
deterministic per-query solver latency with the ``slow-post`` fault: every
undecided predicate of a batched abstract post stalls ``SLEEP_SECONDS``,
modelling the per-query round-trip of a remote or disk-backed solver
backend.  ``time.sleep`` releases the GIL, so stalls on worker shards
overlap — exactly the latency a multi-context solver deployment hides.
The restart engine is used because it re-derives the whole tree every
round: the widest exploration workload, with no sequential repair phase
diluting the parallel section.  Raw (no-fault) wall ratios are recorded
for the trend file but never asserted — on a single core with the GIL
they hover around 1.0 by construction.

The ≥1.5x bar at 4 workers is asserted on the wide-ART programs the issue
names: PARTITION and INITCHECK.
"""

import time

import pytest

from common import record, run_once
from repro.core import verify
from repro.core.api import VerifierOptions
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.lang import get_program

#: Mirror of tests/core/test_engine.py::EQUIVALENCE_CORPUS — one definition
#: there for tier-1, one here so the bench file stays self-contained.
EQUIVALENCE_CORPUS = [
    ("forward", "path-invariant"),
    ("forward", "path-formula"),
    ("initcheck", "path-invariant"),
    ("double_counter", "path-invariant"),
    ("double_counter", "path-formula"),
    ("up_down", "path-formula"),
    ("lock_step", "path-invariant"),
    ("lock_step", "path-formula"),
    ("simple_safe", "path-invariant"),
    ("simple_unsafe", "path-invariant"),
    ("simple_unsafe", "path-formula"),
    ("diamond_safe", "path-invariant"),
    ("forward_buggy", "path-invariant"),
    ("array_init_buggy", "path-invariant"),
    ("array_init_const", "path-invariant"),
    ("array_copy", "path-invariant"),
]

#: Injected per-query solver latency for the speedup experiment.
SLEEP_SECONDS = 0.02

#: The wide-ART speedup suite: program -> engine options.  PARTITION's
#: budget stops before its third refinement, whose quantified path-invariant
#: search is pure refiner compute that no exploration pool can touch.
SPEEDUP_SUITE = {
    "initcheck": dict(max_refinements=8),
    "partition": dict(max_refinements=2, max_nodes=40),
}

#: Asserted wall-clock bar at four workers under injected solver latency.
MIN_SPEEDUP = 1.5


def run_with_jobs(name, jobs, refiner="path-invariant", incremental=True, **kw):
    options = VerifierOptions(
        refiner=refiner, jobs=jobs, incremental=incremental, **kw
    )
    return verify(get_program(name), options=options)


def _timed(name, jobs, **kw):
    start = time.perf_counter()
    result = run_with_jobs(name, jobs, incremental=False, **kw)
    return time.perf_counter() - start, result


@pytest.mark.parametrize("name,refiner", EQUIVALENCE_CORPUS)
def test_parallel_is_observationally_sequential(benchmark, name, refiner):
    def run_all_modes():
        sequential = run_with_jobs(name, 1, refiner, max_refinements=4)
        parallel = {
            jobs: run_with_jobs(name, jobs, refiner, max_refinements=4)
            for jobs in (2, 4)
        }
        return sequential, parallel

    sequential, parallel = run_once(benchmark, run_all_modes)
    record(
        benchmark,
        verdict=sequential.verdict,
        post_decisions=sequential.post_decisions(),
    )
    for jobs, result in parallel.items():
        assert result.verdict == sequential.verdict, (name, refiner, jobs)
        assert (
            result.precision.snapshot() == sequential.precision.snapshot()
        ), (name, refiner, jobs)
        assert result.post_decisions() == sequential.post_decisions(), (
            name, refiner, jobs,
        )


@pytest.mark.parametrize("name", sorted(SPEEDUP_SUITE))
def test_four_workers_hide_solver_latency(benchmark, name):
    kw = SPEEDUP_SUITE[name]

    def run_experiment():
        plan = FaultPlan(
            [FaultSpec(kind="slow-post", key="*", seconds=SLEEP_SECONDS, attempts=())]
        )
        with installed(plan):
            seq_seconds, seq_result = _timed(name, 1, **kw)
            par_seconds, par_result = _timed(name, 4, **kw)
        assert plan.fired, "the injected solver latency never fired"
        # The raw (fault-free) ratio rides along for the trend file: on a
        # single GIL-bound core it is ~1.0 and is deliberately unasserted.
        raw_seq_seconds, _ = _timed(name, 1, **kw)
        raw_par_seconds, _ = _timed(name, 4, **kw)
        return (
            seq_seconds, par_seconds, seq_result, par_result,
            raw_seq_seconds, raw_par_seconds,
        )

    (
        seq_seconds, par_seconds, seq_result, par_result,
        raw_seq_seconds, raw_par_seconds,
    ) = run_once(benchmark, run_experiment)

    speedup = seq_seconds / par_seconds
    record(
        benchmark,
        verdict=seq_result.verdict,
        sequential_seconds=round(seq_seconds, 4),
        parallel_seconds=round(par_seconds, 4),
        speedup=round(speedup, 4),
        raw_ratio=round(raw_seq_seconds / raw_par_seconds, 4),
        post_decisions=seq_result.post_decisions(),
    )
    # Same answer, faster wall clock: latency hiding must never trade
    # correctness, and four workers must clear the bar.
    assert par_result.verdict == seq_result.verdict
    assert par_result.precision.snapshot() == seq_result.precision.snapshot()
    assert par_result.post_decisions() == seq_result.post_decisions()
    assert speedup >= MIN_SPEEDUP, (
        f"{name}: {speedup:.2f}x at 4 workers, expected >= {MIN_SPEEDUP}x "
        f"({seq_seconds:.2f}s sequential vs {par_seconds:.2f}s parallel)"
    )
