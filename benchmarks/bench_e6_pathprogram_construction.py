"""E6 — Figure 4 / Section 3: path-program construction.

The paper works through a two-nested-loops error path and lists the complete
transition set of its path program (seven path transitions, the hatted copy
of the inner block at position 3, and the hatted copy of the outer block at
position 6 — 17 transitions in total, counting the X'=X bridges).  This
benchmark rebuilds that object and measures construction on the paper's
example and on the benchmark programs.
"""

import pytest

from common import first_counterexample, record, run_once
from repro.core import build_path_program, nested_blocks
from repro.lang import get_program

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests", "core"))
from test_core import figure4_program_and_path  # noqa: E402


def test_figure4_path_program(benchmark):
    program, path = figure4_program_and_path()
    path_program = run_once(benchmark, build_path_program, program, path)
    blocks = path_program.blocks
    record(
        benchmark,
        transitions=len(path_program.program.transitions),
        blocks=[str(b) for b in blocks],
    )
    assert len(path_program.program.transitions) == 17
    assert len(blocks) == 2
    assert {frozenset(l.name for l in b.locations) for b in blocks} == {
        frozenset({"l0", "l1", "l2"}),
        frozenset({"l1", "l2"}),
    }


def test_forward_path_program_construction(benchmark):
    program = get_program("forward")

    def construct():
        path = first_counterexample(program)
        return build_path_program(program, path)

    path_program = run_once(benchmark, construct)
    record(
        benchmark,
        path_length=len(path_program.path),
        transitions=len(path_program.program.transitions),
        locations=len(path_program.program.locations),
    )
    assert path_program.program.transitions
