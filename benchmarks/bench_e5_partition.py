"""E5 — Figure 3 / Section 2.3: PARTITION needs two path programs.

Each of the two assertion loops produces its own spurious counterexample and
its own path program; each path program contributes one universally
quantified conjunct (over ``ge`` and over ``lt`` respectively).  The paper's
point is that the disjunctive structure is handled lazily by the CEGAR loop
rather than by a single global invariant-synthesis query.
"""

import pytest

from common import record, run_once
from repro.core import Verdict, verify
from repro.lang import get_program


def test_partition_with_path_invariants(benchmark):
    program = get_program("partition")
    result = run_once(
        benchmark, verify, program, refiner="path-invariant", max_refinements=4, max_art_nodes=80
    )
    synthesis_calls = [
        record_.refinement.synthesis
        for record_ in result.iterations
        if record_.refinement is not None and record_.refinement.synthesis is not None
    ]
    arrays_with_invariants = set()
    if result.precision is not None:
        for location in result.precision.locations():
            for predicate in result.precision.predicates_at(location):
                if predicate.has_quantifier():
                    arrays_with_invariants |= predicate.arrays()
    record(
        benchmark,
        verdict=result.verdict,
        refinements=result.num_refinements,
        path_programs=len(synthesis_calls),
        quantified_arrays=sorted(arrays_with_invariants),
    )
    # The verification needs at least two refinement rounds (one per branch /
    # assertion loop), mirroring the lazy disjunctive reasoning of the paper.
    assert result.verdict != Verdict.UNSAFE
    assert result.num_refinements >= 2
