"""E3 — Figure 2 / Section 2.2: INITCHECK needs a quantified path invariant.

Path-invariant refinement discovers a universally quantified invariant and
proves the program; the path-formula baseline can only learn one ``a[j] = 0``
fact per unwinding and keeps producing longer counterexamples.
"""

import pytest

from common import record, run_once
from repro.core import Verdict, verify
from repro.lang import get_program


def test_initcheck_with_path_invariants(benchmark):
    program = get_program("initcheck")
    result = run_once(
        benchmark, verify, program, refiner="path-invariant", max_refinements=3, max_art_nodes=80
    )
    quantified = sum(
        1
        for location in result.precision.locations()
        for predicate in result.precision.predicates_at(location)
        if predicate.has_quantifier()
    )
    record(
        benchmark,
        verdict=result.verdict,
        refinements=result.num_refinements,
        quantified_predicates=quantified,
    )
    # The quantified predicates must have been discovered; whether the
    # bounded ART budget suffices for the full end-to-end proof is recorded
    # in EXPERIMENTS.md (the synthesis-level reproduction is E4).
    assert result.verdict != Verdict.UNSAFE
    assert quantified > 0


def test_initcheck_with_path_formula_baseline(benchmark):
    program = get_program("initcheck")
    result = run_once(
        benchmark, verify, program, refiner="path-formula", max_refinements=3, max_art_nodes=80
    )
    lengths = [r.counterexample_length for r in result.iterations if r.counterexample_length]
    record(benchmark, verdict=result.verdict, counterexample_lengths=lengths)
    assert result.verdict == Verdict.UNKNOWN
