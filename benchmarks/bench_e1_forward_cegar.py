"""E1 — Figure 1 / Section 2.1: FORWARD under both refinement strategies.

The paper's claim: classic path-formula refinement keeps unrolling the loop
(predicates ``i=k, a=k, b=2k`` per unwinding, never terminating), while
path-invariant refinement proves the program after discovering ``a+b = 3i``
and ``a+b <= 3n`` at the loop head.
"""

import pytest

from common import record, run_once
from repro.core import Verdict, verify
from repro.lang import get_program


def test_forward_with_path_invariants(benchmark):
    program = get_program("forward")
    result = run_once(benchmark, verify, program, refiner="path-invariant", max_refinements=4)
    record(
        benchmark,
        verdict=result.verdict,
        refinements=result.num_refinements,
        predicates=result.total_predicates(),
    )
    assert result.verdict == Verdict.SAFE


def test_forward_with_path_formula_baseline(benchmark):
    program = get_program("forward")
    result = run_once(benchmark, verify, program, refiner="path-formula", max_refinements=4)
    lengths = [r.counterexample_length for r in result.iterations if r.counterexample_length]
    record(
        benchmark,
        verdict=result.verdict,
        counterexample_lengths=lengths,
        predicates=result.total_predicates(),
    )
    # The baseline does not converge: counterexamples keep growing and the
    # refinement budget is exhausted.
    assert result.verdict == Verdict.UNKNOWN
    assert lengths[-1] > lengths[0]
