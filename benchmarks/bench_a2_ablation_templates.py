"""A2 — Ablation: template language of the candidate space.

Measures what the synthesizer can establish on the FORWARD path program when
the candidate space is restricted: equality templates only (the paper's first
FORWARD attempt), equality plus inequality templates (the refined attempt),
and the full candidate space used by the CEGAR refiner.
"""

import pytest

from common import looping_counterexample, record, run_once
from repro.core import PathFormulaRefiner, build_path_program
from repro.invgen import (
    FarkasEngine,
    PathInvariantSynthesizer,
    SynthesisOptions,
    cutpoints,
    equality_template,
)
from repro.lang import get_program
from repro.logic.terms import Var


def _forward_path_program():
    program = get_program("forward")
    path, _ = looping_counterexample(program, PathFormulaRefiner())
    return build_path_program(program, path).program


VARIABLES = [Var(name) for name in ("a", "b", "i", "n")]


def test_equality_only_templates(benchmark):
    path_program = _forward_path_program()
    engine = FarkasEngine()
    templates = {cut: equality_template(VARIABLES) for cut in cutpoints(path_program)}
    result = run_once(benchmark, engine.synthesize, path_program, templates)
    record(benchmark, success=result.success)
    assert not result.success


def test_equality_plus_inequality_templates(benchmark):
    path_program = _forward_path_program()
    engine = FarkasEngine()
    templates = {
        cut: equality_template(VARIABLES).with_extra_inequality(VARIABLES)
        for cut in cutpoints(path_program)
    }
    result = run_once(benchmark, engine.synthesize, path_program, templates)
    record(benchmark, success=result.success)
    assert result.success


def test_full_candidate_space(benchmark):
    path_program = _forward_path_program()
    synthesizer = PathInvariantSynthesizer(options=SynthesisOptions(use_farkas=False))
    result = run_once(benchmark, synthesizer.synthesize, path_program)
    record(
        benchmark,
        success=result.success,
        candidates_proposed=result.candidates_proposed,
        candidates_surviving=result.candidates_surviving,
    )
    assert result.success
