"""E7 — Section 6: the program suite and the buggy INITCHECK variant.

The paper states that a suite of array-manipulating programs (including the
Section 2 examples) could be proved automatically with path invariants, while
plain BLAST could not prove any of them, and discusses the buggy INITCHECK
variant on which path programs do not help (the error is real and the CEGAR
loop keeps producing longer traces).  This benchmark runs a representative
fast subset of the suite under both refiners and reports who proves what.
"""

import pytest

from common import record, run_once
from repro.core import Verdict, verify
from repro.lang import PROGRAMS, get_program

#: A fast, representative subset of the suite (the full list is in
#: repro.lang.programs; the heavier array programs are exercised by E3-E5).
SUITE = ["forward", "double_counter", "up_down", "lock_step", "simple_safe", "diamond_safe"]
BUGGY = ["simple_unsafe", "array_init_buggy"]


@pytest.mark.parametrize("name", SUITE)
def test_suite_safe_programs(benchmark, name):
    result = run_once(benchmark, verify, get_program(name), max_refinements=4)
    record(benchmark, verdict=result.verdict, refinements=result.num_refinements)
    assert result.verdict == Verdict.SAFE
    assert PROGRAMS[name].expected_safe


@pytest.mark.parametrize("name", BUGGY)
def test_suite_buggy_programs(benchmark, name):
    result = run_once(benchmark, verify, get_program(name), max_refinements=4)
    record(benchmark, verdict=result.verdict)
    assert result.verdict == Verdict.UNSAFE
    assert not PROGRAMS[name].expected_safe


def test_baseline_on_suite(benchmark):
    """The path-formula baseline on the loop-coupling programs.

    The baseline diverges exactly when the coupling invariant is *not* an
    atom of the program text: forward needs ``a + b = 3i`` and double_counter
    needs ``a = 2i``, neither of which appears in any guard or assertion, so
    the loops are unrolled one counterexample at a time.  up_down's invariant
    ``x + y = n`` is literally the asserted formula; the baseline tracks the
    atoms of the negated assertion (as BLAST does) and therefore proves it in
    one refinement — expecting divergence there was a stale assumption.
    """
    expected_divergent = {"forward": True, "double_counter": True, "up_down": False}

    def run_all():
        verdicts = {}
        for name in expected_divergent:
            verdicts[name] = verify(
                get_program(name), refiner="path-formula", max_refinements=3
            ).verdict
        return verdicts

    verdicts = run_once(benchmark, run_all)
    record(benchmark, verdicts=verdicts)
    for name, diverges in expected_divergent.items():
        if diverges:
            assert verdicts[name] != Verdict.SAFE, name
        else:
            assert verdicts[name] == Verdict.SAFE, name
