"""E10 — Reusable sessions and warm-start precision transfer.

The session API banks every task's discovered precision under the program's
fingerprint and seeds later tasks on the same program from it.  A seeded run
skips the refinement rounds a previous run already paid for and goes
straight to (re)building the proof tree, so a warm-started rerun performs
*strictly fewer* abstract-post decisions than its cold counterpart whenever
the cold run refined at all — that strict reduction is the acceptance bar
here, per program and for a whole suite batch.

The transfer also works across process boundaries: pool workers and
portfolio race winners ship their predicates home (formulas pickle and
re-intern), which is what the process-race test pins down.  Soundness is
asserted alongside every comparison: a seed never changes a decided verdict
(predicates only refine the abstraction).
"""

import pytest

from common import SESSION_MAX_REFINEMENTS, SESSION_SUITE, record, run_once
from repro import Session, VerifierOptions
from repro.core import Verdict

SUITE = SESSION_SUITE

OPTIONS = VerifierOptions(max_refinements=SESSION_MAX_REFINEMENTS)


def run_batch(warm_start):
    session = Session(OPTIONS.replace(warm_start=warm_start))
    docs = session.run_many(SUITE * 2, jobs=1)  # two epochs over the suite
    return session, docs


def test_session_batch_warm_start_beats_cold(benchmark):
    """A warm-started suite batch does fewer total posts than cold reruns."""
    (warm_session, warm_docs), (_, cold_docs) = run_once(
        benchmark, lambda: (run_batch(True), run_batch(False))
    )
    warm_total = sum(doc["post_decisions"] for doc in warm_docs)
    cold_total = sum(doc["post_decisions"] for doc in cold_docs)
    record(
        benchmark,
        warm_posts=warm_total,
        cold_posts=cold_total,
        reduction=round(1 - warm_total / cold_total, 4),
        warm_starts=warm_session.warm_starts,
        predicates_banked=warm_session.predicates_banked,
    )
    # Identical verdicts task for task: the seed never changes an answer.
    assert [d["verdict"] for d in warm_docs] == [d["verdict"] for d in cold_docs]
    assert all(d["verdict"] in (Verdict.SAFE, Verdict.UNSAFE) for d in warm_docs)
    # The whole batch is strictly cheaper warm than cold...
    assert warm_total < cold_total
    # ...and every second-epoch task whose first epoch refined is strictly
    # cheaper individually (a program needing no refinement has nothing to
    # transfer, so its rerun legitimately costs the same).
    epoch = len(SUITE)
    for first, again in zip(warm_docs[:epoch], warm_docs[epoch:]):
        assert again["engine"]["session"]["warm_started"] == (
            first["predicates"] > 0
        ), first["name"]
        if first["refinements"] > 0:
            assert again["post_decisions"] < first["post_decisions"], first["name"]


@pytest.mark.parametrize("name", ["forward", "initcheck", "double_counter"])
def test_warm_rerun_strictly_fewer_posts(benchmark, name):
    """A warm-started rerun of one program strictly reduces abstract posts."""

    def run():
        session = Session(OPTIONS)
        return session.run(name), session.run(name)

    cold, warm = run_once(benchmark, run)
    record(
        benchmark,
        cold_posts=cold.post_decisions(),
        warm_posts=warm.post_decisions(),
        reduction=round(1 - warm.post_decisions() / cold.post_decisions(), 4),
    )
    assert cold.verdict == warm.verdict == Verdict.SAFE
    assert warm.engine_stats["session"]["warm_started"] is True
    assert warm.post_decisions() < cold.post_decisions()
    # The warm run needed no refinement: the seed already proves the program.
    assert warm.num_refinements == 0


def test_process_race_winner_precision_warm_starts(benchmark):
    """The portfolio race ships the winner's predicates back for warm starts.

    In ``process`` mode the winner's precision crosses the pool as pickled
    formulas re-keyed by location name (the ROADMAP's process-race fidelity
    item); in the round-robin fallback (sandboxes without semaphores) it
    stays in-process.  Either way the session banks it and the follow-up
    run on the same program is strictly cheaper than the cold single-refiner
    baseline.
    """

    def run():
        session = Session(OPTIONS)
        race = session.run(
            session.task(
                "forward",
                options=OPTIONS.replace(
                    refiner="portfolio", portfolio_mode="auto", max_seconds=60.0
                ),
            )
        )
        cold = Session(OPTIONS).run("forward")
        warm = session.run("forward")
        return race, cold, warm

    race, cold, warm = run_once(benchmark, run)
    record(
        benchmark,
        race_mode=race.mode,
        race_winner=race.winner,
        cold_posts=cold.post_decisions(),
        warm_posts=warm.post_decisions(),
    )
    assert race.verdict == Verdict.SAFE
    # The race winner's discovered precision made it back to the session.
    assert race.precision is not None and race.precision.total_predicates() > 0
    assert cold.verdict == warm.verdict == Verdict.SAFE
    assert warm.engine_stats["session"]["warm_started"] is True
    assert warm.post_decisions() < cold.post_decisions()
