"""Unit and property tests for linear expressions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.terms import ArrayRead, LinExpr, Var, as_fraction, const, read, var


class TestConstruction:
    def test_constant(self):
        expr = const(5)
        assert expr.is_constant()
        assert expr.constant_value() == 5

    def test_variable(self):
        expr = var("x")
        assert expr.coeff(Var("x")) == 1
        assert not expr.is_constant()

    def test_make_drops_zero_coefficients(self):
        expr = LinExpr.make({Var("x"): 0, Var("y"): 2})
        assert expr.atoms() == (Var("y"),)

    def test_as_fraction_rejects_floats(self):
        with pytest.raises(TypeError):
            as_fraction(1.5)

    def test_array_read_shorthand(self):
        expr = read("a", "i")
        reads = expr.array_reads()
        assert len(reads) == 1
        assert next(iter(reads)).array == "a"

    def test_canonical_equality(self):
        left = var("x") + var("y")
        right = var("y") + var("x")
        assert left == right
        assert hash(left) == hash(right)


class TestArithmetic:
    def test_addition(self):
        expr = var("x") + var("x") + const(3)
        assert expr.coeff(Var("x")) == 2
        assert expr.const == 3

    def test_subtraction_cancels(self):
        expr = var("x") - var("x")
        assert expr.is_constant()
        assert expr.const == 0

    def test_scaling(self):
        expr = (var("x") + const(1)).scale(Fraction(3, 2))
        assert expr.coeff(Var("x")) == Fraction(3, 2)
        assert expr.const == Fraction(3, 2)

    def test_negation(self):
        expr = -(var("x") - const(2))
        assert expr.coeff(Var("x")) == -1
        assert expr.const == 2

    def test_mixed_int_operands(self):
        expr = 2 + var("x") * 3 - 1
        assert expr.coeff(Var("x")) == 3
        assert expr.const == 1


class TestSubstitution:
    def test_substitute_variable(self):
        expr = var("x") + var("y")
        result = expr.substitute({Var("x"): var("y") + const(1)})
        assert result.coeff(Var("y")) == 2
        assert result.const == 1

    def test_substitute_inside_array_index(self):
        expr = read("a", var("i"))
        result = expr.substitute({Var("i"): var("j") + const(1)})
        index = next(iter(result.array_reads())).index
        assert index == var("j") + const(1)

    def test_substitute_reads(self):
        expr = read("a", var("i")) + const(1)
        the_read = next(iter(expr.array_reads()))
        result = expr.substitute_reads({the_read: const(7)})
        assert result.is_constant()
        assert result.const == 8

    def test_rename_variables_and_arrays(self):
        expr = read("a", var("i")) + var("n")
        renamed = expr.rename({"a": "a@1", "i": "i@2", "n": "n@0"})
        assert renamed.variables() == {Var("i@2"), Var("n@0")}
        assert renamed.arrays() == {"a@1"}

    def test_primed(self):
        expr = var("x") + read("a", var("i"))
        primed = expr.primed()
        assert Var("x'") in primed.variables()
        assert "a'" in primed.arrays()


class TestEvaluation:
    def test_evaluate_scalar(self):
        expr = var("x") * 2 + const(1)
        assert expr.evaluate({Var("x"): 3}) == 7

    def test_evaluate_missing_raises(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_variables_includes_index_vars(self):
        expr = read("a", var("i") + var("j"))
        assert expr.variables() == {Var("i"), Var("j")}


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
names = st.sampled_from(["x", "y", "z", "w"])
coeffs = st.integers(min_value=-5, max_value=5)


@st.composite
def linexprs(draw):
    pairs = draw(st.lists(st.tuples(names, coeffs), max_size=4))
    constant = draw(coeffs)
    expr = const(constant)
    for name, coeff in pairs:
        expr = expr + var(name) * coeff
    return expr


@st.composite
def valuations(draw):
    return {Var(n): Fraction(draw(st.integers(-10, 10))) for n in ["x", "y", "z", "w"]}


@given(linexprs(), linexprs(), valuations())
@settings(max_examples=60, deadline=None)
def test_addition_commutes_with_evaluation(e1, e2, valuation):
    assert (e1 + e2).evaluate(valuation) == e1.evaluate(valuation) + e2.evaluate(valuation)


@given(linexprs(), st.integers(-4, 4), valuations())
@settings(max_examples=60, deadline=None)
def test_scaling_commutes_with_evaluation(expr, factor, valuation):
    assert expr.scale(factor).evaluate(valuation) == factor * expr.evaluate(valuation)


@given(linexprs(), linexprs())
@settings(max_examples=60, deadline=None)
def test_addition_is_commutative(e1, e2):
    assert e1 + e2 == e2 + e1


@given(linexprs())
@settings(max_examples=60, deadline=None)
def test_subtracting_self_gives_zero(expr):
    assert (expr - expr) == const(0)


@given(linexprs(), valuations())
@settings(max_examples=60, deadline=None)
def test_substitution_matches_evaluation(expr, valuation):
    # Substituting constants for all variables must agree with evaluation.
    substitution = {v: const(valuation[v]) for v in expr.variables()}
    substituted = expr.substitute(substitution)
    assert substituted.is_constant()
    assert substituted.const == expr.evaluate(valuation)
