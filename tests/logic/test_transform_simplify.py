"""Tests for normal forms, fresh names and simplification."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.formulas import (
    FALSE,
    TRUE,
    Atom,
    Forall,
    Not,
    Relation,
    conjoin,
    disjoin,
    eq,
    le,
    lt,
    negate,
)
from repro.logic.simplify import normalize_atom, simplify
from repro.logic.terms import Var, const, read, var
from repro.logic.transform import FreshNames, dnf_cubes, quantifier_free, to_dnf, to_nnf


class TestFreshNames:
    def test_fresh_names_are_distinct(self):
        fresh = FreshNames("t")
        names = {fresh.fresh_name() for _ in range(50)}
        assert len(names) == 50

    def test_fresh_names_contain_marker(self):
        assert "#" in FreshNames().fresh_name("hint")


class TestNnfDnf:
    def test_nnf_pushes_negation(self):
        a, b = le(var("x"), 1), le(var("y"), 2)
        nnf = to_nnf(Not(conjoin([a, b])))
        assert not _contains_not(nnf)

    def test_dnf_cube_count(self):
        a, b, c, d = (le(var(n), 1) for n in "xyzw")
        formula = conjoin([disjoin([a, b]), disjoin([c, d])])
        assert len(dnf_cubes(formula)) == 4

    def test_dnf_of_atom(self):
        atom = le(var("x"), 1)
        assert dnf_cubes(atom) == [(atom,)]

    def test_dnf_of_true_and_false(self):
        assert dnf_cubes(TRUE) == [()]
        assert dnf_cubes(FALSE) == []

    def test_quantifier_free_detection(self):
        plain = le(var("x"), 1)
        quantified = Forall(Var("k"), eq(read("a", var("k")), 0))
        assert quantifier_free(plain)
        assert not quantifier_free(conjoin([plain, quantified]))
        assert not quantifier_free(Not(quantified))


def _contains_not(formula):
    from repro.logic.formulas import And, Or

    if isinstance(formula, Not):
        return True
    if isinstance(formula, (And, Or)):
        return any(_contains_not(arg) for arg in formula.args)
    return False


class TestSimplify:
    def test_normalize_scales_to_integers(self):
        atom = Atom(var("x") * Fraction(2, 3) + const(Fraction(4, 3)), Relation.LE)
        normalised = normalize_atom(atom)
        assert normalised == Atom(var("x") + const(2), Relation.LE)

    def test_normalize_constant_atom(self):
        assert normalize_atom(le(const(1), 2)) == TRUE
        assert normalize_atom(le(const(3), 2)) == FALSE

    def test_simplify_drops_weaker_bound(self):
        tight = le(var("x"), 1)
        loose = le(var("x"), 5)
        result = simplify(conjoin([tight, loose]))
        assert result == tight

    def test_simplify_keeps_independent_conjuncts(self):
        a = le(var("x"), 1)
        b = le(var("y"), 1)
        assert set(simplify(conjoin([a, b])).args) == {a, b}

    def test_simplify_recurses_into_forall(self):
        body = conjoin([le(const(0), 1), eq(read("a", var("k")), 0)])
        formula = Forall(Var("k"), body)
        simplified = simplify(formula)
        assert isinstance(simplified, Forall)
        assert simplified.body == eq(read("a", var("k")), 0)


names = st.sampled_from(["x", "y"])


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        expr = var(draw(names)) * draw(st.integers(-2, 2)) + const(draw(st.integers(-2, 2)))
        rel = draw(st.sampled_from([Relation.LE, Relation.LT, Relation.EQ]))
        return Atom(expr, rel)
    kind = draw(st.sampled_from(["atom", "and", "or", "not"]))
    if kind == "atom":
        return draw(formulas(depth=0))
    if kind == "not":
        return Not(draw(formulas(depth=depth - 1)))
    parts = draw(st.lists(formulas(depth=depth - 1), min_size=1, max_size=3))
    return conjoin(parts) if kind == "and" else disjoin(parts)


@st.composite
def full_valuations(draw):
    return {Var(n): Fraction(draw(st.integers(-4, 4))) for n in ["x", "y"]}


@given(formulas(), full_valuations())
@settings(max_examples=80, deadline=None)
def test_nnf_preserves_semantics(formula, valuation):
    assert to_nnf(formula).evaluate(valuation) == formula.evaluate(valuation)


@given(formulas(), full_valuations())
@settings(max_examples=80, deadline=None)
def test_dnf_preserves_semantics(formula, valuation):
    assert to_dnf(formula).evaluate(valuation) == formula.evaluate(valuation)


@given(formulas(), full_valuations())
@settings(max_examples=80, deadline=None)
def test_simplify_preserves_semantics(formula, valuation):
    assert simplify(formula).evaluate(valuation) == formula.evaluate(valuation)
