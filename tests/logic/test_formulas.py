"""Tests for formulas, smart constructors and negation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Forall,
    Not,
    Or,
    Relation,
    conjoin,
    conjuncts,
    disjoin,
    disjuncts,
    eq,
    ge,
    gt,
    implies_formula,
    le,
    lt,
    ne,
    negate,
)
from repro.logic.terms import ArrayRead, LinExpr, Var, const, read, var


class TestAtoms:
    def test_eq_normalisation(self):
        atom = eq(var("x") + const(1), var("y"))
        assert atom.rel is Relation.EQ
        assert atom.expr == var("x") - var("y") + const(1)

    def test_comparison_helpers(self):
        assert le(var("x"), 3).rel is Relation.LE
        assert lt(var("x"), 3).rel is Relation.LT
        assert ge(var("x"), 3).expr == const(3) - var("x")
        assert gt(var("x"), 3).expr == const(3) - var("x")
        assert ne(var("x"), 3).rel is Relation.NE

    def test_atom_negation_roundtrip(self):
        atom = le(var("x"), 5)
        assert atom.negated().negated() == atom

    def test_trivial_atoms(self):
        assert le(const(0), 1).is_trivially_true()
        assert le(const(2), 1).is_trivially_false()

    def test_evaluation(self):
        atom = lt(var("x"), var("y"))
        assert atom.evaluate({Var("x"): 1, Var("y"): 2})
        assert not atom.evaluate({Var("x"): 2, Var("y"): 2})


class TestSmartConstructors:
    def test_conjoin_flattens_and_dedupes(self):
        a, b = le(var("x"), 1), le(var("y"), 2)
        formula = conjoin([a, conjoin([a, b])])
        assert isinstance(formula, And)
        assert set(formula.args) == {a, b}

    def test_conjoin_false_short_circuit(self):
        assert conjoin([le(var("x"), 1), FALSE]) == FALSE

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == TRUE

    def test_disjoin_true_short_circuit(self):
        assert disjoin([TRUE, le(var("x"), 1)]) == TRUE

    def test_disjoin_empty_is_false(self):
        assert disjoin([]) == FALSE

    def test_conjuncts_and_disjuncts(self):
        a, b = le(var("x"), 1), le(var("y"), 2)
        assert set(conjuncts(conjoin([a, b]))) == {a, b}
        assert set(disjuncts(disjoin([a, b]))) == {a, b}
        assert conjuncts(a) == (a,)

    def test_operator_overloads(self):
        a, b = le(var("x"), 1), le(var("y"), 2)
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert (~a) == a.negated()


class TestNegation:
    def test_de_morgan(self):
        a, b = le(var("x"), 1), le(var("y"), 2)
        negated = negate(conjoin([a, b]))
        assert isinstance(negated, Or)
        assert set(negated.args) == {a.negated(), b.negated()}

    def test_negate_constants(self):
        assert negate(TRUE) == FALSE
        assert negate(FALSE) == TRUE

    def test_negate_forall_wraps(self):
        formula = Forall(Var("k"), eq(read("a", var("k")), 0))
        assert isinstance(negate(formula), Not)

    def test_implies(self):
        a, b = le(var("x"), 1), le(var("y"), 2)
        formula = implies_formula(a, b)
        assert isinstance(formula, Or)
        assert a.negated() in formula.args and b in formula.args


class TestStructuralQueries:
    def test_variables_and_arrays(self):
        formula = conjoin([le(var("x"), var("n")), eq(read("a", var("i")), 0)])
        assert formula.variables() == {Var("x"), Var("n"), Var("i")}
        assert formula.arrays() == {"a"}

    def test_forall_hides_bound_variable(self):
        formula = Forall(Var("k"), eq(read("a", var("k")), var("c")))
        assert Var("k") not in formula.variables()
        assert Var("c") in formula.variables()

    def test_forall_instantiate(self):
        formula = Forall(Var("k"), eq(read("a", var("k")), 0))
        instance = formula.instantiate(var("i") + const(1))
        reads = instance.array_reads()
        assert {r.index for r in reads} == {var("i") + const(1)}

    def test_rename_avoids_bound_variable(self):
        formula = Forall(Var("k"), eq(read("a", var("k")), var("c")))
        renamed = formula.rename({"k": "zzz", "c": "d"})
        assert isinstance(renamed, Forall)
        assert Var("d") in renamed.variables()
        assert renamed.bound_variable() == Var("k")

    def test_has_quantifier(self):
        plain = le(var("x"), 1)
        assert not plain.has_quantifier()
        assert conjoin([plain, Forall(Var("k"), plain)]).has_quantifier()

    def test_atoms_collection(self):
        a, b = le(var("x"), 1), eq(var("y"), 2)
        assert conjoin([a, disjoin([b, a])]).atoms() == {a, b}


names = st.sampled_from(["x", "y", "z"])


@st.composite
def simple_atoms(draw):
    left = var(draw(names)) * draw(st.integers(-3, 3)) + const(draw(st.integers(-3, 3)))
    rel = draw(st.sampled_from([Relation.LE, Relation.LT, Relation.EQ, Relation.NE]))
    return Atom(left, rel)


@st.composite
def simple_valuations(draw):
    return {Var(n): Fraction(draw(st.integers(-5, 5))) for n in ["x", "y", "z"]}


@given(simple_atoms(), simple_valuations())
@settings(max_examples=80, deadline=None)
def test_atom_negation_flips_evaluation(atom, valuation):
    assert atom.evaluate(valuation) != atom.negated().evaluate(valuation)


@given(st.lists(simple_atoms(), min_size=1, max_size=4), simple_valuations())
@settings(max_examples=80, deadline=None)
def test_de_morgan_semantics(atoms, valuation):
    formula = conjoin(atoms)
    assert negate(formula).evaluate(valuation) == (not formula.evaluate(valuation))
