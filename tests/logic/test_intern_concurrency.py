"""Concurrent hash-consing: the intern tables must stay canonical under
multi-threaded construction.

Parallel ART exploration (repro.core.parallel) builds formulas from worker
threads — SSA renaming, skolemisation, store resolution all construct terms
and formulas concurrently.  Hash-consing promises ``Var("x") is Var("x")``
process-wide; without the intern lock two racing threads could both insert,
silently breaking the identity guarantee the logic layer's caches and the
solver's memo tables rely on.  These tests hammer the miss path from many
threads and assert canonicality afterwards.
"""

import threading

from repro.logic.formulas import (
    Atom,
    Forall,
    Not,
    conjoin,
    disjoin,
    le,
    negate,
)
from repro.logic.terms import INTERN_LOCK, Var, clear_intern_caches, const, read, var

THREADS = 8
ROUNDS = 60


def _build_family(salt: int):
    """A mixed bag of terms/formulas every thread constructs identically."""
    objects = []
    for i in range(8):
        x = var(f"cc_x{i}")
        y = var(f"cc_y{(i + salt) % 8}")
        expr = x + y * 3 + const(i)
        atom = le(expr, const(10))
        objects.extend([x, y, expr, atom])
        objects.append(conjoin([atom, le(y, const(i))]))
        objects.append(disjoin([atom, negate(atom)]))
        objects.append(negate(conjoin([atom, negate(atom)])))
        objects.append(read("cc_a", x))
        objects.append(
            Forall(Var(f"cc_k{i}"), le(read("cc_a", var(f"cc_k{i}")), const(0)))
        )
    return objects


class TestConcurrentInterning:
    def test_identity_survives_a_thread_stampede(self):
        clear_intern_caches()
        barrier = threading.Barrier(THREADS)
        results: list[list] = [None] * THREADS
        errors: list[BaseException] = []

        def stampede(slot: int) -> None:
            try:
                barrier.wait()
                built = []
                for round_no in range(ROUNDS):
                    built = _build_family(round_no % 3)
                results[slot] = built
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=stampede, args=(slot,)) for slot in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        # Every thread's last build must be the *same interned objects* —
        # and a fresh main-thread build must alias them too.
        reference = _build_family(2)
        for slot in range(THREADS):
            assert results[slot] is not None, f"thread {slot} never finished"
            for ours, theirs in zip(reference, results[slot]):
                assert ours is theirs, (ours, theirs)

    def test_no_duplicate_vars_after_concurrent_misses(self):
        clear_intern_caches()
        names = [f"dup_{i}" for i in range(32)]
        barrier = threading.Barrier(THREADS)

        def hammer() -> None:
            barrier.wait()
            for _ in range(ROUNDS):
                for name in names:
                    Var(name)

        threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # One interned instance per name, not one per racing thread.
        for name in names:
            assert Var._intern[name] is Var(name)
        assert len([n for n in Var._intern if n.startswith("dup_")]) == len(names)

    def test_clear_is_safe_under_the_lock(self):
        # clear + rebuild race: equality stays structural across generations
        # even if identity resets, and nothing deadlocks (RLock: re-entrant
        # from the constructors the clear callbacks may invoke).
        with INTERN_LOCK:
            clear_intern_caches()
            before = le(var("gen_x"), const(1))
        clear_intern_caches()
        after = le(var("gen_x"), const(1))
        assert before == after
        assert isinstance(after, Atom) and isinstance(negate(after), Atom)
        assert isinstance(Not(after), Not)
