// repro-fuzz reproducer (auto-minimised)
// oracle: batched
// seed: 1000045
// kind: crash
// detail: ValueError: LinConstraint over non-variable atom: a0[6] (fixed: invgen/postcond.py array read on assignment RHS)
void gen1000045() {
  int x1;
  int x2 = 3;
  int a0[8];
  x1 = a0[6];
  assert((7 * x2) != 7);
}
