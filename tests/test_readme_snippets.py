"""Executable documentation: the top-level README's snippets must not drift.

Every fenced ``console`` block's ``$``-prefixed commands are run in a fresh
interpreter (with ``PYTHONPATH=src``, as the README's quickstart assumes),
and every fenced ``python`` block is executed in-process.  A README example
that stops working therefore fails CI instead of silently rotting.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
README = REPO_ROOT / "README.md"

_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def _blocks(language):
    text = README.read_text()
    return [
        (index, body)
        for index, (lang, body) in enumerate(_FENCE.findall(text))
        if lang == language
    ]


def _console_commands():
    commands = []
    for index, body in _blocks("console"):
        for line in body.splitlines():
            if line.startswith("$ "):
                commands.append((index, line[2:].strip()))
    return commands


def test_readme_exists_and_has_snippets():
    assert README.exists(), "the repository must ship a top-level README.md"
    assert _console_commands(), "README.md lost its console quickstart"
    assert _blocks("python"), "README.md lost its Python quickstart"


@pytest.mark.parametrize(
    "command",
    [command for _, command in _console_commands()],
    ids=lambda command: command.replace(" ", "_")[:60],
)
def test_console_snippets_run_green(command):
    assert command.startswith("python "), (
        f"README console snippets must be python invocations, got: {command}"
    )
    completed = subprocess.run(
        [sys.executable, *command.split()[1:]],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"README snippet failed: {command}\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"README snippet produced no output: {command}"


@pytest.mark.parametrize(
    "index,body",
    _blocks("python"),
    ids=lambda value: f"block{value}" if isinstance(value, int) else "src",
)
def test_python_snippets_run_green(index, body):
    namespace = {"__name__": f"readme_block_{index}"}
    exec(compile(body, f"README.md:python-block-{index}", "exec"), namespace)
