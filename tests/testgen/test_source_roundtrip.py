"""Round-trip property: ``parse(pretty(ast)) == ast``, fingerprints stable.

The printer (:mod:`repro.lang.source`) is the generator's and shrinker's
bridge back to the textual pipeline; any printer/parser disagreement would
make corpus reproducers lie about what the engine actually ran.
"""

import pytest

from repro.core.api import program_fingerprint
from repro.lang import build_program, format_function, parse_function, strip_positions
from repro.lang.programs import PROGRAMS, get_source
from repro.testgen import generate_corpus


def _roundtrip(function):
    """parse(pretty(fn)) modulo source positions."""
    return strip_positions(parse_function(format_function(function)))


class TestBuiltinRoundTrip:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_ast_survives_print_parse(self, name):
        function = parse_function(get_source(name))
        assert _roundtrip(function) == strip_positions(function)

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_fingerprint_stable_across_roundtrip(self, name):
        function = parse_function(get_source(name))
        original = program_fingerprint(build_program(function))
        reprinted = program_fingerprint(build_program(_roundtrip(function)))
        assert reprinted == original


class TestGeneratedRoundTrip:
    # One shared corpus: shapes vary with the derived seed, and every
    # third program carries a planted bug (exercises the havoc printing).
    CORPUS = generate_corpus(seed=11, count=150)

    @pytest.mark.parametrize("generated", CORPUS, ids=lambda g: g.name)
    def test_ast_survives_print_parse(self, generated):
        reparsed = strip_positions(parse_function(generated.source))
        assert reparsed == strip_positions(generated.function)

    def test_fingerprints_stable_across_roundtrip(self):
        for generated in self.CORPUS:
            original = program_fingerprint(build_program(generated.function))
            reparsed = parse_function(generated.source)
            assert program_fingerprint(build_program(reparsed)) == original

    def test_second_print_is_identical_text(self):
        # pretty -> parse -> pretty is a fixpoint: the printer is canonical.
        for generated in self.CORPUS:
            assert format_function(parse_function(generated.source)) == generated.source
