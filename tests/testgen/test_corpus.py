"""Re-verify every committed corpus reproducer: fixed bugs stay fixed.

Each ``tests/corpus/*.c`` file is a shrunk program that once violated a
differential-oracle contract.  The bug it exposed has since been fixed,
so re-running the named oracle must come back clean; a mismatch here is
a regression of a previously-fixed engine bug.
"""

from pathlib import Path

import pytest

from repro.testgen.differential import load_corpus, verify_corpus_entry

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_directory_is_tracked():
    assert CORPUS_DIR.is_dir()
    assert (CORPUS_DIR / "README.md").exists()


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.path.name)
def test_reproducer_stays_fixed(entry):
    mismatches = verify_corpus_entry(entry)
    assert mismatches == [], [m.to_dict() for m in mismatches]
