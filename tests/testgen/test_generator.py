"""Generator self-tests: determinism, well-typedness, planted bugs."""

import hashlib
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.engine import Budget, Verdict, VerificationEngine
from repro.lang import build_program, check_function
from repro.testgen import GenConfig, generate, generate_corpus

# Recomputes the corpus digest in a child interpreter; any dependence on
# set/dict iteration order or per-process state would change the hash.
_DIGEST_SNIPPET = """
import hashlib
from repro.testgen import generate_corpus
blob = "\\n".join(p.source for p in generate_corpus(seed=5, count=40))
print(hashlib.sha256(blob.encode()).hexdigest())
"""


class TestDeterminism:
    def test_same_seed_same_program(self):
        first, second = generate(42), generate(42)
        assert first.source == second.source
        assert first.function == second.function

    def test_different_seeds_differ(self):
        sources = {generate(seed).source for seed in range(20)}
        assert len(sources) > 15  # collisions would mean the seed is ignored

    def test_config_changes_output(self):
        assert generate(7).source != generate(7, GenConfig(statements=9)).source

    @pytest.mark.parametrize("hashseed", ["1", "2"])
    def test_identical_across_processes_and_hash_seeds(self, hashseed):
        src_root = str(Path(__file__).resolve().parents[2] / "src")
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_SNIPPET],
            capture_output=True, text=True, check=True,
            env={
                "PYTHONPATH": src_root,
                "PYTHONHASHSEED": hashseed,
                "PATH": "/usr/bin:/bin",
            },
        ).stdout.strip()
        blob = "\n".join(p.source for p in generate_corpus(seed=5, count=40))
        assert out == hashlib.sha256(blob.encode()).hexdigest()


class TestWellTypedness:
    def test_500_generated_programs_typecheck_and_build(self):
        for generated in generate_corpus(seed=1, count=500):
            check_function(generated.function)  # raises on failure
            program = build_program(generated.function)
            assert program.transitions, generated.source

    def test_shape_knobs_respected(self):
        flat = generate(3, GenConfig(max_depth=0, arrays=0))
        assert "while" not in flat.source and "if" not in flat.source
        assert "[" not in flat.source


class TestPlantedBugs:
    def test_corpus_plants_on_schedule(self):
        corpus = generate_corpus(seed=2, count=12, plant_every=3)
        assert [p.expect_unsafe for p in corpus] == [False, False, True] * 4
        assert all("bug" in p.source for p in corpus if p.expect_unsafe)

    def test_plant_every_zero_disables(self):
        assert not any(
            p.expect_unsafe for p in generate_corpus(seed=2, count=6, plant_every=0)
        )

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_planted_program_verifies_unsafe(self, seed):
        generated = generate(seed, GenConfig(statements=3, plant_bug=True))
        assert generated.expect_unsafe
        result = VerificationEngine(
            build_program(generated.function),
            budget=Budget(max_refinements=10, max_nodes=600),
        ).run()
        assert result.verdict == Verdict.UNSAFE, generated.source


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"statements": 0},
            {"scalars": 0},
            {"arrays": -1},
            {"loop_bound": 0},
            {"max_constant": 0},
        ],
    )
    def test_rejects_degenerate_shapes(self, kwargs):
        with pytest.raises(ValueError):
            GenConfig(**kwargs)
