"""Shrinker self-tests: soundness, 1-minimality, engine-predicate shrinking."""

import pytest

from repro.core.engine import Budget, Verdict, VerificationEngine
from repro.lang import build_program, parse_function
from repro.lang.ast import AssertStmt
from repro.testgen import GenConfig, generate, shrink_function, shrinkable_variants
from repro.testgen.shrink import is_valid_function


def _statement_count(function):
    def count(block):
        total = 0
        for statement in block.statements:
            total += 1
            for attr in ("then_branch", "else_branch", "body"):
                inner = getattr(statement, attr, None)
                if inner is not None:
                    total += count(inner)
        return total

    return count(function.body)


def _contains_assert(function) -> bool:
    def scan(block):
        for statement in block.statements:
            if isinstance(statement, AssertStmt):
                return True
            for attr in ("then_branch", "else_branch", "body"):
                inner = getattr(statement, attr, None)
                if inner is not None and scan(inner):
                    return True
        return False

    return scan(function.body)


def _is_one_minimal(function, predicate) -> bool:
    """No single further edit yields a valid program that still fails."""
    return not any(
        is_valid_function(variant) and predicate(variant)
        for variant in shrinkable_variants(function)
    )


NOISY = """\
void noisy() {
  int x;
  x = nondet();
  int y = 3;
  if ((x < 4)) {
    y = (y + 1);
  } else {
    y = (y - 1);
  }
  while (*) {
    y = (y + 2);
  }
  assert((x == x));
  y = (2 * y);
}
"""


class TestStructuralShrinking:
    def test_sound_and_one_minimal_on_contains_assert(self):
        function = parse_function(NOISY)
        shrunk = shrink_function(function, _contains_assert)
        assert _contains_assert(shrunk)  # soundness
        assert _is_one_minimal(shrunk, _contains_assert)
        # Everything except the assert (and any decls it needs) is gone.
        assert _statement_count(shrunk) < _statement_count(function)
        assert "if" not in [type(s).__name__ for s in shrunk.body.statements]

    def test_rejects_passing_original(self):
        function = parse_function("void ok() { int x = 1; }\n")
        with pytest.raises(ValueError):
            shrink_function(function, _contains_assert)

    def test_variants_are_strictly_smaller_or_rearranged(self):
        function = parse_function(NOISY)
        original = _statement_count(function)
        for variant in shrinkable_variants(function):
            assert _statement_count(variant) < original


class TestEnginePredicateShrinking:
    @pytest.mark.parametrize("seed", [21, 22])
    def test_planted_bug_shrinks_and_stays_unsafe(self, seed):
        generated = generate(seed, GenConfig(statements=4, plant_bug=True))

        def still_unsafe(function):
            result = VerificationEngine(
                build_program(function),
                budget=Budget(max_refinements=8, max_nodes=400),
            ).run()
            return result.verdict == Verdict.UNSAFE

        assert still_unsafe(generated.function)  # the plant guarantee
        shrunk = shrink_function(generated.function, still_unsafe)
        assert still_unsafe(shrunk)  # soundness
        assert _is_one_minimal(shrunk, still_unsafe)
        assert _statement_count(shrunk) <= _statement_count(generated.function)
