"""Differential-harness tests: oracle contracts, corpus plumbing, and the
two-process hash-seed differential that pins the PR 7 CI workaround removal."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lang import parse_function
from repro.lang.programs import get_source
from repro.testgen import ORACLES, Mismatch, fuzz_options, run_fuzz, run_oracle
from repro.testgen.differential import (
    _compare_bit_identical,
    load_corpus,
    verify_corpus_entry,
    write_reproducer,
)

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


class TestFuzzOptions:
    def test_defaults_are_small_and_deterministic(self):
        options = fuzz_options()
        assert options.max_refinements == 6
        assert options.max_nodes == 300
        assert options.max_solver_calls == 3000
        assert options.max_seconds is None

    def test_rejects_wall_clock_budgets(self):
        with pytest.raises(ValueError, match="max_seconds"):
            fuzz_options(max_seconds=1.0)


class TestCompareBitIdentical:
    RECORD = {
        "verdict": "safe",
        "post_decisions": 10,
        "precision": {"L1": ["(x < 1)"]},
        "nodes_created": 5,
    }

    def test_identical_records_are_clean(self):
        assert _compare_bit_identical("batched", self.RECORD, dict(self.RECORD), ("a", "b")) == []

    def test_safe_vs_unsafe_is_a_conflict(self):
        variant = dict(self.RECORD, verdict="unsafe")
        (mismatch,) = _compare_bit_identical("batched", self.RECORD, variant, ("a", "b"))
        assert mismatch.kind == "verdict-conflict"

    def test_decided_vs_unknown_is_still_a_mismatch(self):
        variant = dict(self.RECORD, verdict="unknown")
        (mismatch,) = _compare_bit_identical("parallel", self.RECORD, variant, ("a", "b"))
        assert mismatch.kind == "verdict"

    def test_counter_drift_is_reported_per_counter(self):
        variant = dict(self.RECORD, post_decisions=11, nodes_created=6)
        kinds = {
            m.kind
            for m in _compare_bit_identical("batched", self.RECORD, variant, ("a", "b"))
        }
        assert kinds == {"post-decisions", "nodes"}


class TestOracles:
    @pytest.mark.parametrize("oracle", ORACLES)
    @pytest.mark.parametrize("name", ["forward", "simple_unsafe"])
    def test_builtins_are_clean(self, oracle, name):
        function = parse_function(get_source(name))
        record, mismatches = run_oracle(function, oracle, fuzz_options(max_refinements=8))
        assert mismatches == [], record

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_oracle(parse_function(get_source("forward")), "nope")


class TestRunFuzz:
    def test_small_fixed_seed_batch_is_clean(self):
        report = run_fuzz(seed=2, count=8)
        assert report.clean, [m.to_dict() for m in report.mismatches]
        assert len(report.programs) == 8
        # The plant schedule guarantees both verdict classes appear.
        assert report.verdicts.get("unsafe", 0) >= 1
        assert set(report.oracle_totals) == set(ORACLES)
        payload = json.dumps(report.to_dict())  # JSON-serialisable end to end
        assert "programs_generated" in payload

    def test_rejects_unknown_oracle_name(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_fuzz(seed=1, count=1, oracles=("batched", "nope"))


class TestCorpusPlumbing:
    def test_write_load_verify_roundtrip(self, tmp_path):
        # A clean program standing in as a "fixed bug": the committed
        # reproducer must re-run its oracle and come back clean.
        mismatch = Mismatch(
            oracle="batched",
            kind="post-decisions",
            detail="batched=9 scalar=10",
            seed=77,
            source=get_source("forward"),
        )
        path = write_reproducer(tmp_path, mismatch)
        assert path.name == "batched-seed77.c"
        assert mismatch.corpus_path == str(path)
        (entry,) = load_corpus(tmp_path)
        assert (entry.oracle, entry.seed) == ("batched", 77)
        assert verify_corpus_entry(entry) == []

    def test_collision_appends_counter(self, tmp_path):
        for _ in range(2):
            mismatch = Mismatch(
                oracle="parallel", kind="nodes", detail="d", seed=1,
                source=get_source("forward"),
            )
            write_reproducer(tmp_path, mismatch)
        assert sorted(p.name for p in tmp_path.glob("*.c")) == [
            "parallel-seed1-1.c",
            "parallel-seed1.c",
        ]

    def test_missing_oracle_header_rejected(self, tmp_path):
        (tmp_path / "bad.c").write_text("void f() { int x = 1; }\n")
        with pytest.raises(ValueError, match="oracle"):
            load_corpus(tmp_path)


class TestHashSeedIndependence:
    """Two processes, two hash seeds, bit-identical engine accounting.

    This pins the fix for the PR 7 CI workaround: ``compact()`` used to
    iterate a set of locations, so ``post_decisions`` jittered with
    ``PYTHONHASHSEED`` and CI had to pin the hash seed.  Locations are now
    visited in sorted order, so the pin is gone — and this test is what
    keeps it gone.
    """

    def _verify_json(self, hashseed: str) -> dict:
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "verify", "initcheck", "--json"],
            capture_output=True, text=True, check=True,
            env={
                "PYTHONPATH": SRC_ROOT,
                "PYTHONHASHSEED": hashseed,
                "PATH": "/usr/bin:/bin",
            },
        )
        return json.loads(completed.stdout)

    def test_post_decisions_and_predicates_match_across_hash_seeds(self):
        first, second = self._verify_json("1"), self._verify_json("2")
        assert first["verdict"] == second["verdict"] == "safe"
        assert first["post_decisions"] == second["post_decisions"]
        assert first["predicates"] == second["predicates"]
        assert first["iterations"] == second["iterations"]
