"""The deterministic fault-injection harness (:mod:`repro.core.faults`).

These tests pin the properties every robustness test in the suite leans on:
the harness is inert unless installed, plans match deterministically (first
spec wins, keyed by site/key/attempt), probabilistic gates are a pure
function of the seed, and plans survive the JSON round trip that ships them
into pool workers.
"""

import pickle

import pytest

from repro.core import faults
from repro.core.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedError,
    InjectedHang,
    installed,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma-ray")

    def test_validation_bounds(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="slow", seconds=-1)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="crash", probability=1.5)
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(kind="crash", max_fires=0)

    def test_every_kind_has_a_site(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).site in (
                "task", "store-load", "post", "serve-response",
                "client-send", "journal-append",
            )

    def test_dict_round_trip(self):
        spec = FaultSpec(kind="hang", key="forward", attempts=(0, 2), seconds=9.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_match_is_keyed_by_site_key_and_attempt(self):
        plan = FaultPlan([FaultSpec(kind="crash", key="forward", attempts=(0,))])
        assert plan.match("task", ("forward",), 0) is not None
        assert plan.match("task", ("forward",), 1) is None  # wrong attempt
        assert plan.match("task", ("lock_step",), 0) is None  # wrong key
        assert plan.match("store-load", ("forward",), 0) is None  # wrong site

    def test_empty_attempts_means_every_attempt(self):
        plan = FaultPlan([FaultSpec(kind="error", key="x", attempts=())])
        for attempt in range(5):
            assert plan.match("task", ("x",), attempt) is not None

    def test_first_matching_spec_wins(self):
        plan = FaultPlan([
            FaultSpec(kind="crash", key="forward"),
            FaultSpec(kind="error", key="*", attempts=()),
        ])
        assert plan.match("task", ("forward",), 0).kind == "crash"
        assert plan.match("task", ("other",), 0).kind == "error"

    def test_max_fires_bounds_firing(self):
        plan = FaultPlan([FaultSpec(kind="error", attempts=(), max_fires=2)])
        hits = [plan.match("task", ("t",), n) is not None for n in range(4)]
        assert hits == [True, True, False, False]

    def test_probability_gate_is_deterministic_in_the_seed(self):
        spec = FaultSpec(kind="error", key="*", attempts=(), probability=0.5)
        outcome_a = [
            FaultPlan([spec], seed=42).match("task", (f"t{n}",), 0) is not None
            for n in range(32)
        ]
        outcome_b = [
            FaultPlan([spec], seed=42).match("task", (f"t{n}",), 0) is not None
            for n in range(32)
        ]
        assert outcome_a == outcome_b  # same seed: identical schedule
        assert any(outcome_a) and not all(outcome_a)  # the gate actually gates
        outcome_c = [
            FaultPlan([spec], seed=43).match("task", (f"t{n}",), 0) is not None
            for n in range(32)
        ]
        assert outcome_a != outcome_c  # a different seed reshuffles it

    def test_payload_round_trip_is_json_safe(self):
        import json

        plan = FaultPlan(
            [FaultSpec(kind="crash", key="a"), FaultSpec(kind="slow", seconds=0.1)],
            seed=7,
        )
        payload = json.loads(json.dumps(plan.to_payload()))
        restored = FaultPlan.from_payload(payload)
        assert restored.specs == plan.specs
        assert restored.seed == plan.seed

    def test_fired_records_the_schedule(self):
        plan = FaultPlan([FaultSpec(kind="error", key="x")])
        plan.match("task", ("x",), 0)
        assert plan.fired == [(0, "task", "x", 0)]


class TestInstallation:
    def test_inert_by_default(self):
        assert faults.active_plan() is None
        assert faults.fire("task", ("anything",), 0) is None  # no-op

    def test_installed_restores_previous_plan(self):
        outer = FaultPlan([FaultSpec(kind="error", key="outer")])
        inner = FaultPlan([FaultSpec(kind="error", key="inner")])
        with installed(outer):
            assert faults.active_plan() is outer
            with installed(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_installed_uninstalls_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with installed(FaultPlan()):
                raise RuntimeError("boom")
        assert faults.active_plan() is None


class TestFiring:
    def test_crash_raises_in_process(self):
        with installed(FaultPlan([FaultSpec(kind="crash", key="t")])):
            with pytest.raises(InjectedCrash):
                faults.fire("task", ("t",), 0, in_worker=False)

    def test_hang_raises_in_process(self):
        with installed(FaultPlan([FaultSpec(kind="hang", key="t")])):
            with pytest.raises(InjectedHang):
                faults.fire("task", ("t",), 0, in_worker=False)

    def test_error_raises(self):
        with installed(FaultPlan([FaultSpec(kind="error", key="t")])):
            with pytest.raises(InjectedError):
                faults.fire("task", ("t",), 0)

    def test_store_faults_are_returned_not_raised(self):
        plan = FaultPlan([FaultSpec(kind="corrupt-store", key="bank.pkl")])
        with installed(plan):
            spec = faults.fire("store-load", ("/x/bank.pkl", "bank.pkl"), 0)
        assert spec is not None and spec.kind == "corrupt-store"

    def test_corrupt_file_truncates(self, tmp_path):
        path = tmp_path / "victim.pkl"
        path.write_bytes(pickle.dumps({"a": list(range(1000))}))
        original = path.stat().st_size
        new_size = faults.corrupt_file(path)
        assert 0 < new_size < original
        with pytest.raises(Exception):
            pickle.loads(path.read_bytes())
