"""Tests for the incremental verification engine.

The load-bearing property is *incremental-vs-restart equivalence*: the
persistent-ART engine must reach the same verdict — and, on this corpus, the
same discovered precision — as a from-scratch rebuild after every
refinement, while strictly reusing work.  The repair wave maintains the
invariant that every node's state is exactly the Cartesian post of its
parent under the current precision, which :meth:`Art.validate` re-checks
structurally.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Budget,
    CegarLoop,
    Precision,
    Verdict,
    VerificationEngine,
    make_frontier,
    result_to_dict,
    verify,
    verify_many,
)
from repro.core.verifier import make_refiner
from repro.lang import get_program
from repro.smt.vcgen import VcChecker

#: (program, refiner) pairs that complete quickly under both engines.  The
#: path-formula refiner is excluded on array programs: it floods the
#: precision with array predicates and both engines (and the seed) take
#: minutes there.
EQUIVALENCE_CORPUS = [
    ("forward", "path-invariant"),
    ("forward", "path-formula"),
    ("initcheck", "path-invariant"),
    ("double_counter", "path-invariant"),
    ("double_counter", "path-formula"),
    ("up_down", "path-formula"),
    ("lock_step", "path-invariant"),
    ("lock_step", "path-formula"),
    ("simple_safe", "path-invariant"),
    ("simple_unsafe", "path-invariant"),
    ("simple_unsafe", "path-formula"),
    ("diamond_safe", "path-invariant"),
    ("forward_buggy", "path-invariant"),
    ("array_init_buggy", "path-invariant"),
    ("array_init_const", "path-invariant"),
    ("array_copy", "path-invariant"),
]


def run_both(name, refiner="path-invariant", max_refinements=4, strategy="bfs"):
    incremental = verify(
        get_program(name), refiner=refiner, max_refinements=max_refinements,
        strategy=strategy, incremental=True,
    )
    restart = verify(
        get_program(name), refiner=refiner, max_refinements=max_refinements,
        strategy=strategy, incremental=False,
    )
    return incremental, restart


class TestIncrementalRestartEquivalence:
    @pytest.mark.parametrize("name,refiner", EQUIVALENCE_CORPUS)
    def test_verdict_and_precision_equivalence(self, name, refiner):
        incremental, restart = run_both(name, refiner)
        assert incremental.verdict == restart.verdict
        assert incremental.precision.snapshot() == restart.precision.snapshot()

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(
            ["forward", "lock_step", "double_counter", "simple_safe", "simple_unsafe"]
        ),
        refiner=st.sampled_from(["path-invariant", "path-formula"]),
        strategy=st.sampled_from(["bfs", "dfs", "error-distance"]),
        max_refinements=st.integers(min_value=0, max_value=4),
    )
    def test_equivalence_property(self, name, refiner, strategy, max_refinements):
        incremental, restart = run_both(name, refiner, max_refinements, strategy)
        assert incremental.verdict == restart.verdict
        assert incremental.precision.snapshot() == restart.precision.snapshot()

    @pytest.mark.parametrize("name", ["forward", "initcheck", "lock_step"])
    def test_repaired_tree_validates(self, name):
        engine = VerificationEngine(get_program(name))
        result = engine.run()
        assert result.verdict == Verdict.SAFE
        assert engine.art is not None
        assert engine.art.validate(result.precision) == []

    def test_restart_mode_never_repairs(self):
        result = verify(get_program("forward"), incremental=False)
        assert all(record.repair is None for record in result.iterations)
        assert result.engine_stats["incremental"] is False


class TestIncrementalReuse:
    @pytest.mark.parametrize("name", ["forward", "initcheck"])
    def test_refinement_reuses_nodes(self, name):
        """Post-refinement repair must retain ART nodes instead of rebuilding."""
        result = verify(get_program(name), incremental=True)
        assert result.verdict == Verdict.SAFE
        assert result.num_refinements > 0
        assert result.nodes_reused() > 0

    @pytest.mark.parametrize("name", ["forward", "initcheck"])
    def test_strictly_fewer_post_decisions_than_restart(self, name):
        incremental, restart = run_both(name, max_refinements=8)
        assert incremental.verdict == restart.verdict == Verdict.SAFE
        assert incremental.post_decisions() < restart.post_decisions()

    def test_abstract_post_memo_serves_reexpansion(self):
        """Re-deriving an identical (state, transition, predicate) triple is a hit."""
        checker = VcChecker()
        verify(get_program("lock_step"), checker=checker)
        stats = checker.statistics()
        assert stats["post_queries"] > 0
        # Run the same program again through the same checker: the ART-level
        # memo answers every abstract-post question without a triple check.
        before = checker.statistics()
        verify(get_program("lock_step"), checker=checker)
        after = checker.statistics()
        new_queries = after["post_queries"] - before["post_queries"]
        new_hits = after["post_cache_hits"] - before["post_cache_hits"]
        assert new_queries > 0
        assert new_hits == new_queries


class TestBudgets:
    def test_node_budget_yields_unknown(self):
        result = verify(get_program("forward"), max_art_nodes=3)
        assert result.verdict == Verdict.UNKNOWN
        assert "node budget" in result.reason

    def test_wallclock_budget_yields_unknown(self):
        result = verify(get_program("initcheck"), max_seconds=0.0)
        assert result.verdict == Verdict.UNKNOWN
        assert "wall-clock" in result.reason

    def test_solver_budget_yields_unknown(self):
        loop = CegarLoop(get_program("forward"), max_solver_calls=5)
        result = loop.run()
        assert result.verdict == Verdict.UNKNOWN
        assert "solver budget" in result.reason

    def test_refinement_budget_yields_unknown(self):
        result = verify(get_program("forward"), refiner="path-formula", max_refinements=2)
        assert result.verdict == Verdict.UNKNOWN
        assert "budget" in result.reason

    def test_rerun_after_exhaustion(self):
        """A budget trip leaves the engine reusable: raising the budget and
        re-running the same engine (fresh tree, shared memoised checker)
        reaches the verdict."""
        engine = VerificationEngine(
            get_program("forward"), budget=Budget(max_nodes=3)
        )
        result = engine.run()
        assert result.verdict == Verdict.UNKNOWN
        engine.budget.max_nodes = 4000
        resumed = engine.run()
        assert resumed.verdict == Verdict.SAFE


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["bfs", "dfs", "error-distance"])
    @pytest.mark.parametrize("name", ["forward", "lock_step", "simple_unsafe"])
    def test_strategies_agree_on_verdicts(self, strategy, name):
        result = verify(get_program(name), strategy=strategy)
        expected = Verdict.UNSAFE if name.endswith("unsafe") else Verdict.SAFE
        assert result.verdict == expected
        assert result.engine_stats["strategy"] == strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown exploration strategy"):
            verify(get_program("forward"), strategy="a-star")

    def test_frontier_instance_accepted(self):
        frontier = make_frontier("dfs", get_program("lock_step"))
        engine = VerificationEngine(get_program("lock_step"), strategy=frontier)
        assert engine.run().verdict == Verdict.SAFE


class TestVerifyCompatibility:
    """``verify()`` keeps its original signature and behaviour."""

    def test_positional_signature(self):
        checker = VcChecker()
        refiner = make_refiner("path-invariant", checker)
        result = verify(get_program("lock_step"), refiner, 10, 2000, checker)
        assert result.verdict == Verdict.SAFE

    def test_source_text_and_initial_precision(self):
        source = "void f(int x) { assume(x >= 1); assert(x >= 0); }"
        result = verify(source)
        assert result.verdict == Verdict.SAFE
        loop = CegarLoop(get_program("lock_step"))
        assert loop.run(Precision()).verdict == Verdict.SAFE


class TestBatch:
    TASKS = ["lock_step", "simple_unsafe", ("inline", "void f(int x) { assert(x == x); }")]

    def _check(self, results):
        assert [r["name"] for r in results] == ["lock_step", "simple_unsafe", "inline"]
        assert [r["verdict"] for r in results] == ["safe", "unsafe", "safe"]
        json.dumps(results)  # the whole payload must be JSON-serialisable

    def test_sequential(self):
        self._check(verify_many(self.TASKS, jobs=1))

    def test_process_pool(self):
        self._check(verify_many(self.TASKS, jobs=2))

    def test_per_task_budgets(self):
        results = verify_many(["forward"], budget=Budget(max_refinements=0), jobs=1)
        assert results[0]["verdict"] == "unknown"

    def test_result_to_dict_shape(self):
        result = verify(get_program("simple_unsafe"))
        payload = result_to_dict(result)
        assert payload["verdict"] == "unsafe"
        assert payload["witness"]
        assert payload["per_iteration"][0]["counterexample_feasible"] is True
        json.dumps(payload)
