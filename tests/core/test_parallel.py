"""Tests for intra-run parallel ART exploration (speculative pool).

The load-bearing property mirrors the incremental-vs-restart suite:
``jobs=N`` must be *observationally identical* to the sequential engine —
same verdicts, same precisions, same post-decision and triple-check
counters — because workers only pre-compute solver verdicts the unchanged
sequential commit loop then consumes as cache hits.
"""

import json

import pytest

from repro.core.api import Session, VerifierOptions
from repro.core.engine import VerificationEngine
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.core.parallel import PARALLEL_BACKENDS, SpeculativePool
from repro.core.predabs import ArtNode, ErrorDistanceFrontier, split_frame_predicates
from repro.lang import get_program
from repro.smt.vcgen import VcChecker

#: (program, refiner) pairs that finish fast under every engine mode; the
#: full 16-combo equivalence corpus runs in benchmarks/bench_e11_parallel.py.
FAST_CORPUS = [
    ("forward", "path-invariant"),
    ("initcheck", "path-invariant"),
    ("double_counter", "path-formula"),
    ("lock_step", "path-invariant"),
    ("simple_unsafe", "path-invariant"),
    ("diamond_safe", "path-invariant"),
]


def run_engine(name, refiner="path-invariant", jobs=1, **kwargs):
    from repro.core.verifier import make_refiner

    checker = VcChecker()
    engine = VerificationEngine(
        get_program(name),
        refiner=make_refiner(refiner, checker),
        checker=checker,
        jobs=jobs,
        **kwargs,
    )
    return engine.run()


def assert_identical(sequential, parallel):
    assert parallel.verdict == sequential.verdict
    assert parallel.precision.snapshot() == sequential.precision.snapshot()
    assert (
        parallel.engine_stats["post_decisions"]
        == sequential.engine_stats["post_decisions"]
    )
    assert (
        parallel.engine_stats["nodes_created"]
        == sequential.engine_stats["nodes_created"]
    )
    # Budget fidelity: installed speculation is charged like inline work.
    assert (
        parallel.iterations[-1].solver_stats["triple_checks"]
        == sequential.iterations[-1].solver_stats["triple_checks"]
    )


class TestParallelSequentialEquivalence:
    @pytest.mark.parametrize("name,refiner", FAST_CORPUS)
    def test_two_workers_identical(self, name, refiner):
        assert_identical(run_engine(name, refiner), run_engine(name, refiner, jobs=2))

    def test_four_workers_identical(self):
        assert_identical(run_engine("forward"), run_engine("forward", jobs=4))

    def test_error_distance_strategy_identical(self):
        # The deterministic node-id tie-break is what makes this hold: both
        # runs pop the same obligations and refine the same pivots.
        seq = run_engine("forward", strategy="error-distance")
        par = run_engine("forward", strategy="error-distance", jobs=3)
        assert_identical(seq, par)

    def test_restart_mode_identical(self):
        seq = run_engine("lock_step", incremental=False)
        par = run_engine("lock_step", incremental=False, jobs=2)
        assert par.verdict == seq.verdict
        assert par.precision.snapshot() == seq.precision.snapshot()

    def test_process_backend_identical(self):
        seq = run_engine("lock_step")
        par = run_engine("lock_step", jobs=2, parallel_backend="process")
        assert par.verdict == seq.verdict
        assert par.precision.snapshot() == seq.precision.snapshot()
        assert par.engine_stats["parallel"]["backend"] == "process"

    def test_pool_actually_speculates(self):
        result = run_engine("forward", jobs=4)
        stats = result.engine_stats["parallel"]
        assert stats["offered"] > 0
        assert stats["installed"] > 0
        assert stats["jobs"] == 4
        assert stats["shards"] >= 1
        assert stats["shard_totals"]["triple_checks"] > 0


class TestSpeculativePool:
    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            SpeculativePool(0, VcChecker())

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            SpeculativePool(2, VcChecker(), backend="gpu")
        assert set(PARALLEL_BACKENDS) == {"thread", "process"}

    def test_engine_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            VerificationEngine(get_program("forward"), jobs=0)
        with pytest.raises(ValueError, match="backend"):
            VerificationEngine(get_program("forward"), parallel_backend="fiber")

    def test_shutdown_is_idempotent(self):
        pool = SpeculativePool(2, VcChecker())
        pool.drain()
        pool.shutdown()
        pool.shutdown()
        assert pool.statistics()["offered"] == 0

    def test_offer_before_precision_is_a_noop(self):
        pool = SpeculativePool(2, VcChecker())
        program = get_program("forward")
        node = ArtNode(program.initial, frozenset(), node_id=0)
        pool.offer(node, program.transitions[0])
        assert pool.offered == 0
        pool.shutdown()


class TestDeterministicTieBreak:
    def test_equal_rank_pops_by_node_id(self):
        program = get_program("forward")
        frontier = ErrorDistanceFrontier(program)
        location = program.initial
        transition = next(
            t for t in program.transitions if t.source == location
        )
        # Push equal-rank obligations in scrambled node-id order; pops must
        # come back in stable node-id order, not insertion order.
        nodes = {
            node_id: ArtNode(location, frozenset(), node_id=node_id)
            for node_id in (7, 2, 9, 4)
        }
        for node_id in (7, 2, 9, 4):
            frontier.push(nodes[node_id], transition)
        popped = []
        while True:
            entry = frontier.pop()
            if entry is None:
                break
            popped.append(entry[0].node_id)
        assert popped == [2, 4, 7, 9]

    def test_same_node_keeps_push_order(self):
        # The counter stays as the final tie-break: one node's multiple
        # outgoing transitions pop in CFG declaration order.
        program = get_program("diamond_safe")
        frontier = ErrorDistanceFrontier(program)
        node = ArtNode(program.initial, frozenset(), node_id=5)
        outgoing = [t for t in program.transitions if t.source == program.initial]
        same_rank = [
            t for t in outgoing
            if frontier._distance.get(t.target)
            == frontier._distance.get(outgoing[0].target)
        ]
        for transition in same_rank:
            frontier.push(node, transition)
        popped = []
        while len(frontier):
            popped.append(frontier.pop()[1])
        assert popped == same_rank


class TestFramePredicateSplit:
    def test_matches_inline_filter(self):
        program = get_program("forward")
        transition = program.transitions[0]
        carried, undecided = split_frame_predicates(
            frozenset(), transition, []
        )
        assert carried == [] and undecided == []


class TestJobsOption:
    def test_options_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            VerifierOptions(jobs=0)
        assert VerifierOptions(jobs=3).jobs == 3

    def test_dict_round_trip(self):
        options = VerifierOptions(jobs=4, max_refinements=7)
        clone = VerifierOptions.from_dict(options.to_dict())
        assert clone == options
        assert clone.jobs == 4

    def test_options_file_round_trip(self, tmp_path):
        path = tmp_path / "opts.toml"
        path.write_text('refiner = "path-invariant"\njobs = 3\n')
        assert VerifierOptions.from_file(path).jobs == 3
        jpath = tmp_path / "opts.json"
        jpath.write_text(json.dumps(VerifierOptions(jobs=2).to_dict()))
        assert VerifierOptions.from_file(jpath).jobs == 2

    def test_cli_verify_jobs_flag(self):
        from repro.__main__ import _resolve_options, build_parser

        args = build_parser().parse_args(["verify", "forward", "--jobs", "3"])
        assert _resolve_options(args).jobs == 3

    def test_cli_jobs_flag_overrides_options_file(self, tmp_path):
        from repro.__main__ import _resolve_options, build_parser

        path = tmp_path / "opts.toml"
        path.write_text("jobs = 2\n")
        args = build_parser().parse_args(
            ["verify", "forward", "--options", str(path)]
        )
        assert _resolve_options(args).jobs == 2
        args = build_parser().parse_args(
            ["verify", "forward", "--options", str(path), "--jobs", "4"]
        )
        assert _resolve_options(args).jobs == 4

    def test_cli_batch_jobs_is_pool_width_not_engine_jobs(self):
        from repro.__main__ import _resolve_options, build_parser

        args = build_parser().parse_args(["batch", "forward", "--jobs", "2"])
        # batch --jobs sizes the task pool; engine-level jobs stays default.
        assert args.jobs == 2
        assert _resolve_options(args).jobs == 1

    def test_result_json_carries_worker_count(self):
        session = Session(VerifierOptions(jobs=2, max_refinements=8))
        result = session.run("lock_step")
        doc = result.to_json(name="lock_step")
        assert doc["engine"]["jobs"] == 2
        assert doc["engine"]["parallel"]["jobs"] == 2
        sequential = Session(VerifierOptions(max_refinements=8)).run("lock_step")
        assert sequential.to_json(name="x")["engine"]["jobs"] == 1


class TestSlowPostFault:
    def test_spec_site_and_round_trip(self):
        spec = FaultSpec(kind="slow-post", key="loop", seconds=0.01)
        assert spec.site == "post"
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        plan = FaultPlan.from_payload(FaultPlan([spec]).to_payload())
        assert plan.specs[0].kind == "slow-post"

    def test_straggling_worker_does_not_change_the_result(self):
        baseline = run_engine("lock_step")
        plan = FaultPlan(
            [FaultSpec(kind="slow-post", key="*", seconds=0.05, max_fires=3)]
        )
        with installed(plan):
            faulted = run_engine("lock_step", jobs=2)
        assert plan.fired, "the slow-post fault never fired"
        assert faulted.verdict == baseline.verdict
        assert faulted.precision.snapshot() == baseline.precision.snapshot()

    def test_slow_post_fires_in_sequential_engine_too(self):
        plan = FaultPlan(
            [FaultSpec(kind="slow-post", key="*", seconds=0.0, max_fires=1)]
        )
        with installed(plan):
            run_engine("simple_safe")
        assert plan.fired
