"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def run_cli(args):
    """Run the CLI in-process, capturing stdout via capsys at the call site."""
    return main(args)


class TestVerifyCommand:
    def test_builtin_safe_program(self, capsys):
        assert run_cli(["verify", "lock_step"]) == 0
        out = capsys.readouterr().out
        assert "verdict:      safe" in out
        assert "incremental" in out

    def test_unsafe_exit_code_and_witness(self, capsys):
        assert run_cli(["verify", "simple_unsafe"]) == 1
        assert "verdict:      unsafe" in capsys.readouterr().out

    def test_unknown_exit_code(self, capsys):
        assert run_cli(["verify", "forward", "--refiner", "path-formula",
                        "--max-refinements", "2"]) == 2

    def test_json_output(self, capsys):
        assert run_cli(["verify", "lock_step", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "lock_step"
        assert payload["verdict"] == "safe"
        assert payload["engine"]["incremental"] is True

    def test_restart_flag(self, capsys):
        assert run_cli(["verify", "lock_step", "--json", "--restart"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"]["incremental"] is False

    def test_source_file(self, tmp_path, capsys):
        source = tmp_path / "abs.c"
        source.write_text(
            "void abs_ok(int x) { int y; if (x >= 0) { y = x; } else { y = 0 - x; } assert(y >= 0); }"
        )
        assert run_cli(["verify", str(source)]) == 0
        assert "abs_ok" in capsys.readouterr().out

    def test_missing_target(self, capsys):
        assert run_cli(["verify", "no_such_program"]) == 3
        assert "neither a built-in" in capsys.readouterr().err

    def test_portfolio_refiner(self, capsys):
        """--refiner portfolio proves FORWARD, on which path-formula alone
        diverges, and reports the per-refiner breakdown."""
        assert run_cli([
            "verify", "forward", "--refiner", "portfolio",
            "--portfolio-mode", "round-robin",
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict:      safe" in out
        assert "winner=path-invariant" in out

    def test_portfolio_json_breakdown(self, capsys):
        assert run_cli([
            "verify", "double_counter", "--refiner", "portfolio",
            "--portfolio-mode", "round-robin", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "safe"
        portfolio = payload["portfolio"]
        assert portfolio["mode"] == "round-robin"
        assert portfolio["winner"] == "path-invariant"
        assert {arm["refiner"] for arm in portfolio["arms"]} == {
            "path-invariant", "path-formula",
        }

    def test_help_epilog_mentions_portfolio(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(["verify", "--help"])
        assert excinfo.value.code == 0
        assert "--refiner portfolio" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_json_document(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        code = run_cli([
            "batch", "lock_step", "simple_unsafe",
            "--jobs", "1", "--output", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["tasks"] == 2
        assert payload["verdicts"] == {"safe": 1, "unsafe": 1}

    def test_batch_unknown_exit_code(self, capsys):
        code = run_cli(["batch", "forward", "--jobs", "1", "--max-refinements", "0"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["verdict"] == "unknown"

    def test_batch_requires_targets(self, capsys):
        assert run_cli(["batch"]) == 3


class TestListCommand:
    def test_lists_builtins(self, capsys):
        assert run_cli(["list"]) == 0
        out = capsys.readouterr().out
        assert "forward" in out and "initcheck" in out


@pytest.mark.slow
def test_module_entry_point_subprocess():
    """``python -m repro`` works end to end in a fresh interpreter."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "verify", "lock_step", "--json"],
        capture_output=True, text=True, timeout=300,
        env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    assert json.loads(completed.stdout)["verdict"] == "safe"
