"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def run_cli(args):
    """Run the CLI in-process, capturing stdout via capsys at the call site."""
    return main(args)


class TestVerifyCommand:
    def test_builtin_safe_program(self, capsys):
        assert run_cli(["verify", "lock_step"]) == 0
        out = capsys.readouterr().out
        assert "verdict:      safe" in out
        assert "incremental" in out

    def test_unsafe_exit_code_and_witness(self, capsys):
        assert run_cli(["verify", "simple_unsafe"]) == 1
        assert "verdict:      unsafe" in capsys.readouterr().out

    def test_unknown_exit_code(self, capsys):
        assert run_cli(["verify", "forward", "--refiner", "path-formula",
                        "--max-refinements", "2"]) == 2

    def test_json_output(self, capsys):
        assert run_cli(["verify", "lock_step", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "lock_step"
        assert payload["verdict"] == "safe"
        assert payload["engine"]["incremental"] is True
        assert payload["schema_version"] == 2

    def test_options_file_toml(self, tmp_path, capsys):
        opts = tmp_path / "opts.toml"
        opts.write_text('refiner = "path-formula"\nmax_refinements = 2\n')
        assert run_cli(["verify", "forward", "--options", str(opts)]) == 2
        capsys.readouterr()  # drain the summary output
        assert run_cli(["verify", "forward", "--options", str(opts), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["refinements"] <= 2

    def test_options_file_json_with_flag_override(self, tmp_path, capsys):
        opts = tmp_path / "opts.json"
        opts.write_text(json.dumps({"refiner": "path-formula", "max_refinements": 2}))
        # The explicit flag overrides the file's refiner; path-invariant
        # proves FORWARD within two refinements.
        assert run_cli([
            "verify", "forward", "--options", str(opts),
            "--refiner", "path-invariant", "--max-refinements", "8",
        ]) == 0

    def test_options_file_errors_are_usage_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.toml"
        assert run_cli(["verify", "forward", "--options", str(missing)]) == 3
        bad = tmp_path / "bad.toml"
        bad.write_text('refiner = "alchemy"\n')
        assert run_cli(["verify", "forward", "--options", str(bad)]) == 3
        assert "unknown refiner" in capsys.readouterr().err
        # Wrong-typed values are a usage error too, never a verdict code.
        typed = tmp_path / "typed.toml"
        typed.write_text('max_refinements = "five"\n')
        assert run_cli(["verify", "forward", "--options", str(typed)]) == 3

    def test_max_predicates_per_location_flag(self, capsys):
        assert run_cli([
            "verify", "forward", "--refiner", "path-formula",
            "--max-refinements", "4", "--max-predicates-per-location", "3",
            "--json",
        ]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"]["max_predicates_per_location"] == 3

    def test_restart_flag(self, capsys):
        assert run_cli(["verify", "lock_step", "--json", "--restart"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"]["incremental"] is False

    def test_source_file(self, tmp_path, capsys):
        source = tmp_path / "abs.c"
        source.write_text(
            "void abs_ok(int x) { int y; if (x >= 0) { y = x; } else { y = 0 - x; } assert(y >= 0); }"
        )
        assert run_cli(["verify", str(source)]) == 0
        assert "abs_ok" in capsys.readouterr().out

    def test_missing_target(self, capsys):
        assert run_cli(["verify", "no_such_program"]) == 3
        assert "neither a built-in" in capsys.readouterr().err

    def test_malformed_source_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("void broken( {")
        assert run_cli(["verify", str(bad)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_portfolio_refiner(self, capsys):
        """--refiner portfolio proves FORWARD, on which path-formula alone
        diverges, and reports the per-refiner breakdown."""
        assert run_cli([
            "verify", "forward", "--refiner", "portfolio",
            "--portfolio-mode", "round-robin",
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict:      safe" in out
        assert "winner=path-invariant" in out

    def test_portfolio_json_breakdown(self, capsys):
        assert run_cli([
            "verify", "double_counter", "--refiner", "portfolio",
            "--portfolio-mode", "round-robin", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "safe"
        portfolio = payload["portfolio"]
        assert portfolio["mode"] == "round-robin"
        assert portfolio["winner"] == "path-invariant"
        assert {arm["refiner"] for arm in portfolio["arms"]} == {
            "path-invariant", "path-formula",
        }

    def test_help_epilog_mentions_portfolio(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(["verify", "--help"])
        assert excinfo.value.code == 0
        assert "--refiner portfolio" in capsys.readouterr().out

    def test_precision_store_warm_starts_second_invocation(self, tmp_path, capsys):
        store = tmp_path / "bank.pkl"
        assert run_cli(["verify", "forward", "--precision-store", str(store),
                        "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert store.exists()
        assert run_cli(["verify", "forward", "--precision-store", str(store),
                        "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["engine"]["session"]["warm_started"] is True
        assert warm["post_decisions"] < cold["post_decisions"]

    def test_corrupt_precision_store_quarantined_and_run_succeeds(
        self, tmp_path, capsys
    ):
        """A corrupt store no longer aborts the run: it is quarantined
        (renamed ``*.corrupt``) and the session starts cold."""
        store = tmp_path / "bank.pkl"
        store.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert run_cli(
                ["verify", "lock_step", "--precision-store", str(store)]
            ) == 0
        assert "verdict:      safe" in capsys.readouterr().out
        assert (tmp_path / "bank.pkl.corrupt").exists()
        assert store.exists()  # the decided run re-banked a fresh snapshot


class TestBatchCommand:
    def test_batch_json_document(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        code = run_cli([
            "batch", "lock_step", "simple_unsafe",
            "--jobs", "1", "--output", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["tasks"] == 2
        assert payload["verdicts"] == {"safe": 1, "unsafe": 1}
        assert payload["schema_version"] == 2
        assert payload["session"]["tasks_run"] == 2

    def test_batch_session_warm_starts_repeated_targets(self, tmp_path):
        out_file = tmp_path / "warm.json"
        code = run_cli([
            "batch", "lock_step", "lock_step",
            "--jobs", "1", "--output", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        first, again = payload["results"]
        assert payload["session"]["warm_starts"] == 1
        assert again["engine"]["session"]["warm_started"] is True
        assert again["post_decisions"] < first["post_decisions"]

    def test_batch_precision_store_spans_invocations(self, tmp_path):
        store = tmp_path / "bank.pkl"
        first_out = tmp_path / "first.json"
        second_out = tmp_path / "second.json"
        assert run_cli(["batch", "lock_step", "--jobs", "1",
                        "--precision-store", str(store),
                        "--output", str(first_out)]) == 0
        assert run_cli(["batch", "lock_step", "--jobs", "1",
                        "--precision-store", str(store),
                        "--output", str(second_out)]) == 0
        cold = json.loads(first_out.read_text())["results"][0]
        warm = json.loads(second_out.read_text())["results"][0]
        assert warm["engine"]["session"]["warm_started"] is True
        assert warm["post_decisions"] < cold["post_decisions"]

    def test_batch_no_warm_start_flag(self, tmp_path):
        out_file = tmp_path / "cold.json"
        code = run_cli([
            "batch", "lock_step", "lock_step", "--no-warm-start",
            "--jobs", "1", "--output", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["session"]["warm_starts"] == 0
        first, again = payload["results"]
        assert again["post_decisions"] == first["post_decisions"]

    def test_batch_supervision_flags_plumb_through(self, tmp_path):
        """``--task-timeout``/``--retries`` reach the supervisor, whose
        statistics land in the batch document's session block."""
        out_file = tmp_path / "supervised.json"
        code = run_cli([
            "batch", "lock_step", "simple_safe", "--jobs", "2",
            "--task-timeout", "60", "--retries", "1",
            "--output", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["verdicts"] == {"safe": 2}
        supervision = payload["session"]["supervision"]
        assert supervision["task_timeout"] == 60.0
        assert supervision["max_retries"] == 1
        assert supervision["tasks_failed"] == 0
        for result in payload["results"]:
            assert result["attempts"] == 1
            assert "failure" not in result

    def test_batch_unknown_exit_code(self, capsys):
        code = run_cli(["batch", "forward", "--jobs", "1", "--max-refinements", "0"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["verdict"] == "unknown"

    def test_batch_requires_targets(self, capsys):
        assert run_cli(["batch"]) == 3

    @pytest.mark.parametrize("jobs", ["1", "2"])
    def test_batch_isolates_malformed_sources(self, tmp_path, capsys, jobs):
        bad = tmp_path / "bad.c"
        bad.write_text("void broken( {")
        code = run_cli(["batch", str(bad), "lock_step", "--jobs", jobs])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert [r["verdict"] for r in payload["results"]] == ["error", "safe"]


class TestListCommand:
    def test_lists_builtins(self, capsys):
        assert run_cli(["list"]) == 0
        out = capsys.readouterr().out
        assert "forward" in out and "initcheck" in out


class TestFuzzCommand:
    def test_clean_batch_exits_zero(self, capsys):
        assert run_cli(["fuzz", "--seed", "1", "--count", "3", "--oracle", "batched"]) == 0
        out = capsys.readouterr().out
        assert "3 programs" in out and "clean" in out

    def test_json_document(self, capsys):
        assert run_cli(["fuzz", "--seed", "4", "--count", "2", "--oracle",
                        "incremental", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["programs_generated"] == 2
        assert payload["mismatches"] == []
        assert payload["oracles"] == ["incremental"]

    def test_rejects_wall_clock_free_budget_misuse(self, capsys):
        # Degenerate generator shapes are usage errors, not crashes.
        assert run_cli(["fuzz", "--count", "1", "--statements", "0"]) == 3
        assert "error:" in capsys.readouterr().err


@pytest.mark.slow
def test_module_entry_point_subprocess():
    """``python -m repro`` works end to end in a fresh interpreter."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "verify", "lock_step", "--json"],
        capture_output=True, text=True, timeout=300,
        env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    assert json.loads(completed.stdout)["verdict"] == "safe"
