"""Tests for path programs, predicate abstraction and the CEGAR loop."""

import pytest

from repro.core import (
    AbstractReachability,
    PathFormulaRefiner,
    PathInvariantRefiner,
    Precision,
    Verdict,
    analyze_counterexample,
    build_path_program,
    nested_blocks,
    verify,
)
from repro.lang import Location, Program, Transition, get_program, program_from_source
from repro.lang.commands import Assign, Assume, Skip
from repro.logic.formulas import eq, ge, le, lt
from repro.logic.terms import const, var
from repro.smt.vcgen import VcChecker


# ----------------------------------------------------------------------
# Nested blocks and path-program construction (Figure 4 of the paper)
# ----------------------------------------------------------------------
def figure4_program_and_path():
    """The two-nested-loops example of Section 3 / Figure 4."""
    l0, l1, l2, err = (Location(n) for n in ("l0", "l1", "l2", "lE"))
    rho = [Assume(ge(var("x"), 0))]
    t01 = Transition(l0, tuple(rho), l1)        # rho0
    t12 = Transition(l1, (Skip(),), l2)         # rho1
    t21 = Transition(l2, (Skip(),), l1)         # rho2
    t10 = Transition(l1, (Skip(),), l0)         # rho3
    t0e = Transition(l0, (Assume(lt(var("x"), 0)),), err)  # rho4
    program = Program(
        name="figure4",
        variables=("x",),
        arrays=(),
        locations=(l0, l1, l2, err),
        initial=l0,
        error=err,
        transitions=(t01, t12, t21, t10, t0e),
    )
    path = [t01, t12, t21, t10, t01, t10, t0e]
    return program, path


class TestNestedBlocks:
    def test_figure4_blocks(self):
        program, path = figure4_program_and_path()
        locations = [path[0].source] + [t.target for t in path]
        blocks = nested_blocks(locations)
        assert len(blocks) == 2
        outer = next(b for b in blocks if len(b.locations) == 3)
        inner = next(b for b in blocks if len(b.locations) == 2)
        assert {l.name for l in outer.locations} == {"l0", "l1", "l2"}
        assert {l.name for l in inner.locations} == {"l1", "l2"}
        assert outer.end == 6
        assert inner.end == 3

    def test_no_blocks_for_loop_free_path(self):
        program, path = figure4_program_and_path()
        locations = [path[0].source, path[0].target, Location("lE")]
        assert nested_blocks(locations) == []


class TestPathProgram:
    def test_figure4_transition_count(self):
        program, path = figure4_program_and_path()
        path_program = build_path_program(program, path)
        # The paper lists 17 transitions for this example (7 path transitions,
        # 4 bridge transitions and 6 hatted block transitions).
        assert len(path_program.program.transitions) == 17

    def test_origin_mapping(self):
        program, path = figure4_program_and_path()
        path_program = build_path_program(program, path)
        origins = {path_program.origin[l].name for l in path_program.program.locations}
        assert origins == {"l0", "l1", "l2", "lE"}
        assert len(path_program.locations_of(Location("l1"))) >= 3

    def test_path_program_contains_only_path_commands(self):
        program = get_program("forward")
        reach = AbstractReachability(program, VcChecker())
        outcome = reach.run(Precision())
        path_program = build_path_program(program, outcome.counterexample)
        original_commands = {t.commands for t in path_program.path}
        for transition in path_program.program.transitions:
            assert transition.commands in original_commands or transition.commands == (Skip(),)

    def test_loops_create_hatted_copies(self):
        program = get_program("initcheck")
        checker = VcChecker()
        precision = Precision()
        reach = AbstractReachability(program, checker)
        PathInvariantRefiner(checker).refine(
            program, reach.run(precision).counterexample, precision
        )
        path = reach.run(precision).counterexample
        path_program = build_path_program(program, path)
        assert any(l.name.endswith("^") for l in path_program.program.locations)
        assert path_program.program.loop_heads()


class TestPrecisionAndReachability:
    def test_precision_add_and_dedupe(self):
        precision = Precision()
        location = Location("L1")
        assert precision.add(location, le(var("x"), 1))
        assert not precision.add(location, le(var("x"), 1))
        assert precision.total_predicates() == 1

    def test_reachability_finds_error_without_predicates(self):
        program = get_program("simple_unsafe")
        outcome = AbstractReachability(program, VcChecker()).run(Precision())
        assert outcome.counterexample is not None

    def test_reachability_proves_with_predicates(self):
        program = get_program("simple_safe")
        precision = Precision()
        # y >= 1 at the location before the assertion
        for transition in program.incoming(program.error):
            precision.add(transition.source, ge(var("y"), 1))
        outcome = AbstractReachability(program, VcChecker()).run(precision)
        assert outcome.is_safe

    def test_counterexample_analysis_feasible(self):
        program = get_program("simple_unsafe")
        outcome = AbstractReachability(program, VcChecker()).run(Precision())
        analysis = analyze_counterexample(outcome.counterexample)
        assert analysis.feasible
        assert analysis.model is not None

    def test_counterexample_analysis_spurious(self):
        program = get_program("forward")
        outcome = AbstractReachability(program, VcChecker()).run(Precision())
        assert not analyze_counterexample(outcome.counterexample).feasible


class TestRefiners:
    def test_path_formula_refiner_adds_constants(self):
        program = get_program("forward")
        outcome = AbstractReachability(program, VcChecker()).run(Precision())
        precision = Precision()
        result = PathFormulaRefiner().refine(program, outcome.counterexample, precision)
        assert result.progress
        predicates = {
            str(p) for loc in precision.locations() for p in precision.predicates_at(loc)
        }
        assert "i = 0" in predicates or "i - 0 = 0" in predicates or "i = 0".replace(" ", "") in {
            p.replace(" ", "") for p in predicates
        }

    def test_path_invariant_refiner_progress(self):
        program = get_program("forward")
        checker = VcChecker()
        precision = Precision()
        outcome = AbstractReachability(program, checker).run(precision)
        result = PathInvariantRefiner(checker).refine(program, outcome.counterexample, precision)
        assert result.progress
        assert result.path_program is not None


class TestVerify:
    """End-to-end CEGAR runs on the fast members of the suite."""

    def test_simple_safe(self):
        assert verify(get_program("simple_safe")).verdict == Verdict.SAFE

    def test_simple_unsafe(self):
        result = verify(get_program("simple_unsafe"))
        assert result.verdict == Verdict.UNSAFE
        assert result.counterexample is not None

    def test_diamond_safe(self):
        assert verify(get_program("diamond_safe")).verdict == Verdict.SAFE

    def test_verify_from_source(self):
        source = "void f(int x) { assume(x >= 2); assert(x >= 1); }"
        assert verify(source).verdict == Verdict.SAFE

    def test_unknown_refiner_rejected(self):
        with pytest.raises(ValueError):
            verify(get_program("simple_safe"), refiner="no-such-refiner")

    @pytest.mark.slow
    def test_forward_is_proved_with_path_invariants(self):
        result = verify(get_program("forward"), max_refinements=4)
        assert result.verdict == Verdict.SAFE

    @pytest.mark.slow
    def test_forward_baseline_keeps_unrolling(self):
        result = verify(get_program("forward"), refiner="path-formula", max_refinements=4)
        assert result.verdict == Verdict.UNKNOWN
        lengths = [r.counterexample_length for r in result.iterations if r.counterexample_length]
        assert lengths[-1] > lengths[0]

    @pytest.mark.slow
    def test_lock_step(self):
        assert verify(get_program("lock_step"), max_refinements=4).verdict == Verdict.SAFE

    @pytest.mark.slow
    def test_array_init_buggy_is_unsafe(self):
        result = verify(get_program("array_init_buggy"), max_refinements=4)
        assert result.verdict == Verdict.UNSAFE
