"""The supervised execution layer (:mod:`repro.core.supervision`).

The acceptance matrix from the fault-tolerance issue lives here: under
injected faults — worker crashes on the first attempt for three suite
programs, one hang, one corrupted store load — ``Session.run_many`` must
complete with verdicts identical to a fault-free run, retried tasks must
converge, and no exception may escape to the caller.

The direct :class:`Supervisor` tests below use a trivial echo worker so the
scheduling policies (retry budgets, backoff, hang killing, pool rebuild,
degradation to in-process execution) are exercised in milliseconds, not
engine-run seconds.
"""

import time

import pytest

from repro import Session, VerifierOptions
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.core.supervision import RetryPolicy, Supervisor

#: The 12-program benchmark suite with its per-program refinement budgets
#: (mirrors benchmarks/run_all.py — initcheck_buggy diverges past 5).
SUITE = [
    ("forward", 8), ("initcheck", 8), ("double_counter", 8), ("up_down", 8),
    ("lock_step", 8), ("diamond_safe", 8), ("simple_safe", 8),
    ("simple_unsafe", 8), ("array_init_const", 8), ("array_copy", 8),
    ("array_init_buggy", 8), ("initcheck_buggy", 5),
]

OPTIONS = VerifierOptions(max_refinements=8)


def _suite_tasks(session, **extra):
    """The suite as VerificationTasks carrying their per-program budgets."""
    return [
        session.task(name, options=OPTIONS.replace(max_refinements=budget, **extra))
        for name, budget in SUITE
    ]


def _echo_worker(payload):
    """A fast stand-in task: succeeds instantly, echoes its name."""
    return {"schema_version": 2, "name": payload["name"], "verdict": "safe",
            "reason": ""}


# ----------------------------------------------------------------------
# Policy units
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(10) == pytest.approx(0.3)

    def test_options_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            VerifierOptions(task_timeout=0)
        with pytest.raises(ValueError, match="task_retries"):
            VerifierOptions(task_retries=-1)


# ----------------------------------------------------------------------
# Direct Supervisor scheduling (echo worker: fast)
# ----------------------------------------------------------------------
class TestSupervisorScheduling:
    RETRY = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_max=0.05)

    def test_fault_free_batch_passes_through(self):
        supervisor = Supervisor(worker=_echo_worker, jobs=2, retry=self.RETRY)
        docs = supervisor.run_batch([{"name": f"t{n}"} for n in range(4)])
        assert [d["name"] for d in docs] == ["t0", "t1", "t2", "t3"]
        assert all(d["verdict"] == "safe" and d["attempts"] == 1 for d in docs)
        assert supervisor.statistics()["pool_rebuilds"] == 0

    def test_crash_is_retried_on_a_fresh_worker(self):
        plan = FaultPlan([FaultSpec(kind="crash", key="t1", attempts=(0,))])
        supervisor = Supervisor(
            worker=_echo_worker, jobs=2, retry=self.RETRY, fault_plan=plan
        )
        docs = supervisor.run_batch([{"name": "t0"}, {"name": "t1"}])
        by_name = {d["name"]: d for d in docs}
        assert by_name["t1"]["verdict"] == "safe"
        assert by_name["t1"]["attempts"] >= 2
        assert by_name["t1"]["failures"][0]["kind"] == "crash"
        assert by_name["t0"]["verdict"] == "safe"
        stats = supervisor.statistics()
        assert stats["crashes"] >= 1
        assert stats["pool_rebuilds"] >= 1
        assert stats["tasks_recovered"] >= 1
        assert stats["tasks_failed"] == 0

    @pytest.mark.timeout(60)
    def test_hang_is_killed_and_retried(self):
        plan = FaultPlan([FaultSpec(kind="hang", key="t0", attempts=(0,),
                                    seconds=30.0)])
        supervisor = Supervisor(
            worker=_echo_worker, jobs=2, task_timeout=1.0,
            retry=self.RETRY, fault_plan=plan,
        )
        start = time.monotonic()
        docs = supervisor.run_batch([{"name": "t0"}, {"name": "t1"}])
        assert time.monotonic() - start < 20  # did not wait out the 30s hang
        by_name = {d["name"]: d for d in docs}
        assert by_name["t0"]["verdict"] == "safe"
        assert by_name["t0"]["failures"][0]["kind"] == "timeout"
        assert supervisor.statistics()["timeouts"] == 1

    def test_exhausted_retries_become_a_failure_doc(self):
        plan = FaultPlan([FaultSpec(kind="error", key="t0", attempts=())])
        supervisor = Supervisor(
            worker=_echo_worker, jobs=2,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01),
            fault_plan=plan,
        )
        docs = supervisor.run_batch([{"name": "t0"}, {"name": "t1"}])
        by_name = {d["name"]: d for d in docs}
        failed = by_name["t0"]
        assert failed["verdict"] == "unknown"
        assert failed["attempts"] == 2  # first try + one retry
        assert failed["failure"]["kind"] == "worker-error"
        assert len(failed["failures"]) == 2
        assert "failed after 2 attempt" in failed["reason"]
        # The sibling task's completed result was not discarded.
        assert by_name["t1"]["verdict"] == "safe"
        assert supervisor.statistics()["tasks_failed"] == 1

    def test_degrades_to_sequential_when_pool_keeps_breaking(self):
        plan = FaultPlan([FaultSpec(kind="crash", key="t0", attempts=(0,))])
        supervisor = Supervisor(
            worker=_echo_worker, jobs=2, retry=self.RETRY,
            fault_plan=plan, max_pool_rebuilds=0,
        )
        docs = supervisor.run_batch([{"name": "t0"}, {"name": "t1"}])
        assert all(d["verdict"] == "safe" for d in docs)
        assert supervisor.degraded_to_sequential is True

    def test_sequential_mode_classifies_injected_faults(self):
        plan = FaultPlan([
            FaultSpec(kind="crash", key="t0", attempts=(0,)),
            FaultSpec(kind="hang", key="t1", attempts=(0,)),
        ])
        supervisor = Supervisor(
            worker=_echo_worker, jobs=1, retry=self.RETRY, fault_plan=plan
        )
        docs = supervisor.run_batch([{"name": "t0"}, {"name": "t1"}])
        by_name = {d["name"]: d for d in docs}
        assert by_name["t0"]["failures"][0]["kind"] == "crash"
        assert by_name["t1"]["failures"][0]["kind"] == "timeout"
        assert all(d["verdict"] == "safe" for d in docs)

    def test_degraded_retry_halves_budgets(self):
        payload = {
            "budget": {"max_nodes": 4000, "max_seconds": 8.0,
                       "max_solver_calls": None},
            "max_predicates_per_location": 12,
        }
        degraded = Supervisor._degraded_payload(payload, retries=1)
        assert degraded["budget"]["max_nodes"] == 2000
        assert degraded["budget"]["max_seconds"] == pytest.approx(4.0)
        assert degraded["budget"]["max_solver_calls"] is None
        assert degraded["max_predicates_per_location"] == 6
        twice = Supervisor._degraded_payload(payload, retries=2)
        assert twice["budget"]["max_nodes"] == 1000
        # The original payload was not mutated.
        assert payload["budget"]["max_nodes"] == 4000


# ----------------------------------------------------------------------
# The acceptance matrix: real engine tasks through Session.run_many
# ----------------------------------------------------------------------
class TestAcceptance:
    @pytest.mark.timeout(480)
    def test_faulted_suite_matches_fault_free_run(self, tmp_path):
        """Crash on 3 suite programs' first attempts, one hang, one corrupt
        store load: the batch completes, non-faulted verdicts are identical
        to a fault-free run, retried tasks converge, nothing raises."""
        baseline_session = Session(OPTIONS)
        baseline = {
            doc["name"]: doc["verdict"]
            for doc in baseline_session.run_many(_suite_tasks(baseline_session),
                                                 jobs=4)
        }
        # initcheck_buggy legitimately exhausts its 5-refinement budget.
        assert set(baseline.values()) <= {"safe", "unsafe", "unknown"}
        assert sum(v == "unknown" for v in baseline.values()) <= 1

        # A valid store on disk, so the corrupt-store fault has a real
        # snapshot to tear mid-load.
        store_path = tmp_path / "bank.pkl"
        Session(OPTIONS, store_path=store_path).run("forward")
        assert store_path.exists()

        crash_targets = ("forward", "lock_step", "simple_unsafe")
        plan = FaultPlan(
            [FaultSpec(kind="crash", key=name, attempts=(0,))
             for name in crash_targets]
            + [FaultSpec(kind="hang", key="diamond_safe", attempts=(0,),
                         seconds=120.0),
               FaultSpec(kind="corrupt-store", key="bank.pkl", attempts=(0,))],
        )
        with installed(plan):
            with pytest.warns(RuntimeWarning, match="quarantined"):
                session = Session(
                    OPTIONS.replace(task_timeout=20.0, task_retries=2),
                    store_path=store_path,
                )
            # The corrupted load was quarantined: the session started cold.
            assert session.store.quarantined
            assert len(session.store) == 0
            docs = session.run_many(_suite_tasks(session), jobs=4)

        verdicts = {doc["name"]: doc["verdict"] for doc in docs}
        assert verdicts == baseline  # faulted tasks converged, rest identical
        by_name = {doc["name"]: doc for doc in docs}
        for name in crash_targets:
            assert by_name[name]["attempts"] >= 2
            assert any(f["kind"] == "crash" for f in by_name[name]["failures"])
        # The hung task was recovered either by the supervisor's own timeout
        # kill or by a crash-triggered pool teardown (a broken pool takes
        # the sleeping worker with it and fails its future too) — both are
        # recoveries; the deterministic timeout-kill path is pinned by
        # TestSupervisorScheduling.test_hang_is_killed_and_retried.
        assert by_name["diamond_safe"]["attempts"] >= 2
        assert by_name["diamond_safe"]["failures"]
        stats = session.last_supervisor.statistics()
        assert stats["crashes"] >= 3
        assert stats["tasks_failed"] == 0
        assert stats["tasks_recovered"] >= 4

    @pytest.mark.timeout(240)
    def test_persistently_crashing_task_settles_as_failure_record(self):
        """A task that crashes on *every* attempt must exhaust its retries
        and yield a structured failure doc — its siblings stay decided.

        With a sibling in flight the crasher is indistinguishable from it,
        so the pool phase retries both for free until the rebuild cap trips
        and the batch degrades to in-process execution — where attribution
        is exact: the crasher is charged each attempt and settles as a
        failure record while the innocent sibling completes normally."""
        plan = FaultPlan([FaultSpec(kind="crash", key="up_down", attempts=())])
        session = Session(OPTIONS.replace(task_retries=1))
        with installed(plan):
            docs = session.run_many(["up_down", "simple_safe"], jobs=2)
        by_name = {doc["name"]: doc for doc in docs}
        failed = by_name["up_down"]
        assert failed["verdict"] == "unknown"
        assert failed["failure"]["kind"] == "crash"
        assert failed["attempts"] >= 2
        assert by_name["simple_safe"]["verdict"] == "safe"
        stats = session.last_supervisor.statistics()
        assert stats["tasks_failed"] == 1
        assert stats["degraded_to_sequential"] is True

    @pytest.mark.timeout(240)
    def test_one_worker_error_does_not_discard_the_batch(self):
        """The historical pool.map failure mode: one worker exception lost
        every task's result.  Supervised futures keep the siblings."""
        plan = FaultPlan([FaultSpec(kind="error", key="initcheck", attempts=())])
        session = Session(OPTIONS.replace(task_retries=0))
        with installed(plan):
            docs = session.run_many(["initcheck", "forward", "simple_unsafe"],
                                    jobs=3)
        by_name = {doc["name"]: doc for doc in docs}
        assert by_name["initcheck"]["verdict"] == "unknown"
        assert by_name["initcheck"]["failure"]["kind"] == "worker-error"
        assert by_name["forward"]["verdict"] == "safe"
        assert by_name["simple_unsafe"]["verdict"] == "unsafe"
