"""Disk-persistent precision store and bounded checker caches.

The :class:`PrecisionStore` gained a disk form this PR: with ``path`` set it
loads (merges) the file at construction and re-saves atomically whenever a
session banks new predicates, so warm starts survive *process lifetimes* —
the acceptance property is the kill-and-restart round trip below.  The
fingerprint a store is keyed by must therefore be stable across processes
(the CFG builder emits transitions in a hash-seed-dependent order; the
fingerprint sorts the renderings, and a subprocess test pins that).

``VerifierOptions.max_cache_entries`` bounds the shared checker's memo
tables with LRU eviction; capped runs must stay correct, just less memoised.
"""

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro import PrecisionStore, Session, VerifierOptions, program_fingerprint
from repro.core import Verdict
from repro.lang import get_program
from repro.smt.vcgen import VcChecker

OPTIONS = VerifierOptions(max_refinements=8)


# ----------------------------------------------------------------------
# PrecisionStore on disk
# ----------------------------------------------------------------------
class TestStoreRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        store = PrecisionStore()
        session = Session(OPTIONS, store=store)
        session.run("forward")
        fingerprint = store.fingerprints()[0]
        path = store.save(tmp_path / "bank.pkl")
        assert path.exists()

        loaded = PrecisionStore(path=path)
        assert loaded.fingerprints() == store.fingerprints()
        assert loaded.payload(fingerprint) == store.payload(fingerprint)

    def test_load_merges_instead_of_replacing(self, tmp_path):
        first = PrecisionStore()
        Session(OPTIONS, store=first).run("forward")
        second = PrecisionStore()
        Session(OPTIONS, store=second).run("lock_step")
        first.save(tmp_path / "a.pkl")
        second.save(tmp_path / "b.pkl")

        merged = PrecisionStore(path=tmp_path / "a.pkl")
        merged.load(tmp_path / "b.pkl")
        assert set(merged.fingerprints()) == set(
            first.fingerprints() + second.fingerprints()
        )

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError, match="no path"):
            PrecisionStore().save()

    def test_corrupt_own_file_quarantined_not_raised(self, tmp_path):
        """A corrupt snapshot must not crash session start: quarantine + cold."""
        path = tmp_path / "bank.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            store = PrecisionStore(path=path)
        assert len(store) == 0
        assert not path.exists()
        assert (tmp_path / "bank.pkl.corrupt").exists()
        assert store.quarantined == [tmp_path / "bank.pkl.corrupt"]

    def test_non_dict_own_payload_quarantined(self, tmp_path):
        path = tmp_path / "bank.pkl"
        path.write_bytes(pickle.dumps(["wrong", "shape"]))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            store = PrecisionStore(path=path)
        assert len(store) == 0

    def test_explicit_load_of_foreign_corrupt_file_still_raises(self, tmp_path):
        """Quarantine applies to the store's *own* snapshot only; an explicit
        load of some other file keeps its loud failure mode."""
        path = tmp_path / "foreign.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ValueError, match="not a precision-store file"):
            PrecisionStore().load(path)

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        store = PrecisionStore()
        Session(OPTIONS, store=store).run("lock_step")
        store.save(tmp_path / "bank.pkl")
        # The stable advisory-lock file is deliberately left behind (it must
        # never be deleted: flock is per-inode); no *temp* files survive.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "bank.pkl", "bank.pkl.lock",
        ]


class TestSessionRestart:
    def test_killed_and_restarted_session_warm_starts(self, tmp_path):
        """The acceptance round trip: a new Session resumes the old one's bank."""
        path = tmp_path / "bank.pkl"
        first = Session(OPTIONS, store_path=path)
        cold = first.run("forward")
        assert cold.verdict == Verdict.SAFE
        assert first.predicates_banked > 0
        assert path.exists()
        del first  # "kill" the session: only the file survives

        second = Session(OPTIONS, store_path=path)
        warm = second.run("forward")
        assert warm.verdict == Verdict.SAFE
        assert warm.engine_stats["session"]["warm_started"] is True
        assert warm.post_decisions() < cold.post_decisions()

    def test_restarted_session_extends_the_bank(self, tmp_path):
        path = tmp_path / "bank.pkl"
        Session(OPTIONS, store_path=path).run("forward")
        second = Session(OPTIONS, store_path=path)
        second.run("lock_step")
        assert len(PrecisionStore(path=path)) == 2

    def test_store_and_store_path_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            Session(store=PrecisionStore(), store_path=tmp_path / "bank.pkl")

    def test_undecided_runs_do_not_touch_the_file(self, tmp_path):
        path = tmp_path / "bank.pkl"
        session = Session(OPTIONS.replace(max_refinements=0), store_path=path)
        result = session.run("forward")
        assert result.verdict == Verdict.UNKNOWN
        assert not path.exists()


class TestFingerprintStability:
    def test_fingerprint_is_stable_across_processes(self):
        """Hash-seed-dependent transition order must not leak into the key."""
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro import program_fingerprint\n"
            "from repro.lang import get_program\n"
            "print(program_fingerprint(get_program('forward')))\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        prints = {
            subprocess.run(
                [sys.executable, "-c", script, src],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(3)
        }
        assert len(prints) == 1
        assert prints == {program_fingerprint(get_program("forward"))}


# ----------------------------------------------------------------------
# Bounded memo tables
# ----------------------------------------------------------------------
class TestBoundedCaches:
    def test_option_validation(self):
        with pytest.raises(ValueError, match="max_cache_entries"):
            VerifierOptions(max_cache_entries=0)
        with pytest.raises(ValueError, match="max_cache_entries"):
            VcChecker(max_cache_entries=0)

    def test_capped_checker_stays_correct(self):
        uncapped = Session(OPTIONS).run("forward")
        capped_session = Session(OPTIONS.replace(max_cache_entries=16))
        capped = capped_session.run("forward")
        assert capped.verdict == uncapped.verdict == Verdict.SAFE
        assert capped.precision.snapshot() == uncapped.precision.snapshot()
        sizes = capped_session.checker.cache_sizes()
        for table in ("triple_cache", "edge_cache", "post_cache", "prepared_edges"):
            assert sizes[table] <= 16
        assert sizes["evictions"] > 0

    def test_eviction_counter_reported_by_session(self):
        session = Session(OPTIONS.replace(max_cache_entries=8))
        session.run("lock_step")
        stats = session.statistics()
        assert stats["checker_caches"]["evictions"] > 0
        assert stats["checker"]["cache_evictions"] > 0

    def test_unbounded_by_default(self):
        session = Session(OPTIONS)
        session.run("lock_step")
        assert session.checker.cache_sizes()["evictions"] == 0

    def test_prepared_edges_are_always_bounded(self):
        """Each prepared edge pins a live solver context, so the table has
        its own LRU cap even when the verdict caches are unbounded."""
        checker = VcChecker()  # max_cache_entries=None
        cap = 3
        checker.PREPARED_EDGE_CAP = cap
        transitions = sorted(get_program("forward").transitions, key=str)
        for transition in transitions:
            checker.post_all_predicates(frozenset(), transition, [])
            checker.edge_feasible(frozenset(), transition)
        assert len(transitions) > cap
        assert checker.cache_sizes()["prepared_edges"] <= cap
        assert checker.cache_evictions > 0
        # The verdict caches stayed unbounded.
        assert checker.cache_sizes()["edge_cache"] == len(transitions)

    def test_explicit_checker_receives_session_cap(self):
        checker = VcChecker()
        Session(OPTIONS.replace(max_cache_entries=64), checker=checker)
        assert checker.max_cache_entries == 64
        # An unset option must not clobber an externally configured cap.
        capped = VcChecker(max_cache_entries=8)
        Session(OPTIONS, checker=capped)
        assert capped.max_cache_entries == 8

    def test_lru_keeps_recently_used_entries(self):
        checker = VcChecker(max_cache_entries=2)
        checker._cache_put(checker._post_cache, "a", True)
        checker._cache_put(checker._post_cache, "b", False)
        assert checker._cache_get(checker._post_cache, "a") is True  # refresh a
        checker._cache_put(checker._post_cache, "c", True)  # evicts b
        assert checker._cache_get(checker._post_cache, "b") is None
        assert checker._cache_get(checker._post_cache, "a") is True
        assert checker.cache_evictions == 1

    def test_churn_far_past_capacity_stays_correct(self):
        """Drive the memo tables through well over 10x their capacity: a
        multi-program session under a tiny cap must evict constantly yet
        reproduce the uncapped verdicts, and the eviction counter must be
        monotone across runs."""
        programs = ["forward", "lock_step", "double_counter", "up_down",
                    "diamond_safe", "simple_safe", "simple_unsafe"]
        uncapped = Session(OPTIONS)
        expected = [uncapped.run(name).verdict for name in programs]
        assert uncapped.checker.cache_sizes()["evictions"] == 0

        cap = 4
        session = Session(OPTIONS.replace(max_cache_entries=cap))
        evictions_after = []
        verdicts = []
        for name in programs:
            verdicts.append(session.run(name).verdict)
            evictions_after.append(session.checker.cache_sizes()["evictions"])
        assert verdicts == expected
        # Monotone, and the churn really exceeded 10x the capacity.
        assert evictions_after == sorted(evictions_after)
        assert evictions_after[-1] > 10 * cap
        for table in ("triple_cache", "edge_cache", "post_cache",
                      "prepared_edges"):
            assert session.checker.cache_sizes()[table] <= cap
