"""Crash-safety of the disk-backed :class:`PrecisionStore`.

The three failure modes the fault-tolerance issue names are pinned here:

* a truncated/corrupted snapshot quarantines (``*.corrupt``) and the session
  starts cold instead of crashing;
* two sessions writing the same store concurrently both land their
  predicates — the merge-on-write journal replaces last-writer-wins (the
  in-process test below fails on the historical implementation);
* a torn journal tail (a writer crashed mid-append) is detected by the
  record framing and dropped, keeping every intact record.
"""

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro import PrecisionStore, Session, VerifierOptions
from repro.core import faults
from repro.core.faults import FaultPlan, FaultSpec, installed

OPTIONS = VerifierOptions(max_refinements=8)


def _store_with(tmp_path, program, filename="bank.pkl"):
    """A saved single-program store on disk; returns its path."""
    path = tmp_path / filename
    Session(OPTIONS, store_path=path).run(program)
    assert path.exists()
    return path


def _borrowed_payload(store):
    """A small non-empty location payload (empty payloads never persist)."""
    fingerprint = store.fingerprints()[0]
    location, predicates = next(iter(store.payload(fingerprint).items()))
    return {location: set(predicates[:1])}


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_truncated_snapshot_quarantined_and_cold(self, tmp_path):
        """The regression from the issue: a torn write (truncated pickle)
        used to raise at session start."""
        path = _store_with(tmp_path, "forward")
        faults.corrupt_file(path, keep_fraction=0.5)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            session = Session(OPTIONS, store_path=path)
        assert len(session.store) == 0
        assert (tmp_path / "bank.pkl.corrupt").exists()
        # The session still works and re-banks a fresh snapshot.
        assert session.run("forward").verdict == "safe"
        assert path.exists()
        assert len(PrecisionStore(path=path)) == 1

    def test_repeated_quarantines_do_not_collide(self, tmp_path):
        path = tmp_path / "bank.pkl"
        for _ in range(3):
            path.write_bytes(b"garbage")
            with pytest.warns(RuntimeWarning):
                PrecisionStore(path=path)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "bank.pkl.corrupt", "bank.pkl.corrupt.1", "bank.pkl.corrupt.2",
            "bank.pkl.lock",
        ]

    def test_injected_corrupt_store_fault_quarantines(self, tmp_path):
        path = _store_with(tmp_path, "forward")
        plan = FaultPlan([FaultSpec(kind="corrupt-store", key="bank.pkl")])
        with installed(plan):
            with pytest.warns(RuntimeWarning, match="quarantined"):
                store = PrecisionStore(path=path)
        assert len(store) == 0
        assert store.quarantined

    def test_flaky_pickle_read_recovers_on_retry(self, tmp_path):
        """A *transient* read error (flaky-pickle, first attempt only) must
        recover via the retry, not quarantine a healthy file."""
        path = _store_with(tmp_path, "forward")
        plan = FaultPlan(
            [FaultSpec(kind="flaky-pickle", key="bank.pkl", attempts=(0,))]
        )
        with installed(plan):
            store = PrecisionStore(path=path)
        assert len(store) == 1  # loaded fine on the second read
        assert not store.quarantined
        assert path.exists()


# ----------------------------------------------------------------------
# Concurrent sessions on one store
# ----------------------------------------------------------------------
class TestConcurrentMerge:
    def test_two_sessions_both_land_their_predicates(self, tmp_path):
        """The last-writer-wins regression: both stores open the same empty
        path, then bank different programs.  Historically the second save
        replaced the first's snapshot wholesale; merge-on-write must keep
        both."""
        path = tmp_path / "shared.pkl"
        first = Session(OPTIONS, store_path=path)
        second = Session(OPTIONS, store_path=path)  # loads the same (empty) disk
        first.run("forward")
        second.run("lock_step")
        merged = PrecisionStore(path=path)
        assert len(merged) == 2
        expected = set(first.store.fingerprints()) | set(
            second.store.fingerprints()
        )
        assert set(merged.fingerprints()) == expected
        for fingerprint in expected:
            assert merged.total_predicates(fingerprint) > 0

    def test_save_folds_in_what_landed_since_load(self, tmp_path):
        """Merge-on-write at the save() level, without journals: a plain
        save must re-read the disk under the lock and union, not replace."""
        path = tmp_path / "shared.pkl"
        a = PrecisionStore()
        b = PrecisionStore()
        Session(OPTIONS, store=a).run("forward")
        Session(OPTIONS, store=b).run("lock_step")
        a.save(path)
        b.save(path)  # historically this wiped a's fingerprint
        assert len(PrecisionStore(path=path)) == 2

    @pytest.mark.timeout(180)
    def test_two_processes_merge_concurrently(self, tmp_path):
        """The cross-process smoke: two interpreters bank different programs
        into one store at the same time; both must survive."""
        src = str(Path(__file__).resolve().parents[2] / "src")
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro import Session, VerifierOptions\n"
            "session = Session(VerifierOptions(max_refinements=8),\n"
            "                  store_path=sys.argv[2])\n"
            "result = session.run(sys.argv[3])\n"
            "assert result.verdict == 'safe', result.verdict\n"
        )
        path = tmp_path / "shared.pkl"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, src, str(path), program],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for program in ("forward", "lock_step")
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=150)
            assert proc.returncode == 0, stderr.decode()
        merged = PrecisionStore(path=path)
        assert len(merged) == 2


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_torn_journal_tail_is_dropped(self, tmp_path):
        path = _store_with(tmp_path, "forward")
        store = PrecisionStore(path=path)
        # Append an intact record for a second fingerprint, then a torn one.
        store.merge("deadbeef00000000", _borrowed_payload(store))
        store.bank("deadbeef00000000")
        journal = store.journal_path
        record = pickle.dumps(("cafebabe00000000", {}))
        with open(journal, "ab") as handle:
            handle.write(b"RJN1")
            handle.write(len(record).to_bytes(4, "big"))
            handle.write(record[: len(record) // 2])  # crashed mid-write
        reloaded = PrecisionStore(path=path)
        assert "deadbeef00000000" in reloaded.fingerprints()
        assert "cafebabe00000000" not in reloaded.fingerprints()

    def test_garbage_journal_bytes_do_not_crash(self, tmp_path):
        path = _store_with(tmp_path, "forward")
        journal = path.with_name(path.name + ".journal")
        journal.write_bytes(b"this is not a journal")
        reloaded = PrecisionStore(path=path)  # snapshot still loads
        assert len(reloaded) == 1

    def test_journal_compaction_folds_into_snapshot(self, tmp_path):
        import repro.core.api as api_module

        path = _store_with(tmp_path, "forward")
        store = PrecisionStore(path=path)
        original = api_module.JOURNAL_COMPACT_BYTES
        api_module.JOURNAL_COMPACT_BYTES = 1  # force compaction on next bank
        try:
            store.merge("deadbeef00000000", _borrowed_payload(store))
            store.bank("deadbeef00000000")
        finally:
            api_module.JOURNAL_COMPACT_BYTES = original
        assert not store.journal_path.exists()  # folded into the snapshot
        assert "deadbeef00000000" in PrecisionStore(path=path).fingerprints()

    def test_lock_file_is_stable(self, tmp_path):
        """The lock file must survive saves: flock is per-inode, and a lock
        file that was replaced would no longer exclude anybody."""
        path = _store_with(tmp_path, "forward")
        lock = path.with_name(path.name + ".lock")
        assert lock.exists()
        inode = lock.stat().st_ino
        store = PrecisionStore(path=path)
        store.save()
        assert lock.stat().st_ino == inode
