"""Tests for the portfolio engine and divergence detection.

Three load-bearing properties:

* the :class:`DivergenceMonitor` recognises the loop-unrolling stall
  signature (and nothing else) from per-iteration records;
* the portfolio demotes a stalling refiner and hands its budget to the
  others, so programs on which one refiner diverges are still proved within
  the shared budget; and
* portfolio verdicts always equal the winning single refiner's verdict on
  the equivalence corpus (racing never changes an answer).

The resumable-engine semantics the portfolio is built on are covered at the
bottom: a budget trip with an analysed-but-unrefined counterexample must
re-enqueue the error obligation (leaving it dangling would let coverage
drain the frontier into an unchecked SAFE verdict).
"""

import json
from types import SimpleNamespace

import pytest

from repro.core import (
    Budget,
    CegarLoop,
    DivergenceMonitor,
    PathFormulaRefiner,
    PathInvariantRefiner,
    PortfolioEngine,
    PortfolioResult,
    Precision,
    Verdict,
    VerificationEngine,
    make_refiner,
    result_to_dict,
    verify,
    verify_many,
)
from repro.core.refiners import RefinementOutcome
from repro.lang import PROGRAMS, get_program, get_source
from repro.logic.formulas import eq
from repro.logic.terms import LinExpr

from test_engine import EQUIVALENCE_CORPUS


def _record(cex_length, pivots, predicates_total, frontier_size, progress=True):
    """A synthetic engine iteration record (duck-typed for the monitor)."""
    return SimpleNamespace(
        refinement=SimpleNamespace(
            progress=progress, pivot_locations=frozenset(pivots)
        ),
        counterexample_length=cex_length,
        predicates_total=predicates_total,
        frontier_size=frontier_size,
    )


class TestDivergenceMonitor:
    def test_unrolling_signature_is_diverging(self):
        """Growing counterexamples at stale pivots with a steady frontier."""
        monitor = DivergenceMonitor(window=3)
        for step, length in enumerate([3, 4, 5, 6]):
            monitor.observe(_record(length, {"L1", "L2"}, 6 * (step + 1), 2 + step))
        verdict = monitor.verdict()
        assert verdict.diverging
        assert verdict.signals["stale_pivots"]
        assert verdict.signals["unrolling"]
        assert "unrolling" in verdict.reason
        assert monitor.classify_budget_trip() == "diverging"

    def test_new_pivot_locations_are_progress(self):
        """A refiner opening new locations (second loop) is never demoted."""
        monitor = DivergenceMonitor(window=3)
        pivot_sets = [{"L1"}, {"L1", "L2"}, {"L2", "L3"}, {"L4"}]
        for step, (length, pivots) in enumerate(zip([3, 6, 9, 12], pivot_sets)):
            monitor.observe(_record(length, pivots, 4 * (step + 1), 3 + step))
        verdict = monitor.verdict()
        assert not verdict.diverging
        assert not verdict.signals["stale_pivots"]
        assert monitor.classify_budget_trip() == "under-resourced"

    def test_constant_counterexample_lengths_are_not_unrolling(self):
        monitor = DivergenceMonitor(window=3)
        for step in range(4):
            monitor.observe(_record(5, {"L1"}, 2 * (step + 1), 4))
        verdict = monitor.verdict()
        assert not verdict.diverging
        assert not verdict.signals["unrolling"]

    def test_shrinking_frontier_is_progress(self):
        monitor = DivergenceMonitor(window=3)
        for step, frontier in enumerate([9, 6, 3, 1]):
            monitor.observe(_record(3 + step, {"L1"}, 2 * (step + 1), frontier))
        assert not monitor.verdict().diverging

    def test_too_few_observations_never_diverge(self):
        monitor = DivergenceMonitor(window=3)
        monitor.observe(_record(3, {"L1"}, 5, 2))
        monitor.observe(_record(4, {"L1"}, 10, 3))
        verdict = monitor.verdict()
        assert not verdict.diverging
        assert "window" in verdict.reason

    def test_records_without_refinement_are_ignored(self):
        monitor = DivergenceMonitor(window=2)
        monitor.observe(SimpleNamespace(refinement=None))
        monitor.observe(_record(3, {"L1"}, 5, 2, progress=False))
        assert monitor.refinements_observed == 0

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            DivergenceMonitor(window=1)

    def test_analyze_real_divergent_run(self):
        """The real path-formula divergence on DOUBLE_COUNTER is flagged."""
        result = verify(
            get_program("double_counter"), refiner="path-formula", max_refinements=6
        )
        assert result.verdict == Verdict.UNKNOWN
        verdict = DivergenceMonitor.analyze(result.iterations, window=3)
        assert verdict.diverging

    def test_analyze_real_convergent_run(self):
        """The successful path-invariant proof is left alone."""
        result = verify(get_program("forward"), refiner="path-invariant")
        assert result.verdict == Verdict.SAFE
        assert not DivergenceMonitor.analyze(result.iterations, window=3).diverging


class _StallingRefiner(PathInvariantRefiner):
    """Synthetically stalls for ``delay`` refinements, then works for real.

    While stalling it mimics a diverging refiner's useful-looking progress:
    each call adds one fresh (useless) predicate at the same pivot location,
    so the engine keeps looping on ever-longer counterexamples.
    """

    name = "stalling"

    def __init__(self, delay):
        super().__init__()
        self.delay = delay
        self.calls = 0

    def refine(self, program, path, precision):
        self.calls += 1
        if self.calls <= self.delay:
            location = path[0].target
            junk = eq(LinExpr.variable("i"), LinExpr.constant(-1000 - self.calls))
            added = precision.add(location, junk)
            return RefinementOutcome(
                progress=added,
                new_predicates=int(added),
                description="stalling on purpose",
                pivot_locations=frozenset([location]),
            )
        return super().refine(program, path, precision)


class TestDivergenceDemotion:
    def test_stalling_refiner_is_demoted(self):
        """A synthetically stalling refiner loses its slices to the rival.

        path-formula genuinely diverges on DOUBLE_COUNTER (one refinement
        per unrolling); the rival stalls long enough that the portfolio must
        demote path-formula on monitor evidence rather than just win first.
        """
        portfolio = PortfolioEngine(
            get_source("double_counter"),
            refiners=(PathFormulaRefiner(), _StallingRefiner(delay=4)),
            mode="round-robin",
            slice_refinements=2,
            monitor_window=3,
        )
        result = portfolio.run()
        assert result.verdict == Verdict.SAFE
        assert result.winner == "stalling"
        by_name = {arm["refiner"]: arm for arm in result.arms}
        assert by_name["path-formula"]["status"] == "demoted"
        assert by_name["path-formula"]["divergence"]["diverging"]
        assert by_name["path-formula"]["budget_class"] == "diverging"
        assert by_name["stalling"]["status"] == "won"

    def test_portfolio_rescues_divergent_programs(self):
        """FORWARD/DOUBLE_COUNTER are proved although path-formula diverges,
        within the same shared refinement budget a single refiner would get."""
        for name in ("forward", "double_counter"):
            result = verify(
                get_source(name), refiner="portfolio", portfolio_mode="round-robin"
            )
            assert result.verdict == Verdict.SAFE, name
            assert result.winner == "path-invariant"

    def test_demotion_never_strands_the_last_arm(self):
        """With every arm diverging, the portfolio reports honestly instead
        of demoting everyone (the last active arm is never demoted)."""
        portfolio = PortfolioEngine(
            get_source("double_counter"),
            refiners=("path-formula",),
            budget=Budget(max_refinements=8),
            mode="round-robin",
        )
        result = portfolio.run()
        assert result.verdict == Verdict.UNKNOWN
        (arm,) = result.arms
        assert arm["status"] in ("exhausted", "no-progress")
        assert arm["budget_class"] == "diverging"
        assert "path-formula" in result.reason


class TestPortfolioEquivalence:
    #: Distinct programs of the 16-combo incremental-vs-restart corpus.
    PROGRAMS_UNDER_TEST = sorted({name for name, _ in EQUIVALENCE_CORPUS})

    @pytest.mark.parametrize("name", PROGRAMS_UNDER_TEST)
    def test_portfolio_verdict_equals_winning_refiner(self, name):
        portfolio = PortfolioEngine(
            get_source(name),
            mode="round-robin",
            slice_seconds=2.0,
        )
        result = portfolio.run()
        assert result.winner is not None, result.reason
        single = verify(get_program(name), refiner=result.winner)
        assert result.verdict == single.verdict
        expected_safe = PROGRAMS[name].expected_safe
        assert (result.verdict == Verdict.SAFE) == expected_safe

    def test_unsafe_witness_is_preserved(self):
        result = verify(
            get_source("simple_unsafe"), refiner="portfolio", portfolio_mode="round-robin"
        )
        assert result.verdict == Verdict.UNSAFE
        assert result.counterexample is not None
        payload = result_to_dict(result)
        assert payload["witness"]
        assert payload["portfolio"]["winner"] == result.winner
        json.dumps(payload)


class TestPortfolioModes:
    def test_process_race_decides(self):
        """The process race returns the winning arm's verdict and stats."""
        portfolio = PortfolioEngine(
            get_source("forward"),
            mode="process",
            budget=Budget(max_seconds=60.0),
        )
        result = portfolio.run()
        assert result.verdict == Verdict.SAFE
        assert result.mode in ("process", "round-robin")  # sandbox fallback
        assert result.winner == "path-invariant"
        json.dumps(result_to_dict(result))

    def test_refiner_instances_force_round_robin(self):
        portfolio = PortfolioEngine(
            get_source("lock_step"),
            refiners=(PathInvariantRefiner(), "path-formula"),
            mode="auto",
        )
        result = portfolio.run()
        assert result.mode == "round-robin"
        assert result.verdict == Verdict.SAFE

    def test_single_refiner_portfolio(self):
        result = PortfolioEngine(
            get_source("lock_step"), refiners=("path-invariant",), mode="auto"
        ).run()
        assert result.verdict == Verdict.SAFE
        assert result.winner == "path-invariant"

    def test_unknown_refiner_and_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown refiner"):
            PortfolioEngine(get_source("lock_step"), refiners=("alchemy",))
        with pytest.raises(ValueError, match="portfolio mode"):
            PortfolioEngine(get_source("lock_step"), mode="tournament")
        with pytest.raises(ValueError, match="at least one refiner"):
            PortfolioEngine(get_source("lock_step"), refiners=())
        with pytest.raises(ValueError, match="engine-level"):
            make_refiner("portfolio")

    def test_verify_and_cegarloop_thread_portfolio(self):
        result = verify(
            get_program("lock_step"), refiner="portfolio", portfolio_mode="round-robin"
        )
        assert isinstance(result, PortfolioResult)
        assert result.verdict == Verdict.SAFE
        loop = CegarLoop(get_program("lock_step"), refiner="portfolio")
        assert loop.run().verdict == Verdict.SAFE
        with pytest.raises(ValueError, match="initial precision"):
            loop.run(initial_precision=Precision())

    def test_batch_supports_portfolio(self):
        results = verify_many(
            ["lock_step", "simple_unsafe"], refiner="portfolio", jobs=1
        )
        assert [r["verdict"] for r in results] == ["safe", "unsafe"]
        assert all(r["portfolio"]["winner"] for r in results)
        json.dumps(results)


class TestResumableEngine:
    def test_slice_resume_reaches_verdict(self):
        """Refinement slices plus resume accumulate into the same proof."""
        engine = VerificationEngine(
            get_program("forward"), budget=Budget(max_refinements=0)
        )
        result = engine.run()
        for _ in range(4):
            if result.verdict != Verdict.UNKNOWN:
                break
            engine.budget.max_refinements = engine.refinements_done + 1
            result = engine.run(resume=True)
        assert result.verdict == Verdict.SAFE
        assert engine.refinements_done == 2

    def test_sliced_divergence_stays_divergent(self):
        """Slicing must not change the path-formula divergence on
        DOUBLE_COUNTER: the budget-tripped counterexample is re-derived and
        refined on resume instead of dangling in the tree (where coverage
        would drain the frontier into an unchecked SAFE)."""
        checker_engine = VerificationEngine(
            get_program("double_counter"), budget=Budget(max_refinements=0)
        )
        checker_engine.refiner = make_refiner("path-formula", checker_engine.checker)
        result = checker_engine.run()
        for _ in range(4):
            checker_engine.budget.max_refinements = (
                checker_engine.refinements_done + 2
            )
            result = checker_engine.run(resume=True)
            assert result.verdict == Verdict.UNKNOWN
            assert "refinement budget" in result.reason
        # Same trajectory as the unsliced run: one unrolling per refinement.
        lengths = [
            r.counterexample_length for r in result.iterations if r.refinement
        ]
        assert lengths == sorted(lengths)
        assert len(set(lengths)) == len(lengths)

    def test_sliced_run_still_finds_deep_bugs(self):
        """Regression guard for the dangling-error-node unsoundness: a bug
        reachable only after several unrollings must still be found when
        every earlier (infeasible) counterexample hit a budget boundary."""
        deep_bug = """
        void deep_bug(int n) {
          int i, a;
          assume(n >= 3);
          i = 0;
          a = 0;
          while (i < n) {
            a = a + 2;
            i = i + 1;
          }
          assert(a != 2 * n);
        }
        """
        engine = VerificationEngine(deep_bug, budget=Budget(max_refinements=0))
        engine.refiner = make_refiner("path-formula", engine.checker)
        result = engine.run()
        for _ in range(12):
            if result.verdict != Verdict.UNKNOWN:
                break
            engine.budget.max_refinements = engine.refinements_done + 1
            result = engine.run(resume=True)
        assert result.verdict == Verdict.UNSAFE

    def test_resume_after_decision_is_final(self):
        engine = VerificationEngine(get_program("simple_unsafe"))
        result = engine.run()
        assert result.verdict == Verdict.UNSAFE
        assert engine.run(resume=True) is result

    def test_fresh_run_still_resets(self):
        engine = VerificationEngine(get_program("lock_step"))
        first = engine.run()
        second = engine.run()
        assert first.verdict == second.verdict == Verdict.SAFE
        assert second is not first
