"""Tests for the typed task/session API (repro.core.api).

Four load-bearing properties:

* **Options fidelity** — ``VerifierOptions`` validates at construction and
  round-trips losslessly through dicts and TOML/JSON files.
* **Schema stability** — ``Result.to_json`` is versioned and its key set is
  pinned by a golden test (the CLI, ``verify_many`` and the benchmark
  harness all consume it).
* **Shim equivalence** — the legacy ``verify(**old_kwargs)`` surface
  produces the same verdicts and precisions as the explicit
  ``Session``/``VerifierOptions`` path over the equivalence corpus.
* **Warm-start soundness** — seeding a run from previously discovered
  predicates never changes a decided verdict, and a warm rerun does
  strictly less abstract-post work whenever the cold run refined.
"""

import json
import pickle

import pytest

from repro import (
    PrecisionStore,
    Session,
    VerificationTask,
    VerifierOptions,
    program_fingerprint,
    verify,
)
from repro.core import (
    Budget,
    CegarLoop,
    CegarResult,
    Precision,
    RESULT_SCHEMA_VERSION,
    Result,
    Verdict,
    verify_many,
)
from repro.lang import get_program, get_source
from repro.logic.formulas import eq, le
from repro.logic.terms import LinExpr


# ----------------------------------------------------------------------
# Options
# ----------------------------------------------------------------------
class TestVerifierOptions:
    def test_defaults_are_valid_and_frozen(self):
        options = VerifierOptions()
        assert options.refiner == "path-invariant"
        assert options.warm_start is True
        with pytest.raises(AttributeError):
            options.refiner = "path-formula"

    @pytest.mark.parametrize(
        "changes",
        [
            {"refiner": "alchemy"},
            {"strategy": "a-star"},
            {"portfolio_mode": "tournament"},
            {"portfolio_refiners": ()},
            {"portfolio_refiners": ("portfolio",)},
            {"max_refinements": -1},
            {"max_nodes": 0},
            {"max_seconds": -0.5},
            {"max_solver_calls": 0},
            {"slice_refinements": 0},
            {"slice_seconds": 0.0},
            {"monitor_window": 1},
            {"max_predicates_per_location": 0},
        ],
    )
    def test_validation_rejects_bad_values(self, changes):
        with pytest.raises(ValueError):
            VerifierOptions(**changes)

    def test_round_trip_through_dict(self):
        options = VerifierOptions(
            refiner="portfolio",
            strategy="dfs",
            max_refinements=7,
            max_nodes=None,
            max_seconds=1.5,
            incremental=False,
            portfolio_mode="round-robin",
            portfolio_refiners=("path-formula",),
            max_predicates_per_location=9,
            warm_start=False,
        )
        payload = options.to_dict()
        json.dumps(payload)  # the dict form must be JSON-safe
        assert VerifierOptions.from_dict(payload) == options
        # from_dict also accepts lists where tuples are expected (JSON/TOML).
        payload["portfolio_refiners"] = list(payload["portfolio_refiners"])
        assert VerifierOptions.from_dict(payload) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown option keys"):
            VerifierOptions.from_dict({"refiner": "path-formula", "mood": "hopeful"})

    def test_replace_validates(self):
        options = VerifierOptions()
        assert options.replace(strategy="dfs").strategy == "dfs"
        with pytest.raises(ValueError):
            options.replace(strategy="a-star")

    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "opts.toml"
        path.write_text(
            'refiner = "path-formula"\nmax_refinements = 3\nstrategy = "dfs"\n'
            "max_predicates_per_location = 5\nwarm_start = false\n"
        )
        options = VerifierOptions.from_file(path)
        assert options == VerifierOptions(
            refiner="path-formula",
            max_refinements=3,
            strategy="dfs",
            max_predicates_per_location=5,
            warm_start=False,
        )

    def test_from_json_file(self, tmp_path):
        options = VerifierOptions(refiner="portfolio", max_seconds=2.0)
        path = tmp_path / "opts.json"
        path.write_text(json.dumps(options.to_dict()))
        assert VerifierOptions.from_file(path) == options

    def test_budget_mapping(self):
        options = VerifierOptions(
            max_refinements=3, max_nodes=None, max_seconds=9.0, max_solver_calls=100
        )
        budget = options.budget()
        assert budget == Budget(
            max_refinements=3, max_nodes=None, max_seconds=9.0, max_solver_calls=100
        )


# ----------------------------------------------------------------------
# Tasks and fingerprints
# ----------------------------------------------------------------------
class TestTaskAndFingerprint:
    def test_fingerprint_stable_across_parses(self):
        assert program_fingerprint(get_program("forward")) == program_fingerprint(
            get_program("forward")
        )

    def test_fingerprint_distinguishes_programs(self):
        fingerprints = {
            program_fingerprint(get_program(name))
            for name in ("forward", "initcheck", "lock_step", "forward_buggy")
        }
        assert len(fingerprints) == 4

    def test_task_resolution_and_naming(self):
        task = VerificationTask(get_source("forward"))
        program = task.resolved()
        assert program.name == "forward" and task.name == "forward"
        named = VerificationTask(get_source("forward"), name="custom")
        named.resolved()
        assert named.name == "custom"
        assert task.fingerprint == named.fingerprint

    def test_session_task_coercions(self):
        session = Session()
        assert session.task("forward").name == "forward"  # built-in lookup
        raw = session.task("void f(int x) { assert(x == x); }")
        assert raw.source is not None and raw.resolved().name == "f"
        task = VerificationTask(get_program("lock_step"))
        assert session.task(task) is task


# ----------------------------------------------------------------------
# The versioned result schema
# ----------------------------------------------------------------------
REQUIRED_KEYS = {
    "schema_version", "name", "verdict", "reason", "iterations", "refinements",
    "predicates", "seconds", "post_decisions", "nodes_reused", "engine",
    "per_iteration",
}
OPTIONAL_KEYS = {
    "witness", "solver", "portfolio", "refiner",
    # schema v2: supervised-execution keys
    "attempts", "failure", "failures",
}
ITERATION_KEYS = {
    "iteration", "nodes_created", "post_decisions", "counterexample_length",
    "counterexample_feasible", "new_predicates", "repair", "seconds",
}


class TestResultSchema:
    """Golden test: the to_json key set is a documented, versioned contract."""

    def _check(self, doc, verdict):
        assert doc["schema_version"] == RESULT_SCHEMA_VERSION == 2
        assert doc["verdict"] == verdict
        assert REQUIRED_KEYS <= set(doc)
        assert set(doc) <= REQUIRED_KEYS | OPTIONAL_KEYS, sorted(doc)
        for record in doc["per_iteration"]:
            assert set(record) == ITERATION_KEYS
        json.dumps(doc)

    def test_safe_result_document(self):
        doc = Session().run("lock_step").to_json()
        self._check(doc, "safe")
        assert "witness" not in doc
        assert doc["engine"]["session"]["warm_started"] is False

    def test_unsafe_result_document_carries_witness(self):
        doc = Session().run("simple_unsafe").to_json(name="renamed")
        self._check(doc, "unsafe")
        assert doc["name"] == "renamed"
        assert doc["witness"]

    def test_portfolio_result_document(self):
        options = VerifierOptions(refiner="portfolio", portfolio_mode="round-robin")
        doc = Session(options).run("lock_step").to_json()
        self._check(doc, "safe")
        assert doc["portfolio"]["winner"] in ("path-invariant", "path-formula")

    def test_result_alias_is_the_same_class(self):
        assert CegarResult is Result


# ----------------------------------------------------------------------
# Compatibility shims
# ----------------------------------------------------------------------
#: Same corpus as tests/core/test_engine.py — the shim must agree with the
#: explicit Session path pair for pair.
SHIM_CORPUS = [
    ("forward", "path-invariant"),
    ("forward", "path-formula"),
    ("initcheck", "path-invariant"),
    ("double_counter", "path-invariant"),
    ("double_counter", "path-formula"),
    ("up_down", "path-formula"),
    ("lock_step", "path-invariant"),
    ("lock_step", "path-formula"),
    ("simple_safe", "path-invariant"),
    ("simple_unsafe", "path-invariant"),
    ("simple_unsafe", "path-formula"),
    ("diamond_safe", "path-invariant"),
    ("forward_buggy", "path-invariant"),
    ("array_init_buggy", "path-invariant"),
    ("array_init_const", "path-invariant"),
    ("array_copy", "path-invariant"),
]


class TestShimEquivalence:
    @pytest.mark.parametrize("name,refiner", SHIM_CORPUS)
    def test_verify_matches_session(self, name, refiner):
        with pytest.warns(DeprecationWarning):
            legacy = verify(get_program(name), refiner=refiner, max_refinements=4)
        options = VerifierOptions(refiner=refiner, max_refinements=4)
        modern = Session(options).run(get_program(name))
        assert legacy.verdict == modern.verdict
        assert legacy.precision.snapshot() == modern.precision.snapshot()

    def test_verify_rejects_options_plus_legacy_kwargs(self):
        with pytest.raises(ValueError, match="not both"):
            verify(
                get_program("lock_step"),
                max_refinements=3,
                options=VerifierOptions(),
            )

    def test_verify_refiner_kwarg_stays_first_class(self, recwarn):
        """refiner= is the documented second positional: no deprecation."""
        result = verify(get_program("lock_step"), "path-formula")
        assert result.verdict == Verdict.SAFE
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        # ...but it still conflicts with options=, which carries its own.
        with pytest.raises(ValueError, match="not both"):
            verify(
                get_program("lock_step"),
                refiner="path-formula",
                options=VerifierOptions(),
            )

    def test_verify_options_path_does_not_warn(self, recwarn):
        result = verify(
            get_program("lock_step"), options=VerifierOptions(max_refinements=6)
        )
        assert result.verdict == Verdict.SAFE
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_verify_many_legacy_and_options(self):
        with pytest.warns(DeprecationWarning):
            legacy = verify_many(
                ["lock_step"], budget=Budget(max_refinements=4), jobs=1
            )
        modern = verify_many(
            ["lock_step"], options=VerifierOptions(max_refinements=4), jobs=1
        )
        assert legacy[0]["verdict"] == modern[0]["verdict"] == "safe"
        assert legacy[0]["schema_version"] == RESULT_SCHEMA_VERSION

    def test_cegarloop_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="CegarLoop"):
            loop = CegarLoop(get_program("lock_step"), max_refinements=6)
        assert loop.run().verdict == Verdict.SAFE


# ----------------------------------------------------------------------
# Warm starts
# ----------------------------------------------------------------------
class TestWarmStart:
    @pytest.mark.parametrize("name,refiner", SHIM_CORPUS)
    def test_seeded_precision_never_changes_the_verdict(self, name, refiner):
        """Warm-start soundness over the whole corpus, both refiners."""
        options = VerifierOptions(refiner=refiner, max_refinements=4)
        session = Session(options)
        cold = session.run(name)
        warm = session.run(name)
        assert warm.verdict == cold.verdict
        # Only decided runs bank predicates (an undecided run's precision is
        # dominated by whatever made it diverge), so only they warm-start.
        decided = cold.verdict in (Verdict.SAFE, Verdict.UNSAFE)
        banked = decided and cold.precision.total_predicates() > 0
        assert warm.engine_stats["session"]["warm_started"] is banked

    def test_warm_rerun_strictly_fewer_posts(self):
        session = Session()
        cold = session.run("initcheck")
        warm = session.run("initcheck")
        assert cold.verdict == warm.verdict == Verdict.SAFE
        assert warm.post_decisions() < cold.post_decisions()
        assert warm.num_refinements == 0  # the seed already proves it

    def test_explicit_seed_wins_over_store(self):
        program = get_program("simple_safe")
        seed = Precision()
        location = program.locations[0]
        seed.add(location, le(LinExpr.variable("x"), LinExpr.constant(100)))
        result = Session().run(
            VerificationTask(program, initial_precision=seed)
        )
        assert result.verdict == Verdict.SAFE
        assert result.engine_stats["session"]["seeded_predicates"] == 1
        assert result.engine_stats["session"]["warm_started"] is False

    def test_undecided_runs_are_not_banked(self):
        """An unknown verdict's precision must not poison the store."""
        options = VerifierOptions(refiner="path-formula", max_refinements=2)
        session = Session(options)
        cold = session.run("forward")  # the baseline diverges here
        assert cold.verdict == Verdict.UNKNOWN
        assert cold.precision.total_predicates() > 0
        assert len(session.store) == 0
        warm = session.run("forward")
        assert warm.engine_stats["session"]["warm_started"] is False

    def test_warm_start_disabled_by_options(self):
        session = Session(VerifierOptions(warm_start=False))
        session.run("lock_step")
        again = session.run("lock_step")
        assert again.engine_stats["session"]["warm_started"] is False

    def test_store_rebinds_predicates_across_parses(self):
        store = PrecisionStore()
        first = get_program("forward")
        precision = Precision()
        predicate = eq(LinExpr.variable("i"), LinExpr.constant(0))
        precision.add(first.locations[1], predicate)
        fingerprint = program_fingerprint(first)
        assert store.update(fingerprint, precision) == 1
        assert store.update(fingerprint, precision) == 0  # merging is idempotent
        second = get_program("forward")  # an independent parse
        seed = store.seed_for(fingerprint, second)
        assert seed is not None and seed.total_predicates() == 1
        rebound_location = next(iter(seed.snapshot()))
        assert rebound_location in second.locations
        assert predicate in seed.snapshot()[rebound_location]

    def test_portfolio_warm_start_through_session(self):
        options = VerifierOptions(
            refiner="portfolio", portfolio_mode="round-robin", max_refinements=8
        )
        session = Session(options)
        cold = session.run("double_counter")
        warm = session.run("double_counter")
        assert cold.verdict == warm.verdict == Verdict.SAFE
        assert warm.engine_stats["session"]["warm_started"] is True


# ----------------------------------------------------------------------
# The per-location predicate cap
# ----------------------------------------------------------------------
class TestPredicateCap:
    def test_precision_enforces_cap(self):
        program = get_program("simple_safe")
        location = program.locations[0]
        precision = Precision(max_per_location=2)
        x = LinExpr.variable("x")
        assert precision.add(location, eq(x, LinExpr.constant(0)))
        assert precision.add(location, eq(x, LinExpr.constant(1)))
        assert not precision.add(location, eq(x, LinExpr.constant(2)))
        assert precision.total_predicates() == 2
        assert precision.predicates_dropped == 1
        clone = precision.copy()
        assert clone.max_per_location == 2 and clone.predicates_dropped == 1

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="max_per_location"):
            Precision(max_per_location=0)

    def test_capped_run_bounds_every_location(self):
        options = VerifierOptions(
            refiner="path-formula", max_refinements=6, max_predicates_per_location=4
        )
        result = Session(options).run("forward")
        # The baseline diverges on FORWARD; the cap just bounds the flood.
        assert result.verdict == Verdict.UNKNOWN
        assert all(
            len(preds) <= 4 for preds in result.precision.snapshot().values()
        )
        assert result.engine_stats["max_predicates_per_location"] == 4
        assert result.engine_stats["predicates_dropped"] > 0

    def test_oversized_explicit_seed_is_truncated_to_cap(self):
        program = get_program("simple_safe")
        seed = Precision()
        location = program.locations[0]
        x = LinExpr.variable("x")
        for value in range(5):
            seed.add(location, le(x, LinExpr.constant(value)))
        options = VerifierOptions(max_predicates_per_location=2)
        result = Session(options).run(
            VerificationTask(program, initial_precision=seed)
        )
        assert result.verdict == Verdict.SAFE
        assert all(
            len(preds) <= 2 for preds in result.precision.snapshot().values()
        )

    def test_uncapped_default_unchanged(self):
        result = Session().run("lock_step")
        assert result.precision.max_per_location is None
        assert "max_predicates_per_location" not in result.engine_stats


# ----------------------------------------------------------------------
# Pickling (the transport layer of precision transfer)
# ----------------------------------------------------------------------
class TestPickling:
    def test_formulas_reintern_after_round_trip(self):
        result = Session().run("initcheck")  # includes quantified predicates
        total = 0
        for predicates in result.precision.snapshot().values():
            for predicate in predicates:
                loaded = pickle.loads(pickle.dumps(predicate))
                assert loaded == predicate
                assert loaded is predicate  # hash-consing survives transport
                total += 1
        assert total > 0

    def test_precision_payload_round_trips(self):
        result = Session().run("forward")
        payload = result.precision.by_location_name()
        loaded = pickle.loads(pickle.dumps(payload))
        assert loaded == payload
        rebound = Precision.from_location_names(get_program("forward"), loaded)
        assert rebound.snapshot() == result.precision.snapshot()


# ----------------------------------------------------------------------
# Session scheduling
# ----------------------------------------------------------------------
class TestSessionScheduling:
    def test_run_many_sequential_warm_starts_duplicates(self):
        session = Session()
        docs = session.run_many(["lock_step", "lock_step"], jobs=1)
        assert [doc["verdict"] for doc in docs] == ["safe", "safe"]
        assert docs[1]["engine"]["session"]["warm_started"] is True
        assert docs[1]["post_decisions"] < docs[0]["post_decisions"]
        json.dumps(docs)

    def test_run_many_pool_ships_precisions_home(self):
        session = Session()
        docs = session.run_many(
            ["lock_step", "double_counter", "simple_unsafe"], jobs=2
        )
        assert [doc["verdict"] for doc in docs] == ["safe", "safe", "unsafe"]
        json.dumps(docs)  # pickled precisions must never leak into the docs
        # The workers' discovered predicates were merged into the store.
        assert session.predicates_banked > 0
        assert len(session.store) == 2  # simple_unsafe discovers none
        warm = session.run("lock_step")
        assert warm.engine_stats["session"]["warm_started"] is True

    def test_run_many_pool_honours_portfolio_options(self):
        """Pool workers must receive the portfolio knobs, not defaults."""
        options = VerifierOptions(
            refiner="portfolio",
            portfolio_refiners=("path-invariant",),
            portfolio_mode="round-robin",
            max_refinements=8,
        )
        docs = Session(options).run_many(["lock_step", "double_counter"], jobs=2)
        for doc in docs:
            assert doc["verdict"] == "safe"
            arms = {arm["refiner"] for arm in doc["portfolio"]["arms"]}
            assert arms == {"path-invariant"}, doc["name"]

    def test_run_many_sequential_isolates_bad_tasks(self):
        """A malformed source yields an error doc, not a batch abort."""
        session = Session()
        docs = session.run_many([("bad", "void broken( {"), "lock_step"], jobs=1)
        assert docs[0]["name"] == "bad" and docs[0]["verdict"] == "error"
        assert docs[0]["reason"]
        assert docs[0]["schema_version"] == RESULT_SCHEMA_VERSION
        assert docs[1]["verdict"] == "safe"
        assert session.tasks_run == 2  # error tasks count like the pool path
        json.dumps(docs)

    def test_run_many_pool_isolates_bad_tasks(self):
        """Parent-side parse failures must not abort a pooled batch."""
        session = Session()
        docs = session.run_many(
            [("bad", "void broken( {"), "lock_step", "double_counter"], jobs=2
        )
        assert docs[0]["name"] == "bad" and docs[0]["verdict"] == "error"
        assert docs[0]["schema_version"] == RESULT_SCHEMA_VERSION
        assert [doc["verdict"] for doc in docs[1:]] == ["safe", "safe"]
        assert session.tasks_run == 3
        json.dumps(docs)

    def test_verify_many_options_path_is_cold(self):
        """The compatibility wrapper guarantees cold runs either way."""
        source = get_source("lock_step")
        docs = verify_many(
            [("a", source), ("b", source)],
            options=VerifierOptions(max_refinements=8),
            jobs=1,
        )
        assert [doc["verdict"] for doc in docs] == ["safe", "safe"]
        assert docs[0]["post_decisions"] == docs[1]["post_decisions"]
        assert docs[1]["engine"]["session"]["warm_started"] is False

    def test_run_many_mixed_task_forms(self):
        session = Session()
        docs = session.run_many(
            [
                "lock_step",
                ("inline", "void f(int x) { assert(x == x); }"),
                {"name": "strict", "source": get_source("simple_safe"),
                 "options": {"max_refinements": 2}},
            ],
            jobs=1,
        )
        assert [doc["name"] for doc in docs] == ["lock_step", "inline", "strict"]
        assert all(doc["verdict"] == "safe" for doc in docs)

    def test_session_statistics(self):
        session = Session()
        session.run("lock_step")
        session.run("lock_step")
        stats = session.statistics()
        assert stats["tasks_run"] == 2
        assert stats["warm_starts"] == 1
        assert stats["programs_known"] == 1
        assert stats["checker"]["triple_checks"] > 0
        assert stats["checker_caches"]["triple_cache"] > 0
