"""Shared pytest configuration."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: end-to-end CEGAR runs that take tens of seconds"
    )
