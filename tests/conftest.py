"""Shared pytest configuration.

Besides registering markers, this conftest wires a CI-friendly per-test
timeout: a solver regression that would previously hang the whole tier-1 run
indefinitely (the eager-DNF era symptom) now fails fast with a clear message.
``pytest-timeout`` is not available in the environment, so the guard is a
conftest-level ``SIGALRM`` alarm; it is skipped on platforms without the
signal (Windows) and on non-main threads, where alarms cannot be delivered.

Override the default per test with ``@pytest.mark.timeout(seconds)``.
"""

import math
import signal
import threading

import pytest

#: Default per-test budget.  The whole suite runs in seconds; any single test
#: taking this long is a hang, not a slow test.
DEFAULT_TEST_TIMEOUT = 120


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: end-to-end CEGAR runs that take tens of seconds"
    )
    config.addinivalue_line(
        "markers", "timeout(seconds): override the per-test SIGALRM budget"
    )


def _timeout_for(item) -> int:
    marker = item.get_closest_marker("timeout")
    if marker and marker.args:
        value = marker.args[0]
        if value <= 0:
            return 0  # pytest-timeout convention: zero disables the guard
        # signal.alarm only takes whole seconds; round fractional budgets up
        # so a sub-second request still arms the guard instead of disabling it.
        return max(1, math.ceil(value))
    return DEFAULT_TEST_TIMEOUT


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = _timeout_for(item)
    use_alarm = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds}s conftest timeout guard "
            "(likely a solver hang; see tests/conftest.py)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
