"""Tests for store resolution, quantifier handling and the VC checker."""

import pytest

from repro.lang.commands import ArrayAssign, Assign, Assume, Havoc, Skip
from repro.logic.formulas import (
    FALSE,
    TRUE,
    Forall,
    conjoin,
    disjoin,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.logic.terms import Var, const, read, var
from repro.logic.transform import FreshNames
from repro.smt.arrays import Store, ground_reads, resolve_stores
from repro.smt.quant import (
    arrays_under_quantifier,
    instantiate_positive,
    skolemize_negative,
)
from repro.smt.solver import SmtSolver
from repro.smt.ssa import ssa_translate, versioned
from repro.smt.vcgen import VcChecker


def range_forall(index, lower, upper, body):
    """forall index: lower <= index <= upper -> body."""
    k = var(index)
    return Forall(Var(index), disjoin([lt(k, lower), gt(k, upper), body]))


class TestSsa:
    def test_assignment_versions(self):
        translation = ssa_translate([Assign("x", var("x") + const(1)), Assign("x", var("x") + const(1))])
        assert translation.var_versions["x"] == 2
        formulas = [f for _, f in translation.constraints]
        assert eq(var(versioned("x", 1)), var(versioned("x", 0)) + const(1)) in formulas

    def test_assume_uses_current_versions(self):
        translation = ssa_translate([Assign("x", const(0)), Assume(lt(var("x"), var("n")))])
        _, guard = translation.constraints[-1]
        assert Var(versioned("x", 1)) in guard.variables()

    def test_array_store_chain(self):
        translation = ssa_translate(
            [ArrayAssign("a", var("i"), const(0)), ArrayAssign("a", var("j"), const(1))]
        )
        assert translation.array_versions["a"] == 2
        assert versioned("a", 2) in translation.stores
        assert translation.stores[versioned("a", 2)].base == versioned("a", 1)

    def test_havoc_bumps_version_without_constraint(self):
        translation = ssa_translate([Havoc(("x",))])
        assert translation.var_versions["x"] == 1
        assert translation.constraints == []

    def test_skip_is_ignored(self):
        assert ssa_translate([Skip()]).constraints == []


class TestStoreResolution:
    def test_read_of_written_cell(self):
        stores = {"a@1": Store("a@0", var("i"), const(7))}
        formula = eq(read("a@1", var("i")), const(7))
        resolved = resolve_stores(formula, stores)
        solver = SmtSolver()
        # The resolved formula must be valid: either the indices match (value
        # 7) or they do not (but they do, syntactically).
        assert solver.is_sat(resolved)
        assert not solver.is_sat(resolve_stores(eq(read("a@1", var("i")), const(8)), stores))

    def test_read_of_other_cell_falls_through(self):
        stores = {"a@1": Store("a@0", var("i"), const(7))}
        formula = conjoin(
            [ne(var("j"), var("i")), eq(read("a@0", var("j")), 3), ne(read("a@1", var("j")), 3)]
        )
        assert not SmtSolver().is_sat(resolve_stores(formula, stores))

    def test_ground_reads_skips_quantified(self):
        formula = conjoin(
            [eq(read("a", var("i")), 0), Forall(Var("k"), eq(read("a", var("k")), 0))]
        )
        indices = {r.index for r in ground_reads(formula)}
        assert indices == {var("i")}


class TestQuantifiers:
    def test_skolemize_negative(self):
        formula = range_forall("k", const(0), var("n"), eq(read("a", var("k")), 0))
        from repro.logic.formulas import Not

        skolemized = skolemize_negative(Not(formula), FreshNames("sk"))
        assert not skolemized.has_quantifier()

    def test_arrays_under_quantifier(self):
        formula = range_forall("k", const(0), var("n"), eq(read("a", var("k")), read("b", var("k"))))
        assert arrays_under_quantifier(formula) == {"a", "b"}

    def test_instantiation_at_read_terms(self):
        hypothesis = range_forall("k", const(0), var("n"), eq(read("a", var("k")), 0))
        context = conjoin([hypothesis, ne(read("a", var("i")), 0), le(const(0), var("i"))])
        instantiated = instantiate_positive(context)
        assert not instantiated.has_quantifier()
        assert any(r.index == var("i") for r in instantiated.array_reads())

    def test_instantiation_without_reads_is_sound(self):
        hypothesis = range_forall("k", const(0), var("n"), eq(read("a", var("k")), 0))
        instantiated = instantiate_positive(conjoin([hypothesis, le(var("x"), 0)]))
        assert instantiated == le(var("x"), 0)


class TestVcChecker:
    def setup_method(self):
        self.checker = VcChecker()

    # -- numeric triples -------------------------------------------------
    def test_assignment_triple(self):
        assert self.checker.check_triple(
            ge(var("x"), 0), [Assign("y", var("x") + const(1))], ge(var("y"), 1)
        )

    def test_invalid_triple(self):
        assert not self.checker.check_triple(
            ge(var("x"), 0), [Assign("y", var("x") - const(1))], ge(var("y"), 0)
        )

    def test_assume_strengthens(self):
        assert self.checker.check_triple(
            TRUE, [Assume(ge(var("x"), 5)), Assign("y", var("x"))], ge(var("y"), 5)
        )

    def test_havoc_forgets(self):
        assert not self.checker.check_triple(ge(var("x"), 0), [Havoc(("x",))], ge(var("x"), 0))

    def test_entailment(self):
        assert self.checker.check_entailment(eq(var("x"), 3), le(var("x"), 5))
        assert not self.checker.check_entailment(le(var("x"), 5), eq(var("x"), 3))

    def test_false_postcondition_detects_contradiction(self):
        assert self.checker.check_triple(
            eq(var("x"), 1), [Assume(eq(var("x"), 2))], FALSE
        )

    # -- path feasibility --------------------------------------------------
    def test_feasible_path_with_model(self):
        result = self.checker.is_feasible([Assume(ge(var("x"), 3)), Assign("y", var("x") * 2)])
        assert result.feasible
        assert result.model is not None

    def test_integer_infeasibility(self):
        # The FORWARD counterexample: rationally satisfiable, integer-unsat.
        commands = [
            Assume(ge(var("n"), 0)),
            Assign("i", const(0)),
            Assign("a", const(0)),
            Assign("b", const(0)),
            Assume(lt(var("i"), var("n"))),
            Assign("a", var("a") + const(1)),
            Assign("b", var("b") + const(2)),
            Assign("i", var("i") + const(1)),
            Assume(ge(var("i"), var("n"))),
            Assume(ne(var("a") + var("b"), var("n") * 3)),
        ]
        assert not self.checker.is_feasible(commands).feasible

    # -- array and quantified triples --------------------------------------
    def test_array_write_then_read(self):
        assert self.checker.check_triple(
            TRUE,
            [ArrayAssign("a", var("i"), const(0))],
            eq(read("a", var("i")), 0),
        )

    def test_array_write_preserves_other_cells(self):
        assert self.checker.check_triple(
            conjoin([eq(read("a", var("j")), 5), ne(var("i"), var("j"))]),
            [ArrayAssign("a", var("i"), const(0))],
            eq(read("a", var("j")), 5),
        )

    def test_initcheck_consecution(self):
        inv = range_forall("k", const(0), var("i") - const(1), eq(read("a", var("k")), 0))
        body = [
            Assume(lt(var("i"), var("n"))),
            ArrayAssign("a", var("i"), const(0)),
            Assign("i", var("i") + const(1)),
        ]
        assert self.checker.check_triple(inv, body, inv)

    def test_initcheck_safety(self):
        inv = range_forall("k", var("i"), var("n") - const(1), eq(read("a", var("k")), 0))
        err = [Assume(lt(var("i"), var("n"))), Assume(ne(read("a", var("i")), 0))]
        assert self.checker.check_triple(inv, err, FALSE)
        assert not self.checker.check_triple(TRUE, err, FALSE)

    def test_quantified_consequent_across_loop_exit(self):
        pre = range_forall("k", const(0), var("i") - const(1), eq(read("a", var("k")), 0))
        commands = [Assume(ge(var("i"), var("n"))), Assign("i", const(0))]
        post = range_forall("k", const(0), var("n") - const(1), eq(read("a", var("k")), 0))
        assert self.checker.check_triple(pre, commands, post)

    def test_quantified_inequality_body(self):
        pre = range_forall("k", const(0), var("g") - const(1), ge(read("ge", var("k")), 0))
        err = [Assume(lt(var("i"), var("g"))), Assume(ge(var("i"), const(0))), Assume(lt(read("ge", var("i")), 0))]
        assert self.checker.check_triple(pre, err, FALSE)
