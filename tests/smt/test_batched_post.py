"""The batched abstract-post oracle vs the scalar differential baseline.

``VcChecker.post_all_predicates`` prepares one ``(state, transition)`` core
and decides every predicate inside a shared incremental solver context; the
scalar ``post_predicate_holds`` runs the full pipeline per predicate and is
kept as the differential oracle.  The load-bearing property is **verdict
identity**: on any query the two paths must return the same boolean map, and
an engine driven by either must discover the same precision and verdict.

The corpus reuses the engine equivalence programs (scalar shapes, array
shapes, unsafe shapes); a hypothesis property throws randomly assembled
states and predicate families at both oracles.  A regression test pins the
memo-hit fast path: a batch whose answers are all cached must never build or
fetch a solver context.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import VerificationEngine, PortfolioEngine, Budget
from repro.core.predabs import Precision
from repro.lang import get_program, get_source
from repro.logic.formulas import TRUE, conjoin, eq, ge, le, lt, ne
from repro.logic.terms import var
from repro.smt.solver import SolverContext
from repro.smt.vcgen import VcChecker

#: (program, refiner) pairs shared with tests/core/test_engine.py — the
#: equivalence corpus both engine modes must agree on.
EQUIVALENCE_CORPUS = [
    ("forward", "path-invariant"),
    ("forward", "path-formula"),
    ("initcheck", "path-invariant"),
    ("double_counter", "path-invariant"),
    ("double_counter", "path-formula"),
    ("up_down", "path-formula"),
    ("lock_step", "path-invariant"),
    ("lock_step", "path-formula"),
    ("simple_safe", "path-invariant"),
    ("simple_unsafe", "path-invariant"),
    ("simple_unsafe", "path-formula"),
    ("diamond_safe", "path-invariant"),
    ("forward_buggy", "path-invariant"),
    ("array_init_buggy", "path-invariant"),
    ("array_init_const", "path-invariant"),
    ("array_copy", "path-invariant"),
]


def run_engine(name, refiner, batched, incremental=True, max_refinements=4):
    from repro.core.verifier import make_refiner

    checker = VcChecker(batched_posts=batched)
    engine = VerificationEngine(
        get_program(name),
        refiner=make_refiner(refiner, checker),
        checker=checker,
        budget=Budget(max_refinements=max_refinements),
        incremental=incremental,
    )
    return engine.run(), checker


class TestEngineEquivalence:
    @pytest.mark.parametrize("name,refiner", EQUIVALENCE_CORPUS)
    @pytest.mark.parametrize("incremental", [True, False], ids=["incremental", "restart"])
    def test_batched_matches_scalar(self, name, refiner, incremental):
        """Same verdict, same precision, same post-decision count — both modes."""
        batched, batched_checker = run_engine(name, refiner, True, incremental)
        scalar, scalar_checker = run_engine(name, refiner, False, incremental)
        assert batched.verdict == scalar.verdict
        assert batched.precision.snapshot() == scalar.precision.snapshot()
        assert batched.post_decisions() == scalar.post_decisions()
        # The scalar baseline must never have touched a context, and the
        # batched run must have done the same Hoare-triple budget accounting.
        assert scalar_checker.statistics()["prepare_calls"] == 0
        assert (
            batched_checker.statistics()["triple_checks"]
            == scalar_checker.statistics()["triple_checks"]
        )

    def test_portfolio_batched_matches_scalar(self):
        results = {}
        for batched in (True, False):
            checker = VcChecker(batched_posts=batched)
            portfolio = PortfolioEngine(
                get_source("forward"),
                mode="round-robin",
                budget=Budget(max_refinements=8),
                checker=checker,
            )
            results[batched] = portfolio.run()
        assert results[True].verdict == results[False].verdict == "safe"
        assert results[True].winner == results[False].winner
        assert (
            results[True].precision.snapshot() == results[False].precision.snapshot()
        )


def _collect_queries(name, max_refinements=3):
    """Real (state, transition, predicates) batches from an engine run."""
    queries = []
    checker = VcChecker()
    original = checker.post_all_predicates

    def recording(state, transition, predicates):
        predicates = list(predicates)
        queries.append((state, transition, tuple(predicates)))
        return original(state, transition, predicates)

    checker.post_all_predicates = recording
    VerificationEngine(
        get_program(name), checker=checker, budget=Budget(max_refinements=max_refinements)
    ).run()
    return queries


class TestOracleDifferential:
    @pytest.mark.parametrize("name", ["forward", "lock_step", "array_init_buggy"])
    def test_recorded_queries_agree(self, name):
        """Replay an engine run's real batches against both fresh oracles."""
        queries = _collect_queries(name)
        assert queries, "the engine should have asked at least one batch"
        batched = VcChecker(batched_posts=True)
        scalar = VcChecker(batched_posts=False)
        for state, transition, predicates in queries:
            expected = {
                p: scalar.post_predicate_holds(state, transition, p)
                for p in predicates
            }
            assert batched.post_all_predicates(state, transition, predicates) == expected

    def test_edge_feasibility_agrees(self):
        queries = _collect_queries("forward")
        batched = VcChecker(batched_posts=True)
        scalar = VcChecker(batched_posts=False)
        for state, transition, _ in queries:
            assert batched.edge_feasible(state, transition) == scalar.edge_feasible(
                state, transition
            )


#: A pool of small predicates over the FORWARD program's variables, from
#: which hypothesis assembles abstract states and predicate families.
def _predicate_pool():
    a, b, i, n = (var(name) for name in "abin")
    return [
        eq(a + b, 3 * i),
        le(i, n),
        lt(i, n),
        ge(i, 0),
        eq(a, 2 * i),
        eq(b, i),
        ne(a, b),
        le(a + b, 3 * n),
        eq(i, 0),
        TRUE,
    ]


@settings(max_examples=25, deadline=None)
@given(
    state_picks=st.lists(st.integers(min_value=0, max_value=8), max_size=4),
    predicate_picks=st.lists(
        st.integers(min_value=0, max_value=9), min_size=1, max_size=6
    ),
    transition_index=st.integers(min_value=0, max_value=7),
)
def test_random_batches_agree(state_picks, predicate_picks, transition_index):
    """Random states x random predicate families: identical verdict maps."""
    pool = _predicate_pool()
    transitions = sorted(get_program("forward").transitions, key=str)
    transition = transitions[transition_index % len(transitions)]
    state = frozenset(pool[i] for i in state_picks)
    predicates = [pool[i] for i in predicate_picks]
    batched = VcChecker(batched_posts=True)
    scalar = VcChecker(batched_posts=False)
    expected = {
        p: scalar.post_predicate_holds(state, transition, p) for p in predicates
    }
    assert batched.post_all_predicates(state, transition, predicates) == expected


class TestMemoFastPath:
    def test_full_memo_hit_builds_no_context(self):
        """A batch answered entirely from the post cache touches no solver."""
        checker = VcChecker()
        queries = _collect_queries("lock_step")
        state, transition, predicates = next(q for q in queries if q[2])
        first = checker.post_all_predicates(state, transition, predicates)
        prepared_before = checker.num_prepare_calls
        reuses_before = checker.num_context_reuses

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("memo-hit batch built a solver context")

        checker._prepare_edge = forbidden
        again = checker.post_all_predicates(state, transition, predicates)
        assert again == first
        assert checker.num_prepare_calls == prepared_before
        assert checker.num_context_reuses == reuses_before
        assert checker.post_cache_hits >= len(predicates)

    def test_repeated_batch_reuses_the_context(self):
        """A second batch on the same edge with new predicates reuses the core."""
        pool = _predicate_pool()
        transition = sorted(get_program("forward").transitions, key=str)[0]
        checker = VcChecker()
        checker.post_all_predicates(frozenset(), transition, pool[:3])
        assert checker.num_prepare_calls == 1
        checker.post_all_predicates(frozenset(), transition, pool[3:6])
        assert checker.num_prepare_calls == 1
        assert checker.num_context_reuses == 1


class TestSolverContext:
    def test_context_agrees_with_check_sat(self):
        x, y = var("x"), var("y")
        from repro.smt.solver import SmtSolver

        solver = SmtSolver()
        context = solver.context()
        assert context.assert_base(conjoin([le(x, y), le(y, 10)]))
        cases = [le(x, 10), ge(x, 11), eq(x, y), conjoin([ge(x, 5), le(y, 4)])]
        for assumption in cases:
            expected = solver.check_sat(
                conjoin([le(x, y), le(y, 10), assumption])
            ).satisfiable
            assert context.check(assumption).satisfiable == expected
        # The context survives its own UNSAT answers (push/pop scoping).
        assert context.check(le(x, 10)).satisfiable

    def test_unsat_base_short_circuits(self):
        x = var("x")
        from repro.smt.solver import SmtSolver

        solver = SmtSolver()
        context = solver.context()
        assert not context.assert_base(conjoin([le(x, 0), ge(x, 1)]))
        assert context.base_failed
        assert not context.check(TRUE).satisfiable

    def test_disequality_base_splits_lazily(self):
        x = var("x")
        from repro.smt.solver import SmtSolver

        solver = SmtSolver()
        context = solver.context()
        assert context.assert_base(conjoin([ne(x, 0), ge(x, 0)]))
        assert context.check(le(x, 5)).satisfiable
        assert not context.check(le(x, 0)).satisfiable
