"""Regression tests: the lazy case-splitting solver vs the eager-DNF oracle.

The lazy engine (:meth:`SmtSolver.check_sat`) must agree with the retained
eager-DNF reference (:meth:`SmtSolver.check_sat_eager`) on satisfiability
verdicts, and satisfiable verdicts must come with genuine models.  The corpus
mixes the shapes the verification pipeline produces: deep conjunctions,
disequality splits, read-over-write style case splits, and implication
chains from quantifier instantiation.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.formulas import (
    Atom,
    Relation,
    conjoin,
    disjoin,
    eq,
    ge,
    implies_formula,
    le,
    lt,
    ne,
    negate,
)
from repro.logic.terms import Var, const, read, var
from repro.logic.transform import dnf_cubes
from repro.smt.solver import SmtSolver


def _corpus():
    x, y, z, n, i, j = (var(name) for name in "xyznij")
    formulas = [
        # deep conjunction chain (x <= y <= ... <= x + bound)
        conjoin([le(x, y), le(y, z), le(z, n), le(n, x + 2), ge(z, x)]),
        conjoin([le(x, y), le(y, z), le(z, x - 1)]),  # unsat cycle
        # disequality splits
        ne(x, 0),
        conjoin([ne(x, 0), eq(x, 0)]),
        conjoin([ne(x, y), le(x, y), ge(x, y)]),
        conjoin([ne(x, 3), le(x, 3), ge(x, 3)]),
        disjoin([ne(x, 1), ne(x, 2)]),
        # read-over-write shaped case splits
        disjoin(
            [
                conjoin([eq(i, j), eq(read("a", i), 5), ne(read("a", j), 5)]),
                conjoin([ne(i, j), eq(read("a", i), read("a", j))]),
            ]
        ),
        conjoin([eq(i, j), eq(read("a", i), 1), eq(read("a", j), 2)]),  # unsat
        conjoin([ne(i, j), eq(read("a", i), 1), eq(read("a", j), 2)]),
        # implication chains as produced by quantifier instantiation
        conjoin(
            [
                implies_formula(conjoin([le(const(0), i), le(i, n)]), eq(read("a", i), 0)),
                le(const(0), i),
                le(i, n),
                ne(read("a", i), 0),
            ]
        ),
        conjoin(
            [
                implies_formula(le(const(0), i), eq(read("a", i), 0)),
                lt(i, const(0)),
                ne(read("a", i), 0),
            ]
        ),
        # disjunction-heavy but shallow
        conjoin([disjoin([eq(x, k) for k in range(4)]), ge(x, 2), le(x, 2)]),
        conjoin([disjoin([le(x, 0), ge(x, 10)]), ge(x, 1), le(x, 9)]),  # unsat
        # mixed negations
        negate(conjoin([le(x, 5), ge(x, 0)])),
        negate(disjoin([le(x, 5), ge(y, 0)])),
    ]
    return formulas


@pytest.mark.parametrize("integer_mode", [True, False])
@pytest.mark.parametrize("formula", _corpus(), ids=lambda f: str(f)[:60])
def test_lazy_agrees_with_eager_on_corpus(formula, integer_mode):
    lazy = SmtSolver(integer_mode=integer_mode).check_sat(formula)
    eager = SmtSolver(integer_mode=integer_mode).check_sat_eager(formula)
    if lazy.approximate or eager.approximate:
        pytest.skip("approximate answers need not agree")
    assert lazy.satisfiable == eager.satisfiable
    if lazy.satisfiable and not formula.array_reads():
        model = dict(lazy.model)
        for variable in formula.variables():
            model.setdefault(variable, Fraction(0))
        assert formula.evaluate(model)
        if integer_mode:
            assert all(value.denominator == 1 for value in model.values())


def test_lazy_survives_dnf_blowup():
    """The eager limit guard trips where the lazy engine answers easily."""
    # 2^18 cubes: far past the default 200k limit.
    parts = [disjoin([le(var(f"x{k}"), 0), ge(var(f"x{k}"), 1)]) for k in range(18)]
    formula = conjoin(parts)
    with pytest.raises(ValueError, match="cubes"):
        dnf_cubes(formula)
    solver = SmtSolver()
    with pytest.raises(ValueError, match="cubes"):
        solver.check_sat_eager(formula)
    assert solver.check_sat(formula).satisfiable

    # An unsatisfiable variant: the blow-up is boolean, the conflict linear.
    contradiction = conjoin(parts + [ge(var("x0"), 5), le(var("x0"), -5)])
    assert not SmtSolver().check_sat(contradiction).satisfiable


def test_eager_limit_guard_is_configurable():
    parts = [disjoin([le(var(f"y{k}"), 0), ge(var(f"y{k}"), 1)]) for k in range(4)]
    formula = conjoin(parts)
    solver = SmtSolver()
    with pytest.raises(ValueError, match="limit"):
        solver.check_sat_eager(formula, limit=8)
    assert solver.check_sat_eager(formula, limit=16).satisfiable


def test_pruned_branches_leave_no_fractional_leftovers():
    """Stale values of popped branches must not poison the integer model.

    The first disjunct forces half-integer pivot values before it is pruned;
    the surviving disjunct is trivially integer-satisfiable, so the verdict
    must be exact (not approximate) and the model free of fractions.
    """
    parts = []
    for k in range(10):
        x, y = var(f"px{k}"), var(f"py{k}")
        parts.append(conjoin([eq(2 * x - 2 * y, 1), ge(x + y, 1), le(x, 0), le(y, 0)]))
    formula = disjoin([conjoin(parts), eq(var("pw"), 1)])
    result = SmtSolver().check_sat(formula)
    assert result.satisfiable
    assert not result.approximate
    assert all(value.denominator == 1 for value in result.model.values())
    assert result.model[Var("pw")] == 1


def test_query_cache_serves_repeats():
    solver = SmtSolver()
    formula = conjoin([le(var("x"), 3), ge(var("x"), 1), ne(var("x"), 2)])
    first = solver.check_sat(formula)
    hits_before = solver.stats.cache_hits
    second = solver.check_sat(formula)
    assert solver.stats.cache_hits == hits_before + 1
    assert first.satisfiable == second.satisfiable
    # Cached models are handed out as copies: mutating one answer must not
    # corrupt the next.
    second.model[Var("x")] = Fraction(999)
    third = solver.check_sat(formula)
    assert third.model == first.model


# ----------------------------------------------------------------------
# Property: lazy and eager agree on random quantifier-free formulas.
# ----------------------------------------------------------------------
@st.composite
def qf_formulas(draw):
    def atom():
        expr = const(draw(st.integers(-3, 3)))
        for name in ["x", "y"]:
            expr = expr + var(name) * draw(st.integers(-2, 2))
        if draw(st.booleans()):
            expr = expr + read("a", var("x")) * draw(st.integers(0, 1))
        rel = draw(st.sampled_from([Relation.LE, Relation.EQ, Relation.LT, Relation.NE]))
        return Atom(expr, rel)

    def formula(depth):
        if depth == 0:
            return atom()
        parts = [formula(depth - 1) for _ in range(draw(st.integers(2, 3)))]
        return conjoin(parts) if draw(st.booleans()) else disjoin(parts)

    return formula(draw(st.integers(0, 2)))


@given(qf_formulas())
@settings(max_examples=60, deadline=None)
def test_lazy_agrees_with_eager_on_random_formulas(formula):
    lazy = SmtSolver().check_sat(formula)
    eager = SmtSolver().check_sat_eager(formula)
    if not (lazy.approximate or eager.approximate):
        assert lazy.satisfiable == eager.satisfiable
