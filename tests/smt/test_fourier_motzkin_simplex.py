"""Tests for the linear-arithmetic engines (Fourier–Motzkin and simplex)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.formulas import Relation
from repro.logic.terms import LinExpr, Var, const, var
from repro.smt.fourier_motzkin import eliminate_variable, project, satisfiable
from repro.smt.linear import LinConstraint, normalize_constraint, tighten_integer
from repro.smt.simplex import LPStatus, feasible, solve_lp


def c_le(expr):
    return LinConstraint(expr, Relation.LE)


def c_lt(expr):
    return LinConstraint(expr, Relation.LT)


def c_eq(expr):
    return LinConstraint(expr, Relation.EQ)


class TestLinConstraint:
    def test_normalisation_scales_to_coprime_integers(self):
        constraint = normalize_constraint(c_le(var("x") * Fraction(2, 4) + const(1)))
        assert constraint.expr == var("x") + const(2)

    def test_integer_tightening_of_strict(self):
        tightened = tighten_integer(c_lt(var("x") - var("n")))
        assert tightened.rel is Relation.LE
        assert tightened.expr == var("x") - var("n") + const(1)

    def test_integer_tightening_of_fractional_constant(self):
        tightened = tighten_integer(c_le(var("x") - const(Fraction(5, 2))))
        assert tightened.expr == var("x") - const(2)

    def test_rejects_array_reads(self):
        from repro.logic.terms import read

        with pytest.raises(ValueError):
            LinConstraint(read("a", "i"), Relation.LE)

    def test_rejects_disequality(self):
        with pytest.raises(ValueError):
            LinConstraint(var("x"), Relation.NE)


class TestFourierMotzkin:
    def test_satisfiable_system_returns_model(self):
        model = satisfiable([c_le(var("x") - 5), c_le(const(3) - var("x"))])
        assert model is not None
        assert 3 <= model[Var("x")] <= 5

    def test_unsatisfiable_bounds(self):
        assert satisfiable([c_le(var("x") - 1), c_le(const(2) - var("x"))]) is None

    def test_strict_inequality_contradiction(self):
        # x < 0 and x > 0
        assert satisfiable([c_lt(var("x")), c_lt(-var("x"))]) is None

    def test_strict_inequalities_satisfiable(self):
        model = satisfiable([c_lt(var("x") - 1), c_lt(-var("x"))])
        assert model is not None
        assert 0 < model[Var("x")] < 1

    def test_equality_substitution(self):
        model = satisfiable([c_eq(var("x") - var("y") - 1), c_le(var("y") - 3), c_le(const(3) - var("y"))])
        assert model is not None
        assert model[Var("x")] == model[Var("y")] + 1 == 4

    def test_model_satisfies_all_constraints(self):
        constraints = [
            c_le(var("x") + var("y") - 10),
            c_le(const(2) - var("x")),
            c_eq(var("y") - var("x") - 1),
        ]
        model = satisfiable(constraints)
        assert model is not None
        for constraint in constraints:
            value = sum(
                coeff * model.get(v, Fraction(0)) for v, coeff in constraint.expr.terms
            ) + constraint.expr.const
            assert value <= 0 if constraint.rel is Relation.LE else value == 0

    def test_projection_derives_transitive_bound(self):
        # x <= y and y <= 5 projected onto {x} gives x <= 5.
        projected = project([c_le(var("x") - var("y")), c_le(var("y") - 5)], [Var("y")])
        assert projected is not None
        assert any(c.expr == var("x") - const(5) for c in projected)

    def test_projection_of_unsat_system(self):
        assert project([c_le(var("x") - 1), c_le(const(2) - var("x"))], [Var("x")]) is None

    def test_eliminate_variable_via_equality(self):
        reduced, step = eliminate_variable([c_eq(var("x") - var("y")), c_le(var("x") - 3)], Var("x"))
        assert step.definition is not None
        assert any(c.expr == var("y") - const(3) for c in reduced)


class TestSimplex:
    def test_feasible_system(self):
        model = feasible([c_le(var("x") - 5), c_le(const(3) - var("x"))])
        assert model is not None
        assert 3 <= model[Var("x")] <= 5

    def test_infeasible_system(self):
        assert feasible([c_le(var("x") - 1), c_le(const(2) - var("x"))]) is None

    def test_negative_values_allowed(self):
        model = feasible([c_le(var("x") + 5), c_le(const(-10) - var("x"))])
        assert model is not None
        assert model[Var("x")] <= -5

    def test_equalities(self):
        model = feasible([c_eq(var("x") + var("y") - 4), c_eq(var("x") - var("y"))])
        assert model is not None
        assert model[Var("x")] == model[Var("y")] == 2

    def test_optimisation(self):
        result = solve_lp(
            [c_le(var("x") - 10), c_le(-var("x"))], objective=var("x"), maximize=True
        )
        assert result.status == LPStatus.OPTIMAL
        assert result.objective == 10

    def test_minimisation(self):
        result = solve_lp(
            [c_le(var("x") - 10), c_le(const(2) - var("x"))], objective=var("x"), maximize=False
        )
        assert result.objective == 2

    def test_unbounded(self):
        result = solve_lp([c_le(-var("x"))], objective=var("x"), maximize=True)
        assert result.status == LPStatus.UNBOUNDED

    def test_rejects_strict(self):
        with pytest.raises(ValueError):
            solve_lp([c_lt(var("x"))])


# ----------------------------------------------------------------------
# Property: Fourier–Motzkin and simplex agree on feasibility.
# ----------------------------------------------------------------------
var_names = st.sampled_from(["x", "y", "z"])


@st.composite
def random_constraints(draw):
    constraints = []
    for _ in range(draw(st.integers(1, 6))):
        expr = const(draw(st.integers(-6, 6)))
        for name in ["x", "y", "z"]:
            expr = expr + var(name) * draw(st.integers(-3, 3))
        rel = draw(st.sampled_from([Relation.LE, Relation.EQ]))
        constraints.append(LinConstraint(expr, rel))
    return constraints


@given(random_constraints())
@settings(max_examples=60, deadline=None)
def test_fm_and_simplex_agree(constraints):
    fm_model = satisfiable(constraints)
    simplex_model = feasible(constraints)
    assert (fm_model is None) == (simplex_model is None)


@given(random_constraints())
@settings(max_examples=60, deadline=None)
def test_fm_model_is_a_real_witness(constraints):
    model = satisfiable(constraints)
    if model is None:
        return
    for constraint in constraints:
        value = sum(
            coeff * model.get(v, Fraction(0)) for v, coeff in constraint.expr.terms
        ) + constraint.expr.const
        if constraint.rel is Relation.LE:
            assert value <= 0
        elif constraint.rel is Relation.LT:
            assert value < 0
        else:
            assert value == 0
