"""Tests for the LRA conjunction solver and the quantifier-free SMT solver."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.formulas import Relation, conjoin, disjoin, eq, ge, gt, le, lt, ne
from repro.logic.terms import Var, const, read, var
from repro.smt.lra import LraSolver
from repro.smt.solver import SmtSolver


class TestLraSolver:
    def test_simple_sat(self):
        result = LraSolver().check([le(var("x"), 5), ge(var("x"), 3)])
        assert result.satisfiable

    def test_simple_unsat(self):
        result = LraSolver().check([le(var("x"), 1), ge(var("x"), 2)])
        assert not result.satisfiable

    def test_integer_mode_strict_chain(self):
        # 0 < n and n < 1 has rational solutions but no integer ones.
        solver = LraSolver(integer_mode=True)
        assert not solver.check([lt(const(0), var("n")), lt(var("n"), const(1))]).satisfiable

    def test_rational_mode_strict_chain(self):
        solver = LraSolver(integer_mode=False)
        assert solver.check([lt(const(0), var("n")), lt(var("n"), const(1))]).satisfiable

    def test_branch_and_bound_fractional_equality(self):
        # 2x = 1 has no integer solution.
        solver = LraSolver(integer_mode=True)
        assert not solver.check([eq(var("x") * 2, const(1))]).satisfiable

    def test_entails(self):
        solver = LraSolver()
        assert solver.entails([le(var("x"), 3)], le(var("x"), 5))
        assert not solver.entails([le(var("x"), 5)], le(var("x"), 3))

    def test_entails_equality(self):
        solver = LraSolver()
        assert solver.entails([le(var("x"), 3), ge(var("x"), 3)], eq(var("x"), 3))

    def test_integer_entailment_strict_to_nonstrict(self):
        # Over integers, i < n entails i <= n - 1.
        solver = LraSolver(integer_mode=True)
        assert solver.entails([lt(var("i"), var("n"))], le(var("i"), var("n") - const(1)))

    def test_rejects_disequalities(self):
        with pytest.raises(ValueError):
            LraSolver().check([ne(var("x"), 1)])


class TestSmtSolver:
    def test_disjunction(self):
        solver = SmtSolver()
        formula = disjoin([le(var("x"), 0), ge(var("x"), 10)])
        assert solver.is_sat(formula)

    def test_disequality_split(self):
        solver = SmtSolver()
        assert solver.is_sat(ne(var("x"), 0))
        assert not solver.is_sat(conjoin([ne(var("x"), 0), eq(var("x"), 0)]))

    def test_model_extraction(self):
        solver = SmtSolver()
        model = solver.get_model(conjoin([ge(var("x"), 4), le(var("x"), 4)]))
        assert model is not None
        assert model[Var("x")] == 4

    def test_entails(self):
        solver = SmtSolver()
        assert solver.entails(conjoin([le(var("x"), 3), le(var("y"), var("x"))]), le(var("y"), 3))

    def test_equivalence(self):
        solver = SmtSolver()
        assert solver.equivalent(le(var("x") * 2, 4), le(var("x"), 2))

    def test_rejects_quantifiers(self):
        from repro.logic.formulas import Forall

        solver = SmtSolver()
        with pytest.raises(ValueError):
            solver.is_sat(Forall(Var("k"), eq(read("a", var("k")), 0)))

    # -- array reads as uninterpreted functions --------------------------
    def test_functionality_enforced(self):
        solver = SmtSolver()
        # i = j but a[i] != a[j] is unsatisfiable.
        formula = conjoin([eq(var("i"), var("j")), ne(read("a", var("i")), read("a", var("j")))])
        assert not solver.is_sat(formula)

    def test_different_indices_may_differ(self):
        solver = SmtSolver()
        formula = conjoin([ne(var("i"), var("j")), ne(read("a", var("i")), read("a", var("j")))])
        assert solver.is_sat(formula)

    def test_reads_of_different_arrays_are_independent(self):
        solver = SmtSolver()
        formula = conjoin([eq(var("i"), var("j")), ne(read("a", var("i")), read("b", var("j")))])
        assert solver.is_sat(formula)

    def test_read_chain_entailment(self):
        solver = SmtSolver()
        antecedent = conjoin([eq(read("a", var("i")), 0), eq(var("j"), var("i"))])
        assert solver.entails(antecedent, eq(read("a", var("j")), 0))

    def test_statistics_counters(self):
        solver = SmtSolver()
        solver.is_sat(le(var("x"), 1))
        solver.entails(le(var("x"), 1), le(var("x"), 2))
        assert solver.num_sat_queries >= 2
        assert solver.num_entailment_queries == 1


# ----------------------------------------------------------------------
# Property: the QF solver agrees with brute-force evaluation over a grid.
# ----------------------------------------------------------------------
@st.composite
def qf_formulas(draw):
    def atom():
        expr = const(draw(st.integers(-3, 3)))
        for name in ["x", "y"]:
            expr = expr + var(name) * draw(st.integers(-2, 2))
        rel = draw(st.sampled_from([Relation.LE, Relation.EQ, Relation.LT, Relation.NE]))
        from repro.logic.formulas import Atom

        return Atom(expr, rel)

    parts = [atom() for _ in range(draw(st.integers(1, 3)))]
    if draw(st.booleans()):
        return conjoin(parts)
    return disjoin(parts)


@given(qf_formulas())
@settings(max_examples=50, deadline=None)
def test_solver_agrees_with_grid_search(formula):
    solver = SmtSolver(integer_mode=True)
    reported = solver.is_sat(formula)
    grid_sat = any(
        formula.evaluate({Var("x"): Fraction(x), Var("y"): Fraction(y)})
        for x in range(-6, 7)
        for y in range(-6, 7)
    )
    # The grid only covers [-6, 6]^2, so it can miss models the solver finds,
    # but it can never find a model the solver misses.
    if grid_sat:
        assert reported
