"""Tests for the mini-C front end: lexer, parser, type checker, CFG builder."""

import pytest

from repro.lang import (
    CfgBuildError,
    ParseError,
    TypeCheckError,
    check_function,
    get_program,
    list_programs,
    parse_expression,
    parse_function,
    program_from_source,
    safe_programs,
    tokenize,
    unsafe_programs,
)
from repro.lang.ast import ArrayAssignStmt, AssertStmt, ForStmt, IfStmt, WhileStmt
from repro.lang.commands import ArrayAssign, Assign, Assume, Havoc
from repro.lang.cfg import condition_to_formula, expr_to_linexpr
from repro.lang.lexer import LexError
from repro.lang.pretty import format_program, program_to_dot
from repro.lang.programs import FORWARD, INITCHECK, PARTITION
from repro.logic.formulas import Relation, TRUE
from repro.logic.terms import Var


class TestLexer:
    def test_tokenize_keywords_and_symbols(self):
        tokens = tokenize("while (i < n) { i = i + 1; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert kinds[-1] == "eof"
        assert any(t.text == "<" for t in tokens)

    def test_comments_are_skipped(self):
        tokens = tokenize("// comment\nx /* multi\nline */ = 1;")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts == ["x", "=", "1", ";"]

    def test_two_character_operators(self):
        texts = [t.text for t in tokenize("a == b != c <= d >= e && f || g ++")]
        assert "==" in texts and "!=" in texts and "&&" in texts and "++" in texts

    def test_positions_are_tracked(self):
        tokens = tokenize("x\ny")
        assert tokens[1].position.line == 2

    def test_rejects_unknown_characters(self):
        with pytest.raises(LexError):
            tokenize("x = $;")


class TestParser:
    def test_parse_forward(self):
        function = parse_function(FORWARD)
        assert function.name == "forward"
        assert function.scalar_params() == ("n",)
        kinds = [type(s).__name__ for s in function.body]
        assert "WhileStmt" in kinds and "AssertStmt" in kinds

    def test_parse_initcheck(self):
        function = parse_function(INITCHECK)
        assert function.array_params() == ("a",)
        loops = [s for s in function.body if isinstance(s, ForStmt)]
        assert len(loops) == 2
        assert isinstance(loops[0].body.statements[0], ArrayAssignStmt)

    def test_parse_partition(self):
        function = parse_function(PARTITION)
        loops = [s for s in function.body if isinstance(s, ForStmt)]
        assert len(loops) == 3
        assert isinstance(loops[0].body.statements[0], IfStmt)

    def test_parse_expression(self):
        expr = parse_expression("a + 2 * (b - 1)")
        linear = expr_to_linexpr(expr)
        assert linear.coeff(Var("b")) == 2
        assert linear.const == -2

    def test_increment_sugar(self):
        function = parse_function("void f(int x) { x++; x += 3; x--; }")
        assert len(function.body) == 3

    def test_parenthesised_condition(self):
        function = parse_function(
            "void f(int x, int y) { if ((x + y) >= 0 && x <= 3) { y = 0; } }"
        )
        assert isinstance(function.body.statements[0], IfStmt)

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError):
            parse_function("void f(int x) { x = ; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_function("void f(int x) { x = 1 }")


class TestTypeCheck:
    def test_undeclared_variable(self):
        with pytest.raises(TypeCheckError):
            check_function(parse_function("void f(int x) { y = 1; }"))

    def test_scalar_used_as_array(self):
        with pytest.raises(TypeCheckError):
            check_function(parse_function("void f(int x) { x[0] = 1; }"))

    def test_array_used_as_scalar(self):
        with pytest.raises(TypeCheckError):
            check_function(parse_function("void f(int a[]) { a = 1; }"))

    def test_nonlinear_multiplication_rejected(self):
        with pytest.raises(TypeCheckError):
            check_function(parse_function("void f(int x, int y) { x = x * y; }"))

    def test_valid_program_collects_symbols(self):
        table = check_function(parse_function(INITCHECK))
        assert table.scalars == {"i", "n"}
        assert table.arrays == {"a"}


class TestConditionTranslation:
    def test_comparison_operators(self):
        source = {"x == y": Relation.EQ, "x != y": Relation.NE, "x < y": Relation.LT, "x <= y": Relation.LE}
        for text, expected in source.items():
            function = parse_function(f"void f(int x, int y) {{ assume({text}); }}")
            condition = function.body.statements[0].condition
            atom = condition_to_formula(condition)
            assert atom.rel is expected

    def test_nondet_condition_is_true(self):
        function = parse_function("void f(int x) { if (*) { x = 1; } else { x = 2; } }")
        condition = function.body.statements[0].condition
        assert condition_to_formula(condition) == TRUE


class TestCfg:
    def test_forward_structure(self):
        program = get_program("forward")
        assert program.initial.name == "L0"
        assert program.error.name == "ERR"
        assert len(program.loop_heads()) == 1
        stats = program.stats()
        assert stats["transitions"] == 8

    def test_initcheck_structure(self):
        program = get_program("initcheck")
        assert len(program.loop_heads()) == 2
        # one edge into the error location (the failed assertion)
        assert len(program.incoming(program.error)) == 1

    def test_assert_creates_error_edge(self):
        program = program_from_source("void f(int x) { assert(x >= 0); }")
        error_edges = program.incoming(program.error)
        assert len(error_edges) == 1
        guard = error_edges[0].commands[0]
        assert isinstance(guard, Assume)

    def test_nondet_assignment_becomes_havoc(self):
        program = program_from_source("void f(int x) { x = nondet(); assert(x == x); }")
        commands = [c for t in program.transitions for c in t.commands]
        assert any(isinstance(c, Havoc) for c in commands)

    def test_compaction_reduces_locations(self):
        fine = program_from_source(FORWARD, do_compact=False)
        coarse = program_from_source(FORWARD, do_compact=True)
        assert len(coarse.locations) < len(fine.locations)
        assert len(coarse.loop_heads()) == len(fine.loop_heads()) == 1

    def test_reachable_locations(self):
        program = get_program("forward")
        assert program.error in program.reachable_locations()

    def test_array_write_command(self):
        program = get_program("initcheck")
        commands = [c for t in program.transitions for c in t.commands]
        assert any(isinstance(c, ArrayAssign) for c in commands)

    def test_pretty_and_dot_output(self):
        program = get_program("forward")
        text = format_program(program)
        assert "program forward" in text and "ERR" in text
        dot = program_to_dot(program)
        assert dot.startswith("digraph") and '"ERR"' in dot


class TestProgramRegistry:
    def test_all_programs_build(self):
        for name in list_programs():
            program = get_program(name)
            assert program.transitions, name

    def test_safe_unsafe_partition(self):
        assert set(safe_programs()) | set(unsafe_programs()) == set(list_programs())
        assert "forward" in safe_programs()
        assert "initcheck_buggy" in unsafe_programs()

    def test_expected_count(self):
        assert len(list_programs()) >= 15
