"""The process-backed worker pool: crash isolation, kill-worker recovery,
and journal-driven restart recovery (ISSUE 10 tentpole parts 1 and 2)."""

import threading
import time

import pytest

from repro.core.faults import FAULT_KINDS, FAULT_SITES, FaultPlan, FaultSpec, installed
from repro.serve import (
    RequestJournal,
    ServiceClient,
    ServiceConfig,
    VerificationService,
)


def process_service(**overrides):
    config = ServiceConfig(workers=2, worker_backend="process", **overrides)
    return VerificationService(config).start()


def test_kill_worker_fault_registered():
    assert "kill-worker" in FAULT_KINDS
    assert "kill-worker" in FAULT_SITES["task"]
    assert FaultSpec(kind="kill-worker").site == "task"


def test_worker_backend_validation():
    with pytest.raises(ValueError):
        ServiceConfig(worker_backend="fibers")
    with pytest.raises(ValueError):
        ServiceConfig(recover=True)  # recover needs a journal


class TestProcessBackendParity:
    def test_verdicts_match_the_thread_backend(self):
        service = process_service()
        try:
            with ServiceClient(port=service.port, timeout=180.0) as client:
                docs = client.submit_many(
                    ["simple_safe", "simple_unsafe", "forward"],
                    options={"max_refinements": 8},
                )
            assert [d["verdict"] for d in docs] == ["safe", "unsafe", "safe"]
            stats = service.statistics()["service"]
            assert stats["worker_backend"] == "process"
            assert stats["engine_runs"] == 3
        finally:
            service.stop()

    def test_health_exposes_backend_and_pool_state(self):
        service = process_service()
        try:
            with ServiceClient(port=service.port) as client:
                health = client.health()
            assert health["worker_backend"] == "process"
            assert health["journal_lag"] is None  # no journal configured
        finally:
            service.stop()

    def test_warmth_flows_between_worker_processes(self):
        service = process_service()
        try:
            with ServiceClient(port=service.port, timeout=180.0) as client:
                cold = client.verify("forward", options={"max_refinements": 8})
                warm = client.verify("forward", options={"max_refinements": 8})
            assert cold["verdict"] == warm["verdict"] == "safe"
            assert not cold["engine"]["session"]["warm_started"]
            assert warm["engine"]["session"]["warm_started"]
        finally:
            service.stop()


class TestKillWorkerMidRequest:
    """ISSUE 10 acceptance: kill -9 of a process-backend worker mid-request.

    The ``kill-worker`` fault is a *real* ``SIGKILL`` of the pool worker
    process (``os.kill(os.getpid(), SIGKILL)`` inside the worker) —
    uncatchable, no exit handlers — not a simulated exception.
    """

    def test_killed_worker_becomes_a_retried_verdict(self):
        plan = FaultPlan(
            [FaultSpec(kind="kill-worker", key="simple_safe", attempts=(0,))]
        )
        with installed(plan):
            service = process_service()
            try:
                with ServiceClient(port=service.port, timeout=180.0) as client:
                    doc = client.verify("simple_safe")
                assert doc["verdict"] == "safe"
                assert doc["attempts"] == 2
                assert doc["failures"][0]["kind"] == "crash"
                totals = service.statistics()["service"]["supervision"]
                assert totals["crashes"] == 1
                assert totals["tasks_recovered"] == 1
            finally:
                service.stop()

    def test_unrecoverable_kill_is_a_structured_failure_doc(self):
        plan = FaultPlan(
            [FaultSpec(kind="kill-worker", key="simple_safe", attempts=())]
        )
        with installed(plan):
            service = process_service()
            try:
                with ServiceClient(port=service.port, timeout=180.0) as client:
                    doc = client.verify("simple_safe")
                assert doc["verdict"] == "unknown"
                assert doc["schema_version"] == 2
                assert doc["failure"]["kind"] == "crash"
            finally:
                service.stop()

    def test_concurrent_requests_lose_no_connections(self):
        """A worker dying under one request must not drop anyone's socket:
        every concurrent submission gets its verdict, the victim gets a
        retried verdict, and the daemon keeps serving afterwards."""
        plan = FaultPlan(
            [FaultSpec(kind="kill-worker", key="victim", attempts=(0,))]
        )
        with installed(plan):
            service = process_service()
            try:
                results = {}

                def submit(label, task):
                    with ServiceClient(port=service.port, timeout=180.0) as c:
                        results[label] = c.submit_many(
                            [task], options={"max_refinements": 8}
                        )[0]

                threads = [
                    threading.Thread(
                        target=submit,
                        args=("victim", {"source": "simple_safe", "name": "victim"}),
                    ),
                    threading.Thread(
                        target=submit,
                        args=("bystander1", {"source": "simple_unsafe"}),
                    ),
                    threading.Thread(
                        target=submit, args=("bystander2", {"source": "forward"})
                    ),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=180)
                assert all(not t.is_alive() for t in threads)
                # Zero dropped connections: every doc is a real verdict.
                assert results["victim"]["verdict"] == "safe"
                assert results["victim"]["attempts"] == 2
                assert results["bystander1"]["verdict"] == "unsafe"
                assert results["bystander2"]["verdict"] == "safe"
                assert service.connections_dropped == 0

                # And an identical resubmission warm-starts from the bank.
                with ServiceClient(port=service.port, timeout=180.0) as client:
                    again = client.submit_many(
                        [{"source": "simple_safe", "name": "victim"}],
                        options={"max_refinements": 8},
                    )[0]
                assert again["verdict"] == "safe"
                assert again["engine"]["session"]["warm_started"]
            finally:
                service.stop()


class TestJournalRecoveryThroughTheService:
    def seed_crashed_journal(self, path):
        """Write what a daemon that died mid-batch leaves behind: one
        answered request, two accepted-but-unanswered ones."""
        journal = RequestJournal(path)
        done = journal.accept("done", "simple_unsafe", None, "fp-done")
        journal.answer(done, "unsafe")
        journal.accept(
            "lost1", "simple_safe", {"max_refinements": 8}, "fp-lost1"
        )
        journal.accept("lost2", "forward", {"max_refinements": 8}, "fp-lost2")
        journal.close()

    def test_restart_reports_unanswered_work(self, tmp_path):
        path = tmp_path / "requests.wal"
        self.seed_crashed_journal(path)
        service = VerificationService(
            ServiceConfig(workers=2, journal_path=path)
        ).start()
        try:
            with ServiceClient(port=service.port) as client:
                stats = client.stats()["service"]
                health = client.health()
            assert stats["journal"]["recovered"] == 2
            assert stats["journal"]["lag"] == 2  # reported, not re-executed
            assert health["journal_lag"] == 2
            assert stats["recovery_runs"] == 0
        finally:
            service.stop()

    def test_recover_pre_warms_the_backlog(self, tmp_path):
        path = tmp_path / "requests.wal"
        self.seed_crashed_journal(path)
        service = VerificationService(
            ServiceConfig(workers=2, journal_path=path, recover=True)
        ).start()
        try:
            with ServiceClient(port=service.port, timeout=180.0) as client:
                deadline = time.monotonic() + 120
                while time.monotonic() < deadline:
                    stats = client.stats()["service"]
                    if stats["journal"]["lag"] == 0:
                        break
                    time.sleep(0.1)
                assert stats["journal"]["lag"] == 0
                assert stats["recovery_runs"] == 2
                # The recovery runs banked precisions: a client resubmitting
                # the lost work gets warm-started verdicts.
                doc = client.verify("forward", options={"max_refinements": 8})
            assert doc["verdict"] == "safe"
            assert doc["engine"]["session"]["warm_started"]
        finally:
            service.stop()
        # After the drain the journal holds nothing outstanding.
        reopened = RequestJournal(path)
        assert reopened.recovered == []
        reopened.close()

    def test_journaled_requests_answered_in_same_life_leave_no_lag(
        self, tmp_path
    ):
        path = tmp_path / "requests.wal"
        service = VerificationService(
            ServiceConfig(workers=2, journal_path=path)
        ).start()
        try:
            with ServiceClient(port=service.port, timeout=180.0) as client:
                docs = client.submit_many(
                    ["simple_safe", "simple_unsafe"],
                    options={"max_refinements": 4},
                )
                stats = client.stats()["service"]
            assert [d["verdict"] for d in docs] == ["safe", "unsafe"]
            assert stats["journal"]["accepted"] == 2
            assert stats["journal"]["answered"] == 2
            assert stats["journal"]["lag"] == 0
        finally:
            service.stop()
        reopened = RequestJournal(path)
        assert reopened.recovered == []
        reopened.close()


class TestClientReconnectRetry:
    def test_retrying_client_survives_injected_drops(self):
        plan = FaultPlan(
            [FaultSpec(kind="drop-connection", key="bumpy", max_fires=1, attempts=())]
        )
        with installed(plan):
            service = VerificationService(ServiceConfig(workers=2)).start()
            try:
                with ServiceClient(
                    port=service.port, timeout=180.0, retries=3
                ) as client:
                    doc = client.verify(
                        "simple_safe", name="bumpy", options={"max_refinements": 4}
                    )
                assert doc["verdict"] == "safe"
                trail = doc["transport"]
                assert trail["attempts"] == 2
                assert trail["failures"][0]["kind"] == "connection-lost"
            finally:
                service.stop()

    def test_exhausted_retries_still_return_a_structured_doc(self):
        plan = FaultPlan(
            [FaultSpec(kind="drop-connection", key="doomed", attempts=())]
        )
        with installed(plan):
            service = VerificationService(ServiceConfig(workers=2)).start()
            try:
                with ServiceClient(
                    port=service.port, timeout=180.0, retries=2
                ) as client:
                    doc = client.verify(
                        "simple_safe", name="doomed", options={"max_refinements": 4}
                    )
                assert doc["verdict"] == "unknown"
                assert doc["failure"]["kind"] == "connection-lost"
            finally:
                service.stop()

    def test_zero_retries_preserves_single_shot_behaviour(self):
        plan = FaultPlan(
            [FaultSpec(kind="drop-connection", key="oneshot", attempts=(0,))]
        )
        with installed(plan):
            service = VerificationService(ServiceConfig(workers=2)).start()
            try:
                client = ServiceClient(port=service.port)
                doc = client.verify("simple_safe", name="oneshot")
                client.close()
                assert doc["failure"]["kind"] == "connection-lost"
                assert "transport" not in doc
            finally:
                service.stop()
