"""The durable request journal: framing, recovery, compaction, torn writes
(ISSUE 10 tentpole part 2)."""

import json

import pytest

from repro.core.faults import FAULT_KINDS, FAULT_SITES, FaultPlan, FaultSpec, installed
from repro.serve.journal import JOURNAL_MAGIC, RequestJournal


def test_journal_torn_write_fault_registered():
    assert "journal-torn-write" in FAULT_KINDS
    assert FAULT_SITES["journal-append"] == ("journal-torn-write",)
    assert FaultSpec(kind="journal-torn-write").site == "journal-append"


class TestAcceptAnswer:
    def test_accept_then_answer_leaves_no_lag(self, tmp_path):
        journal = RequestJournal(tmp_path / "requests.wal")
        seq = journal.accept("forward", "int main(){}", {"max_refinements": 8}, "fp1")
        assert journal.lag == 1
        journal.answer(seq, "safe")
        assert journal.lag == 0
        assert journal.accepted == 1
        assert journal.answered == 1
        journal.close()

    def test_sequence_numbers_are_monotonic(self, tmp_path):
        journal = RequestJournal(tmp_path / "requests.wal")
        seqs = [
            journal.accept(f"t{i}", "src", None, f"fp{i}") for i in range(5)
        ]
        assert seqs == sorted(seqs) and len(set(seqs)) == 5
        journal.close()

    def test_answer_is_idempotent(self, tmp_path):
        journal = RequestJournal(tmp_path / "requests.wal")
        seq = journal.accept("t", "src", None, "fp")
        journal.answer(seq, "safe")
        journal.answer(seq, "safe")  # double-answer: no error, no double count
        journal.answer(999, "safe")  # unknown seq: ignored
        assert journal.answered == 1
        journal.close()

    def test_records_are_framed_json(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.accept("t", "src", {"jobs": 2}, "fp", client_id="ci")
        journal.close()
        data = path.read_bytes()
        assert data[:4] == JOURNAL_MAGIC
        length = int.from_bytes(data[4:8], "big")
        record = json.loads(data[8 : 8 + length])
        assert record["type"] == "accepted"
        assert record["name"] == "t"
        assert record["options"] == {"jobs": 2}
        assert record["client_id"] == "ci"


class TestRecovery:
    def test_unanswered_records_are_recovered(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        s1 = journal.accept("done", "src1", None, "fp1")
        journal.accept("lost", "src2", {"strategy": "dfs"}, "fp2")
        journal.answer(s1, "safe")
        journal.close()

        reopened = RequestJournal(path)
        assert [r["name"] for r in reopened.recovered] == ["lost"]
        assert reopened.recovered[0]["options"] == {"strategy": "dfs"}
        assert reopened.lag == 1
        reopened.close()

    def test_recovered_seqs_survive_and_new_seqs_continue(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.accept("a", "src", None, "fp1")
        lost_seq = journal.accept("b", "src", None, "fp2")
        journal.answer(1, "safe")
        journal.close()

        reopened = RequestJournal(path)
        assert reopened.recovered[0]["seq"] == lost_seq
        assert reopened.accept("c", "src", None, "fp3") > lost_seq
        reopened.close()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.accept("intact", "src", None, "fp1")
        journal.close()
        with open(path, "ab") as handle:
            # A frame promising 500 bytes but delivering 9: a crashed writer.
            handle.write(JOURNAL_MAGIC + (500).to_bytes(4, "big") + b'{"partial')

        reopened = RequestJournal(path)
        assert reopened.torn_dropped == 1
        assert [r["name"] for r in reopened.recovered] == ["intact"]
        reopened.close()

    def test_garbage_tail_is_dropped(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.accept("intact", "src", None, "fp1")
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b"not a frame at all")

        reopened = RequestJournal(path)
        assert reopened.torn_dropped == 1
        assert [r["name"] for r in reopened.recovered] == ["intact"]
        reopened.close()

    def test_reopen_compacts_answered_records_away(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        for i in range(10):
            seq = journal.accept(f"t{i}", "src", None, f"fp{i}")
            journal.answer(seq, "safe")
        journal.accept("pending", "src", None, "fp-pending")
        journal.close()
        size_before = path.stat().st_size

        reopened = RequestJournal(path)
        reopened.close()
        # Only the single outstanding record survives the rewrite.
        assert path.stat().st_size < size_before
        final = RequestJournal(path)
        assert [r["name"] for r in final.recovered] == ["pending"]
        final.close()

    def test_missing_file_starts_empty(self, tmp_path):
        journal = RequestJournal(tmp_path / "fresh" / "requests.wal")
        assert journal.recovered == []
        assert journal.lag == 0
        journal.close()


class TestTornWriteFault:
    def test_injected_torn_write_is_dropped_on_recovery(self, tmp_path):
        """Regression pin for the ``journal-torn-write`` fault kind: the
        injected partial frame is byte-for-byte a crashed writer's tail and
        recovery must drop exactly it, keeping every intact record."""
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.accept("before", "src", None, "fp-before")
        plan = FaultPlan(
            [FaultSpec(kind="journal-torn-write", key="torn", attempts=())]
        )
        with installed(plan):
            journal.accept("torn", "src", None, "fp-torn")
        journal.close()

        reopened = RequestJournal(path)
        assert reopened.torn_dropped == 1
        # The torn record is unrecoverable (by design — it never fully made
        # it to disk); everything before it survives.
        assert [r["name"] for r in reopened.recovered] == ["before"]
        reopened.close()

    def test_fault_is_inert_without_a_plan(self, tmp_path):
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        journal.accept("clean", "src", None, "fp")
        journal.close()
        reopened = RequestJournal(path)
        assert reopened.torn_dropped == 0
        assert [r["name"] for r in reopened.recovered] == ["clean"]
        reopened.close()


class TestRuntimeCompaction:
    def test_log_stays_bounded_under_churn(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.journal.JOURNAL_COMPACT_BYTES", 2048)
        path = tmp_path / "requests.wal"
        journal = RequestJournal(path)
        for i in range(200):
            seq = journal.accept(f"t{i}", "x" * 50, None, f"fp{i}")
            journal.answer(seq, "safe")
        journal.close()
        # 200 accept+answer pairs at ~100+ bytes each would be >20 KiB
        # unbounded; compaction keeps the file near-empty (no outstanding).
        assert path.stat().st_size < 4096
