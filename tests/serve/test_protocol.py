"""Unit tests of the daemon's wire protocol (framing, validation, docs)."""

import json

import pytest

from repro.core.api import VerifierOptions
from repro.serve import protocol
from repro.serve.coalesce import AdmissionControl, Coalescer, options_key


class TestFraming:
    def test_encode_decode_round_trip(self):
        doc = {"op": "verify", "id": 3, "source": "x", "options": {"jobs": 2}}
        line = protocol.encode(doc)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1  # one message, one line
        assert protocol.decode(line) == doc

    def test_decode_rejects_non_json(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.decode(b"not json\n")
        assert info.value.code == "bad-request"

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_decode_rejects_oversized_line(self):
        line = b'{"op": "' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(line)

    def test_decode_rejects_bad_utf8(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'{"op": "\xff\xfe"}\n')


class TestParseRequest:
    def test_valid_verify(self):
        request = protocol.parse_request(
            {"op": "verify", "id": 1, "source": "int main() {}"}
        )
        assert request["op"] == "verify"

    def test_unknown_op_keeps_request_id(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.parse_request({"op": "frobnicate", "id": 9})
        assert info.value.code == "unsupported-op"
        assert info.value.request_id == 9

    def test_verify_requires_source(self):
        for bad in ({"op": "verify", "id": 1}, {"op": "verify", "id": 1, "source": "  "}):
            with pytest.raises(protocol.ProtocolError) as info:
                protocol.parse_request(bad)
            assert info.value.code == "bad-request"

    def test_verify_rejects_non_dict_options(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(
                {"op": "verify", "id": 1, "source": "x", "options": "fast"}
            )

    def test_rejects_ill_typed_id(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request({"op": "health", "id": [1]})

    def test_every_op_accepted(self):
        for op in protocol.OPS:
            doc = {"op": op, "id": 1}
            if op == "verify":
                doc["source"] = "x"
            assert protocol.parse_request(doc)["op"] == op


class TestResponses:
    def test_error_response_carries_status(self):
        doc = protocol.error_response(4, "overloaded", "queue full")
        assert doc["ok"] is False
        assert doc["error"]["status"] == 429
        assert doc["id"] == 4

    def test_every_error_code_has_a_status(self):
        for code, status in protocol.ERROR_STATUS.items():
            assert protocol.error_response(None, code, "x")["error"]["status"] == status

    def test_result_response_shape(self):
        doc = protocol.result_response(7, {"verdict": "safe"}, coalesced=True)
        assert doc == {
            "id": 7,
            "ok": True,
            "op": "verify",
            "coalesced": True,
            "result": {"verdict": "safe"},
        }

    def test_transport_failure_doc_is_schema_v2(self):
        doc = protocol.transport_failure_doc("forward", "connection-lost", "EOF")
        assert doc["schema_version"] == 2
        assert doc["verdict"] == "unknown"
        assert doc["failure"]["kind"] == "connection-lost"
        assert doc["failures"] == [doc["failure"]]
        json.dumps(doc)  # JSON-safe


class TestCoalesceKeys:
    def test_options_key_is_canonical(self):
        a = VerifierOptions(max_refinements=5, jobs=2)
        b = VerifierOptions(jobs=2, max_refinements=5)
        assert options_key(a) == options_key(b)

    def test_options_key_distinguishes_engine_knobs(self):
        assert options_key(VerifierOptions()) != options_key(
            VerifierOptions(refiner="path-formula")
        )

    def test_coalescer_attach_and_finish(self):
        coalescer = Coalescer()
        key = ("fp", "opts")
        job, created = coalescer.attach(key)
        assert created and coalescer.in_flight == 1
        same, created_again = coalescer.attach(key)
        assert same is job and not created_again
        assert coalescer.coalesce_hits == 1
        coalescer.finish(key)
        _, fresh = coalescer.attach(key)
        assert fresh  # finished jobs never replay

    def test_abandon_rolls_back_a_rejected_creation(self):
        coalescer = Coalescer()
        coalescer.attach(("fp", "o"))
        coalescer.abandon(("fp", "o"))
        assert coalescer.in_flight == 0
        assert coalescer.jobs_started == 0


class TestAdmission:
    def test_capacity_is_workers_plus_queue(self):
        admission = AdmissionControl(workers=2, max_queue=3)
        assert admission.capacity == 5
        assert all(admission.try_admit() for _ in range(5))
        assert not admission.try_admit()
        assert admission.rejections == 1
        admission.release()
        assert admission.try_admit()

    def test_queue_depth_excludes_running_jobs(self):
        admission = AdmissionControl(workers=2, max_queue=4)
        for _ in range(3):
            admission.try_admit()
        assert admission.queue_depth == 1  # 3 pending, 2 on workers

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionControl(workers=0, max_queue=1)
        with pytest.raises(ValueError):
            AdmissionControl(workers=1, max_queue=-1)
