"""Per-client quotas and the fingerprint circuit breaker (ISSUE 10
tentpole part 3)."""

import pytest

from repro.core.api import VerifierOptions
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.serve import (
    CircuitBreaker,
    ClientQuota,
    ServiceClient,
    ServiceConfig,
    TokenBucket,
    VerificationService,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Token bucket / quota units (fake clock: instant and deterministic)
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [None, None, None]
        retry_after = bucket.try_take()
        assert retry_after is not None and retry_after == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is not None
        clock.advance(0.5)  # 2/s for half a second = exactly one token
        assert bucket.try_take() is None

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_take() for _ in range(3)] == [None, None, 1 / 100.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestClientQuota:
    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        quota = ClientQuota(rate=1.0, burst=1, clock=clock)
        assert quota.try_admit("alice") is None
        assert quota.try_admit("alice") is not None  # alice exhausted
        assert quota.try_admit("bob") is None  # bob untouched
        assert quota.throttled == 1
        assert quota.statistics()["clients"] == 2

    def test_anonymous_requests_share_one_bucket(self):
        clock = FakeClock()
        quota = ClientQuota(rate=1.0, burst=1, clock=clock)
        assert quota.try_admit(None) is None
        assert quota.try_admit(None) is not None
        assert quota.try_admit("") is not None  # empty id == anonymous


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        key = ("fp", "opts")
        for _ in range(2):
            breaker.record_failure(key)
        assert breaker.check(key) is None  # two strikes: still closed
        breaker.record_failure(key)
        retry_after = breaker.check(key)
        assert retry_after is not None and retry_after == pytest.approx(10.0)
        assert breaker.tripped == 1

    def test_success_resets_the_strike_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        key = ("fp", "opts")
        breaker.record_failure(key)
        breaker.record_success(key)
        breaker.record_failure(key)
        assert breaker.check(key) is None  # never two *consecutive* strikes

    def test_unrelated_keys_are_independent(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure(("fp1", "o"))
        assert breaker.check(("fp1", "o")) is not None
        assert breaker.check(("fp2", "o")) is None

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        key = ("fp", "o")
        breaker.record_failure(key)
        assert breaker.check(key) is not None
        clock.advance(5.0)
        assert breaker.check(key) is None  # the half-open probe
        assert breaker.check(key) is not None  # only one probe at a time
        breaker.record_success(key)
        assert breaker.check(key) is None  # probe succeeded: circuit closed

    def test_failed_probe_retrips_for_a_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        key = ("fp", "o")
        breaker.record_failure(key)
        clock.advance(5.0)
        assert breaker.check(key) is None  # probe admitted
        breaker.record_failure(key)  # probe crashed too
        retry_after = breaker.check(key)
        assert retry_after is not None and retry_after == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Service-level behaviour (live daemon)
# ----------------------------------------------------------------------
class TestQuotaOverTheWire:
    def test_over_rate_client_gets_429_with_retry_after(self):
        service = VerificationService(
            ServiceConfig(workers=2, quota_rate=0.1, quota_burst=2)
        ).start()
        try:
            with ServiceClient(port=service.port, client_id="greedy") as client:
                docs = client.submit_many(
                    [
                        {"source": "simple_safe", "name": "a"},
                        {"source": "simple_unsafe", "name": "b"},
                        {"source": "forward", "name": "c"},
                    ],
                    options={"max_refinements": 4},
                )
            throttled = [d for d in docs if d.get("failure")]
            assert len(throttled) == 1  # burst 2 passed, the third bounced
            doc = throttled[0]
            assert doc["verdict"] == "unknown"
            assert doc["failure"]["kind"] == "quota-exceeded"
            assert doc["error"]["status"] == 429
            assert doc["error"]["retry_after"] > 0
            stats = service.statistics()["service"]
            assert stats["quota"]["throttled"] == 1
        finally:
            service.stop()

    def test_other_clients_are_unaffected(self):
        service = VerificationService(
            ServiceConfig(workers=2, quota_rate=0.1, quota_burst=1)
        ).start()
        try:
            with ServiceClient(port=service.port, client_id="greedy") as greedy:
                first = greedy.verify("simple_safe", options={"max_refinements": 4})
                second = greedy.verify("simple_safe", options={"max_refinements": 4})
            with ServiceClient(port=service.port, client_id="patient") as patient:
                other = patient.verify("simple_safe", options={"max_refinements": 4})
            assert first["verdict"] == "safe"
            assert second["failure"]["kind"] == "quota-exceeded"
            assert other["verdict"] == "safe"
        finally:
            service.stop()

    def test_no_quota_rate_means_no_throttling(self):
        service = VerificationService(ServiceConfig(workers=2)).start()
        try:
            with ServiceClient(port=service.port, client_id="anyone") as client:
                docs = client.submit_many(
                    ["simple_safe"] * 6, options={"max_refinements": 4}
                )
            assert all(d["verdict"] == "safe" for d in docs)
            assert service.statistics()["service"]["quota"] is None
        finally:
            service.stop()


class TestBreakerOverTheWire:
    @pytest.fixture
    def crashy_service(self):
        # Every attempt of 'cursed' crashes its worker; retries are off so
        # each submission is exactly one strike.
        service = VerificationService(
            ServiceConfig(
                workers=2,
                breaker_threshold=2,
                breaker_cooldown=60.0,
                options=VerifierOptions(task_retries=0),
            )
        ).start()
        yield service
        service.stop()

    def test_tripped_breaker_short_circuits_with_structured_doc(
        self, crashy_service
    ):
        plan = FaultPlan([FaultSpec(kind="crash", key="cursed", attempts=())])
        with installed(plan):
            with ServiceClient(port=crashy_service.port) as client:
                first = client.verify("simple_safe", name="cursed")
                second = client.verify("simple_safe", name="cursed")
                third = client.verify("simple_safe", name="cursed")
                unrelated = client.verify("simple_unsafe", name="fine")
        assert first["failure"]["kind"] == "crash"
        assert second["failure"]["kind"] == "crash"
        # Third never reaches a worker: the circuit is open.
        assert third["failure"]["kind"] == "circuit-open"
        assert third["error"]["status"] == 503
        assert third["error"]["retry_after"] > 0
        # An unrelated fingerprint still verifies while the circuit is open.
        assert unrelated["verdict"] == "unsafe"
        stats = crashy_service.statistics()["service"]["breaker"]
        assert stats["tripped"] == 1
        assert stats["open_circuits"] == 1
        assert stats["rejections"] == 1

    def test_engine_error_verdicts_do_not_trip_the_breaker(self, crashy_service):
        with ServiceClient(port=crashy_service.port) as client:
            for _ in range(3):
                doc = client.verify("int main( {", name="broken")  # parse error
                assert doc["verdict"] == "error"
            # Parse errors are answers, not crashes: nothing tripped.
            stats = crashy_service.statistics()["service"]["breaker"]
            assert stats["tripped"] == 0

    def test_breaker_disabled_with_zero_threshold(self):
        service = VerificationService(
            ServiceConfig(
                workers=2,
                breaker_threshold=0,
                options=VerifierOptions(task_retries=0),
            )
        ).start()
        try:
            plan = FaultPlan([FaultSpec(kind="crash", key="cursed", attempts=())])
            with installed(plan):
                with ServiceClient(port=service.port) as client:
                    docs = [
                        client.verify("simple_safe", name="cursed")
                        for _ in range(3)
                    ]
            # Every submission reached a worker (and crashed): no breaker.
            assert all(d["failure"]["kind"] == "crash" for d in docs)
            assert service.statistics()["service"]["breaker"] is None
        finally:
            service.stop()


class TestConfigValidation:
    def test_bad_quota_and_breaker_values_are_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(quota_rate=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(quota_rate=1.0, quota_burst=0)
        with pytest.raises(ValueError):
            ServiceConfig(breaker_threshold=-1)
        with pytest.raises(ValueError):
            ServiceConfig(breaker_cooldown=-1.0)
