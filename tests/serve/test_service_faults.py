"""Server-path fault injection: every fault yields a structured failure doc,
never a hung client or a half-written response (ISSUE 9 satellite)."""

import pytest

from repro.core import faults
from repro.core.faults import FAULT_KINDS, FAULT_SITES, FaultPlan, FaultSpec, installed
from repro.serve import ServiceClient, ServiceConfig, VerificationService


@pytest.fixture
def service():
    service = VerificationService(ServiceConfig(workers=2)).start()
    yield service
    service.stop()


def test_server_path_fault_sites_registered():
    assert "drop-connection" in FAULT_KINDS
    assert "slow-client" in FAULT_KINDS
    assert FAULT_SITES["serve-response"] == ("drop-connection",)
    assert FAULT_SITES["client-send"] == ("slow-client",)
    assert FaultSpec(kind="drop-connection").site == "serve-response"
    assert FaultSpec(kind="slow-client").site == "client-send"


def test_server_path_kinds_are_returned_not_raised():
    plan = FaultPlan([FaultSpec(kind="drop-connection", key="x", attempts=())])
    with installed(plan):
        spec = faults.fire("serve-response", ("x",))
    assert spec is not None and spec.kind == "drop-connection"


class TestWorkerCrashMidRequest:
    def test_crash_is_retried_to_a_verdict(self, service):
        plan = FaultPlan([FaultSpec(kind="crash", key="simple_safe", attempts=(0,))])
        with installed(plan):
            with ServiceClient(port=service.port) as client:
                doc = client.verify("simple_safe")
        # First attempt crashed, the supervisor's retry decided the task.
        assert doc["verdict"] == "safe"
        assert doc["attempts"] == 2
        assert doc["failures"][0]["kind"] == "crash"
        stats = service.statistics()["service"]["supervision"]
        assert stats["crashes"] == 1
        assert stats["tasks_recovered"] == 1

    def test_unrecoverable_crash_is_a_structured_failure_doc(self, service):
        # attempts=() fires on every attempt: the task can never succeed.
        plan = FaultPlan([FaultSpec(kind="crash", key="simple_safe", attempts=())])
        with installed(plan):
            with ServiceClient(port=service.port) as client:
                doc = client.verify("simple_safe")
        assert doc["verdict"] == "unknown"
        assert doc["schema_version"] == 2
        assert doc["failure"]["kind"] == "crash"
        assert doc["attempts"] >= 1
        assert len(doc["failures"]) == doc["attempts"]

    def test_crash_doc_does_not_poison_the_store(self, service):
        plan = FaultPlan([FaultSpec(kind="crash", key="forward", attempts=())])
        with installed(plan):
            with ServiceClient(port=service.port) as client:
                failed = client.verify("forward")
        assert failed["verdict"] == "unknown"
        # The failed run banked nothing; a clean rerun starts cold and works.
        with ServiceClient(port=service.port) as client:
            clean = client.verify("forward")
        assert clean["verdict"] == "safe"
        assert not clean["engine"]["session"]["warm_started"]


class TestConnectionDropMidResponse:
    def test_drop_becomes_a_structured_failure_doc(self, service):
        plan = FaultPlan(
            [FaultSpec(kind="drop-connection", key="simple_safe", attempts=(0,))]
        )
        with installed(plan):
            client = ServiceClient(port=service.port)
            doc = client.verify("simple_safe")
            client.close()
        assert doc["verdict"] == "unknown"
        assert doc["failure"]["kind"] == "connection-lost"
        assert doc["schema_version"] == 2
        assert service.connections_dropped == 1

    def test_server_side_result_survives_the_drop(self, service):
        # The engine run completed and banked before the drop: a clean
        # retry on a fresh connection warm-starts from it.
        plan = FaultPlan(
            [FaultSpec(kind="drop-connection", key="forward", max_fires=1, attempts=())]
        )
        with installed(plan):
            client = ServiceClient(port=service.port)
            dropped = client.verify("forward")
            assert dropped["failure"]["kind"] == "connection-lost"
            retried = client.verify("forward")  # client reconnected itself
        client.close()
        assert retried["verdict"] == "safe"
        assert retried["engine"]["session"]["warm_started"]

    def test_drop_does_not_affect_other_requests(self, service):
        plan = FaultPlan(
            [FaultSpec(kind="drop-connection", key="unlucky", attempts=())]
        )
        with installed(plan):
            with ServiceClient(port=service.port) as client:
                docs = client.submit_many(
                    [
                        {"source": "simple_safe", "name": "unlucky"},
                        {"source": "simple_unsafe", "name": "fine"},
                    ]
                )
        # The dropped request is a structured transport failure; its sibling
        # on the shared connection is either its real verdict (its response
        # beat the drop) or the same structured failure — never a hang,
        # never an exception.
        assert docs[0]["verdict"] == "unknown"
        assert docs[0]["failure"]["kind"] == "connection-lost"
        assert docs[1]["verdict"] in ("unsafe", "unknown")
        assert all("verdict" in doc for doc in docs)


class TestSlowClient:
    def test_trickled_request_still_answered(self, service):
        plan = FaultPlan(
            [FaultSpec(kind="slow-client", key="simple_safe", attempts=(), seconds=0.3)]
        )
        with installed(plan):
            with ServiceClient(port=service.port) as client:
                doc = client.verify("simple_safe")
        assert doc["verdict"] == "safe"

    def test_slow_client_does_not_stall_other_connections(self, service):
        import threading
        import time

        plan = FaultPlan(
            [FaultSpec(kind="slow-client", key="lock_step", attempts=(), seconds=1.5)]
        )
        results = {}

        def slow():
            with installed(plan):
                with ServiceClient(port=service.port) as client:
                    results["slow"] = client.verify("lock_step")

        thread = threading.Thread(target=slow)
        thread.start()
        time.sleep(0.2)  # slow sender mid-trickle
        started = time.monotonic()
        with ServiceClient(port=service.port) as client:
            results["fast"] = client.verify("simple_unsafe")
        fast_elapsed = time.monotonic() - started
        thread.join()
        assert results["fast"]["verdict"] == "unsafe"
        assert results["slow"]["verdict"] == "safe"
        # The fast client finished while the slow one was still trickling.
        assert fast_elapsed < 1.3
