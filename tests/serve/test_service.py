"""Behavioural tests of the verification daemon: coalescing, warm-starting,
admission, budget isolation, endpoints, and graceful drain."""

import threading
import time

import pytest

from repro.core.api import Session, VerifierOptions
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.serve import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    VerificationService,
    wait_until_ready,
)


@pytest.fixture
def service():
    service = VerificationService(ServiceConfig(workers=2)).start()
    yield service
    service.stop()


@pytest.fixture
def client(service):
    with ServiceClient("127.0.0.1", service.port, timeout=120.0) as client:
        yield client


def test_health_endpoint(service, client):
    health = client.health()
    assert health["status"] == "ready"
    assert health["protocol"] == 1
    assert health["workers"] == 2
    assert wait_until_ready("127.0.0.1", service.port)["status"] == "ready"


def test_verify_round_trip_matches_in_process(service, client):
    doc = client.verify("simple_unsafe")
    expected = Session().run("simple_unsafe").to_json()
    assert doc["verdict"] == "unsafe"
    assert doc["verdict"] == expected["verdict"]
    assert doc["post_decisions"] == expected["post_decisions"]
    assert doc["schema_version"] == 2
    assert doc["coalesced"] is False


def test_verify_accepts_source_text_and_options(service, client):
    source = """
    int main() {
      int x;
      x = 0;
      while (x < 3) { x = x + 1; }
      assert(x == 3);
    }
    """
    doc = client.verify(
        source, name="tiny", options=VerifierOptions(max_refinements=8)
    )
    assert doc["verdict"] == "safe"
    assert doc["name"] == "tiny"


def test_malformed_source_is_a_structured_error_doc(service, client):
    doc = client.verify("int main() { this is not mini-C }", name="broken")
    assert doc["verdict"] == "error"
    assert doc["schema_version"] == 2


def test_bad_options_rejected_as_structured_doc(service, client):
    doc = client.verify("simple_safe", options={"no_such_knob": 1})
    assert doc["verdict"] == "unknown"
    assert doc["failure"]["kind"] == "bad-request"
    assert doc["error"]["status"] == 400


def test_unknown_op_is_a_protocol_error(service, client):
    response = client.request({"op": "frobnicate"})
    assert response["ok"] is False
    assert response["error"]["code"] == "unsupported-op"


def test_include_precision_ships_rendered_bank(service, client):
    doc = client.verify("forward", include_precision=True)
    assert doc["verdict"] == "safe"
    assert doc["precision"]  # forward refines: non-empty bank
    assert all(
        isinstance(preds, list) and all(isinstance(p, str) for p in preds)
        for preds in doc["precision"].values()
    )


def test_stats_and_cache_endpoints(service, client):
    client.verify("simple_safe")
    stats = client.stats()
    assert stats["service"]["engine_runs"] == 1
    assert stats["service"]["verify_requests"] == 1
    assert stats["session"]["tasks_run"] == 1
    assert stats["store"]["programs"] == 1
    assert "queue_depth" in stats["service"]
    cache = client.cache()
    assert len(cache["store"]["fingerprints"]) == 1
    assert "checker_caches" in cache


class TestCoalescing:
    def test_n_concurrent_identical_one_engine_run(self, service, client):
        n = 6
        docs = client.submit_many([("forward", "forward")] * n)
        stats = client.stats()["service"]
        # Exactly one engine run: the other N-1 attached to it in flight.
        assert stats["engine_runs"] == 1
        assert stats["coalesce_hits"] == n - 1
        verdicts = {doc["verdict"] for doc in docs}
        posts = {doc["post_decisions"] for doc in docs}
        assert verdicts == {"safe"}
        assert len(posts) == 1  # N identical responses from the one run
        assert sum(1 for doc in docs if doc["coalesced"]) == n - 1

    def test_different_options_do_not_coalesce(self, service, client):
        docs = client.submit_many(
            [
                {"source": "simple_safe"},
                {"source": "simple_safe", "options": {"strategy": "dfs"}},
            ]
        )
        assert [doc["verdict"] for doc in docs] == ["safe", "safe"]
        assert client.stats()["service"]["engine_runs"] == 2


class TestWarmStart:
    def test_repeat_fingerprint_does_strictly_fewer_posts(self, service, client):
        cold = client.verify("forward")
        warm = client.verify("forward")
        assert cold["verdict"] == warm["verdict"] == "safe"
        assert not cold["engine"]["session"]["warm_started"]
        assert warm["engine"]["session"]["warm_started"]
        assert warm["engine"]["session"]["seeded_predicates"] > 0
        assert warm["post_decisions"] < cold["post_decisions"]
        stats = client.stats()["service"]
        assert stats["warm_hits"] == 1

    def test_warm_start_spans_connections(self, service):
        with ServiceClient(port=service.port) as first:
            first.verify("forward")
        with ServiceClient(port=service.port) as second:
            warm = second.verify("forward")
        assert warm["engine"]["session"]["warm_started"]


class TestIsolation:
    def test_overload_rejected_as_429_doc(self):
        service = VerificationService(
            ServiceConfig(workers=1, max_queue=0)
        ).start()
        try:
            plan = FaultPlan(
                [FaultSpec(kind="slow", key="lock_step", attempts=(), seconds=1.5)]
            )
            with installed(plan):
                results = {}

                def occupy():
                    with ServiceClient(port=service.port) as client:
                        results["slow"] = client.verify("lock_step")

                thread = threading.Thread(target=occupy)
                thread.start()
                deadline = time.monotonic() + 5.0
                while (
                    service.admission.pending == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                with ServiceClient(port=service.port) as client:
                    rejected = client.verify("up_down")
                thread.join()
            assert rejected["verdict"] == "unknown"
            assert rejected["failure"]["kind"] == "overloaded"
            assert rejected["error"]["status"] == 429
            assert results["slow"]["verdict"] == "safe"  # unharmed by the reject
            assert service.admission.rejections == 1
        finally:
            service.stop()

    def test_budget_exhausting_request_cannot_starve_small_one(self, service):
        # The pathological request burns only its own (tiny) budget and
        # settles unknown; the small request on the other worker decides.
        pathological = {
            "source": "double_counter",
            "name": "pathological",
            "options": {"max_solver_calls": 5},
        }
        small = {"source": "simple_safe", "name": "small"}
        with ServiceClient(port=service.port) as client:
            heavy, light = client.submit_many([pathological, small])
        assert heavy["verdict"] == "unknown"
        assert light["verdict"] == "safe"

    def test_request_timeout_clamps_wall_clock(self):
        service = VerificationService(
            ServiceConfig(workers=1, request_timeout=0.05)
        ).start()
        try:
            with ServiceClient(port=service.port) as client:
                doc = client.verify("double_counter")
            assert doc["verdict"] == "unknown"
        finally:
            service.stop()


class TestDrain:
    def test_shutdown_finishes_in_flight_work(self, service):
        plan = FaultPlan(
            [FaultSpec(kind="slow", key="lock_step", attempts=(), seconds=1.0)]
        )
        results = {}
        with installed(plan):

            def submit():
                with ServiceClient(port=service.port) as client:
                    results["doc"] = client.verify("lock_step")

            thread = threading.Thread(target=submit)
            thread.start()
            deadline = time.monotonic() + 5.0
            while service.admission.pending == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            with ServiceClient(port=service.port) as control:
                control.shutdown()
            thread.join()
        assert results["doc"]["verdict"] == "safe"  # in-flight work completed
        service.stop()  # loop exits because the drain ran to completion
        assert service.draining

    def test_drained_daemon_refuses_new_connections(self, service):
        with ServiceClient(port=service.port) as client:
            client.verify("simple_safe")
            client.shutdown()
        service.stop()
        with pytest.raises((ServiceError, ConnectionError, OSError)):
            ServiceClient(port=service.port, connect_timeout=0.5).health()

    def test_drain_flushes_store_to_disk(self, tmp_path):
        store_path = tmp_path / "bank.pkl"
        service = VerificationService(
            ServiceConfig(workers=1, store_path=store_path)
        ).start()
        with ServiceClient(port=service.port) as client:
            client.verify("forward")
            client.shutdown()
        service.stop()
        assert store_path.exists()
        # A fresh daemon over the same store warm-starts immediately.
        revived = VerificationService(
            ServiceConfig(workers=1, store_path=store_path)
        ).start()
        try:
            with ServiceClient(port=revived.port) as client:
                doc = client.verify("forward")
            assert doc["engine"]["session"]["warm_started"]
        finally:
            revived.stop()
