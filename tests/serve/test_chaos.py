"""Chaos soak (ISSUE 10 satellite): a seeded randomized fault schedule —
worker crashes, SIGKILLed worker processes, hangs, slowdowns, dropped
connections — against a live process-backend daemon running the full
12-program suite twice.

The bar is total: **every request is answered** (zero hangs, zero
exceptions, zero lost requests), the final verdicts are **identical to a
fault-free run**, the request journal drains to zero lag, and the precision
store comes back uncorrupted.  The schedule is seeded, so a failure here
replays exactly.
"""

import random
from pathlib import Path

import pytest

from repro.core.api import PrecisionStore
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.serve import (
    RequestJournal,
    ServiceClient,
    ServiceConfig,
    VerificationService,
)

#: The 12-program suite with per-program refinement budgets (mirrors the
#: benchmark suite in benchmarks/run_all.py).
SUITE = [
    ("forward", 8),
    ("initcheck", 8),
    ("double_counter", 8),
    ("up_down", 8),
    ("lock_step", 8),
    ("diamond_safe", 8),
    ("simple_safe", 8),
    ("simple_unsafe", 8),
    ("array_init_const", 8),
    ("array_copy", 8),
    ("array_init_buggy", 8),
    ("initcheck_buggy", 5),
]

SEED = 1007

#: First-attempt fault kinds the schedule draws from.  ``None`` means the
#: program is left alone this soak.  Faults fire on attempt 0 only, so the
#: supervisor's retry (or the client's reconnect) recovers every one.
CHAOS_KINDS = ("crash", "kill-worker", "hang", "slow", "drop-connection", None)


def chaos_plan(rng: random.Random) -> FaultPlan:
    specs = []
    for name, _ in SUITE:
        kind = rng.choice(CHAOS_KINDS)
        if kind is None:
            continue
        if kind == "drop-connection":
            # Fires at the serve-response site, once; the client's
            # reconnect-and-resubmit turns it into a second (coalesced or
            # warm) run.
            specs.append(
                FaultSpec(kind=kind, key=name, attempts=(), max_fires=1)
            )
        elif kind == "hang":
            # In a worker process a hang sleeps then dies (never returns a
            # result); keep it short so the soak stays fast.
            specs.append(
                FaultSpec(kind=kind, key=name, attempts=(0,), seconds=1.0)
            )
        elif kind == "slow":
            specs.append(
                FaultSpec(kind=kind, key=name, attempts=(0,), seconds=0.3)
            )
        else:  # crash / kill-worker: hard worker death on the first attempt
            specs.append(FaultSpec(kind=kind, key=name, attempts=(0,)))
    assert specs, "seeded schedule unexpectedly empty"
    return FaultPlan(specs)


def submit_suite(port: int, retries: int = 0) -> list[dict]:
    with ServiceClient(port=port, timeout=300.0, retries=retries) as client:
        return client.submit_many(
            [
                {
                    "source": name,
                    "name": name,
                    "options": {"max_refinements": budget},
                }
                for name, budget in SUITE
            ]
        )


@pytest.mark.timeout(600)
def test_chaos_soak_answers_everything_with_faultfree_verdicts(tmp_path):
    # --- Reference: a fault-free run of the suite. -----------------------
    reference_service = VerificationService(
        ServiceConfig(workers=4, max_queue=32)
    ).start()
    try:
        reference = {
            doc["name"]: doc["verdict"]
            for doc in submit_suite(reference_service.port)
        }
    finally:
        reference_service.stop()
    assert len(reference) == len(SUITE)

    # --- The soak: same suite, twice, under the seeded schedule. ---------
    store_path = tmp_path / "store" / "bank.pkl"
    journal_path = tmp_path / "requests.wal"
    plan = chaos_plan(random.Random(SEED))
    with installed(plan):
        service = VerificationService(
            ServiceConfig(
                workers=4,
                max_queue=32,
                worker_backend="process",
                store_path=store_path,
                journal_path=journal_path,
            )
        ).start()
        try:
            first_pass = submit_suite(service.port, retries=4)
            second_pass = submit_suite(service.port, retries=4)
            stats = service.statistics()["service"]
        finally:
            service.stop()

    # Every request answered with a doc — nothing hung, nothing raised.
    assert len(first_pass) == len(SUITE)
    assert len(second_pass) == len(SUITE)
    for doc in first_pass + second_pass:
        assert "verdict" in doc, doc

    # Final verdicts identical to the fault-free run, both passes.
    assert {d["name"]: d["verdict"] for d in first_pass} == reference
    assert {d["name"]: d["verdict"] for d in second_pass} == reference

    # The schedule genuinely exercised the failure machinery.
    supervision = stats["supervision"]
    assert supervision["crashes"] + stats["connections_dropped"] > 0
    assert supervision["tasks_failed"] == 0  # every crash was recovered

    # The journal drained: nothing accepted went unanswered.
    assert stats["journal"]["lag"] == 0
    reopened = RequestJournal(journal_path)
    assert reopened.recovered == []
    reopened.close()

    # The store survived uncorrupted: it loads, and nothing was quarantined.
    store = PrecisionStore(path=store_path)
    assert len(store) > 0
    assert not list(store_path.parent.glob("*.corrupt"))
