"""End-to-end acceptance of the daemon (ISSUE 9).

The contract: a fresh daemon, the 12-program benchmark suite submitted twice
over the wire by 4 concurrent clients — every verdict identical to the
sequential in-process engine, the second pass showing warm-start post
reductions and nonzero coalesce hits in ``stats``, and a fault-injected
worker crash mid-suite still yielding one structured result doc per request.
A subprocess test pins the SIGTERM drain path of the real CLI daemon.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.api import Session, VerifierOptions
from repro.core.faults import FaultPlan, FaultSpec, installed
from repro.lang.programs import PROGRAMS
from repro.serve import ServiceClient, ServiceConfig, VerificationService

#: The benchmark suite of benchmarks/run_all.py: (program, max_refinements).
SUITE_12 = [
    ("forward", 8),
    ("initcheck", 8),
    ("double_counter", 8),
    ("up_down", 8),
    ("lock_step", 8),
    ("diamond_safe", 8),
    ("simple_safe", 8),
    ("simple_unsafe", 8),
    ("array_init_const", 8),
    ("array_copy", 8),
    ("array_init_buggy", 8),
    ("initcheck_buggy", 5),
]


def _suite_tasks():
    return [
        {
            "source": PROGRAMS[name].source,
            "name": name,
            "options": {"max_refinements": cap},
        }
        for name, cap in SUITE_12
    ]


def _sequential_reference():
    session = Session(VerifierOptions(warm_start=False))
    verdicts = {}
    for name, cap in SUITE_12:
        result = session.run(
            session.task(name, options=VerifierOptions(max_refinements=cap))
        )
        verdicts[name] = result.verdict
    return verdicts


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_four_concurrent_clients_two_passes_match_sequential_engine():
    reference = _sequential_reference()
    service = VerificationService(ServiceConfig(workers=4, max_queue=64)).start()
    try:
        tasks = _suite_tasks()
        passes: list[list[list[dict]]] = []
        for _ in range(2):
            barrier = threading.Barrier(4)
            batch: list[list[dict]] = [None] * 4
            errors: list[BaseException] = []

            def one_client(slot):
                try:
                    barrier.wait()
                    with ServiceClient(port=service.port) as client:
                        batch[slot] = client.submit_many(tasks)
                except BaseException as error:  # surfaced after join
                    errors.append(error)

            threads = [
                threading.Thread(target=one_client, args=(slot,)) for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            passes.append(batch)

        # Every one of the 96 responses is structured and matches the
        # sequential engine's verdict.
        for batch in passes:
            for docs in batch:
                assert len(docs) == len(SUITE_12)
                for (name, _), doc in zip(SUITE_12, docs):
                    assert doc["schema_version"] == 2
                    assert doc["verdict"] == reference[name], (name, doc)

        # Second pass warm-starts: strictly fewer posts for every program
        # that needed refinement on the cold pass.
        def min_posts(batch, index):
            return min(docs[index]["post_decisions"] for docs in batch)

        reductions = 0
        for index, (name, _) in enumerate(SUITE_12):
            cold = min_posts(passes[0], index)
            warm = min_posts(passes[1], index)
            assert warm <= cold, (name, cold, warm)
            if warm < cold:
                reductions += 1
        assert reductions >= 5, "warm pass should reduce posts broadly"

        with ServiceClient(port=service.port) as client:
            stats = client.stats()["service"]
        # 4 clients x 12 programs x 2 passes = 96 verify requests, but far
        # fewer engine runs: identical in-flight requests coalesced.
        assert stats["verify_requests"] == 96
        assert stats["coalesce_hits"] > 0
        assert stats["engine_runs"] + stats["coalesce_hits"] == 96
        assert stats["warm_hits"] > 0
        assert stats["rejections"] == 0
    finally:
        service.stop()


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_worker_crash_mid_suite_still_one_doc_per_request():
    names = ["forward", "initcheck", "simple_safe", "simple_unsafe", "up_down"]
    reference = _sequential_reference()
    # Two programs crash on their first attempt (recovered by retry), one
    # crashes on every attempt (settles as a structured failure).
    plan = FaultPlan(
        [
            FaultSpec(kind="crash", key="forward", attempts=(0,)),
            FaultSpec(kind="crash", key="initcheck", attempts=(0,)),
            FaultSpec(kind="crash", key="up_down", attempts=()),
        ]
    )
    service = VerificationService(ServiceConfig(workers=2)).start()
    try:
        with installed(plan):
            with ServiceClient(port=service.port) as client:
                docs = client.submit_many(
                    [
                        {
                            "source": PROGRAMS[name].source,
                            "name": name,
                            "options": {"max_refinements": 8},
                        }
                        for name in names
                    ]
                )
        assert len(docs) == len(names)  # exactly one doc per request
        by_name = {doc["name"]: doc for doc in docs}
        for name in ("forward", "initcheck"):
            assert by_name[name]["verdict"] == reference[name]
            assert by_name[name]["attempts"] == 2  # crashed once, recovered
        assert by_name["up_down"]["verdict"] == "unknown"
        assert by_name["up_down"]["failure"]["kind"] == "crash"
        for name in ("simple_safe", "simple_unsafe"):
            assert by_name[name]["verdict"] == reference[name]
        stats = service.statistics()["service"]["supervision"]
        assert stats["crashes"] >= 3
        assert stats["tasks_recovered"] == 2
        assert stats["tasks_failed"] == 1
    finally:
        service.stop()


@pytest.mark.slow
@pytest.mark.timeout(180)
def test_sigterm_drains_real_daemon_subprocess(tmp_path):
    """SIGTERM mid-batch: in-flight work finishes, responses arrive, the
    store flushes, and the process exits 0."""
    store_path = tmp_path / "bank.pkl"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--precision-store",
            str(store_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    try:
        ready = proc.stdout.readline()
        match = re.search(r"127\.0\.0\.1:(\d+)", ready)
        assert match, f"no ready line: {ready!r}"
        port = int(match.group(1))

        results = {}

        def submit():
            with ServiceClient(port=port, timeout=120.0) as client:
                results["docs"] = client.submit_many(
                    [
                        {
                            "source": PROGRAMS[name].source,
                            "name": name,
                            "options": {"max_refinements": 8},
                        }
                        for name in ("forward", "double_counter", "lock_step", "up_down")
                    ]
                )

        thread = threading.Thread(target=submit)
        thread.start()
        time.sleep(0.4)  # let the batch get in flight
        proc.send_signal(signal.SIGTERM)
        thread.join(timeout=120)
        assert not thread.is_alive()
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "drained" in out
        # Every response arrived as a structured doc despite the SIGTERM.
        docs = results["docs"]
        assert len(docs) == 4
        assert all(doc.get("schema_version") == 2 for doc in docs)
        assert {doc["verdict"] for doc in docs} <= {"safe", "unsafe", "unknown"}
        # In-flight work was finished, not abandoned: decided verdicts made
        # it into the flushed store.
        assert store_path.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
