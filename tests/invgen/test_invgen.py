"""Tests for cutsets, postconditions, candidates, invariant maps and synthesis."""

import pytest

from repro.invgen import (
    FarkasEngine,
    InvariantMap,
    PathInvariantSynthesizer,
    TemplateConjunction,
    basic_paths,
    check_invariant_map,
    collect_array_facts,
    cutpoints,
    equality_template,
    mine_linear_candidates,
    quantified_candidates,
    strongest_post,
    strongest_post_path,
)
from repro.invgen.postcond import forall_range, make_range_forall
from repro.invgen.templates import LinearTemplate
from repro.core.pathprogram import build_path_program
from repro.core.predabs import AbstractReachability, Precision
from repro.lang import get_program
from repro.lang.commands import ArrayAssign, Assign, Assume
from repro.logic.formulas import Forall, Relation, conjoin, conjuncts, eq, ge, le, lt
from repro.logic.terms import Var, const, read, var
from repro.smt.vcgen import VcChecker


def error_path(program, max_refinements=0):
    """The first abstract counterexample of a program (no predicates)."""
    reach = AbstractReachability(program, VcChecker())
    outcome = reach.run(Precision())
    assert outcome.counterexample is not None
    return outcome.counterexample


class TestCutset:
    def test_forward_cutpoints(self):
        program = get_program("forward")
        cuts = cutpoints(program)
        assert len(cuts) == 1

    def test_basic_paths_cover_error(self):
        program = get_program("forward")
        paths = basic_paths(program)
        assert any(p.target == program.error for p in paths)
        assert all(p.transitions for p in paths)

    def test_basic_paths_have_no_interior_cutpoints(self):
        program = get_program("initcheck")
        cuts = cutpoints(program)
        for path in basic_paths(program):
            for transition in path.transitions[:-1]:
                assert transition.target not in cuts


class TestStrongestPost:
    def test_assume(self):
        post = strongest_post(ge(var("x"), 0), Assume(lt(var("x"), var("n"))))
        assert set(conjuncts(post)) == {ge(var("x"), 0), lt(var("x"), var("n"))}

    def test_assignment_shifts_bound(self):
        post = strongest_post(ge(var("x"), 0), Assign("x", var("x") + const(1)))
        checker = VcChecker()
        assert checker.check_entailment(post, ge(var("x"), 1))

    def test_assignment_keeps_unrelated(self):
        post = strongest_post(ge(var("y"), 3), Assign("x", const(0)))
        checker = VcChecker()
        assert checker.check_entailment(post, ge(var("y"), 3))
        assert checker.check_entailment(post, eq(var("x"), 0))

    def test_quantified_range_rewrite_at_loop_exit(self):
        # forall k in [0, i-1]: a[k] = 0  with i >= n, then i := 0
        inv = make_range_forall(Var("k"), const(0), var("i") - const(1), eq(read("a", var("k")), 0))
        pre = conjoin([inv, ge(var("i"), var("n"))])
        post = strongest_post_path(pre, [Assign("i", const(0))])
        checker = VcChecker()
        target = make_range_forall(Var("k"), const(0), var("n") - const(1), eq(read("a", var("k")), 0))
        assert checker.check_entailment(post, target)

    def test_forall_range_roundtrip(self):
        inv = make_range_forall(Var("k"), const(0), var("n") - const(1), eq(read("a", var("k")), 0))
        lower, upper, body = forall_range(inv)
        assert lower == const(0)
        assert upper == var("n") - const(1)
        assert body == eq(read("a", var("k")), 0)

    def test_assignment_from_array_read_acts_as_havoc(self):
        # Fuzz regression (tests/corpus/batched-seed1000045.c): ``x = a[6]``
        # used to feed the non-linear RHS into LinConstraint and crash; the
        # sound treatment is to havoc the target and keep the rest.
        pre = conjoin([ge(var("x"), 0), ge(var("y"), 3)])
        post = strongest_post(pre, Assign("x", read("a", const(6))))
        assert set(conjuncts(post)) == {ge(var("y"), 3)}

    def test_array_write_drops_only_affected(self):
        pre = conjoin([ge(var("x"), 0), eq(read("b", var("j")), 1)])
        post = strongest_post(pre, ArrayAssign("a", var("i"), const(0)))
        checker = VcChecker()
        assert checker.check_entailment(post, ge(var("x"), 0))
        assert checker.check_entailment(post, eq(read("b", var("j")), 1))


class TestCandidates:
    def test_linear_candidates_include_substituted_assertion(self):
        program = get_program("forward")
        path = error_path(program)
        path_program = build_path_program(program, path).program
        candidates = mine_linear_candidates(path_program)
        # The paper's heuristic: a+b = 3n with n replaced by i.
        target = eq(var("a") + var("b"), var("i") * 3)
        from repro.logic.simplify import normalize_atom

        assert normalize_atom(target) in candidates

    def test_array_facts_for_initcheck(self):
        program = get_program("initcheck")
        facts = collect_array_facts(program)
        assert "a" in facts
        assert ("eq", const(0)) in facts["a"].body_candidates
        assert Var("i") in facts["a"].write_index_vars

    def test_quantified_candidates_contain_init_invariant(self):
        program = get_program("initcheck")
        candidates = quantified_candidates(program)
        target = make_range_forall(
            Var("__k"), const(0), var("i") - const(1), eq(read("a", var("__k")), 0)
        )
        assert target in candidates

    def test_no_quantified_candidates_without_arrays(self):
        program = get_program("forward")
        assert quantified_candidates(program) == []


class TestInvariantMap:
    def test_paper_forward_map_is_valid(self):
        """The invariant map of Section 5 for FORWARD (all locations filled in)."""
        program = get_program("forward")
        head = next(iter(program.loop_heads()))
        coupling = eq(var("a") + var("b"), var("i") * 3)
        bound = le(var("a") + var("b"), var("n") * 3)
        mapping = InvariantMap(program)
        mapping.set(head, conjoin([coupling, bound]))
        # Location just before the assertion: a + b = 3n.
        pre_assert = program.incoming(program.error)[0].source
        mapping.set(pre_assert, eq(var("a") + var("b"), var("n") * 3))
        # Intermediate locations of the loop body (branch point and join).
        branch_point = next(
            t.target for t in program.outgoing(head) if t.target != pre_assert
        )
        mapping.set(branch_point, conjoin([coupling, lt(var("i"), var("n"))]))
        join = next(l for l in program.predecessors(head) if l != program.initial)
        mapping.set(
            join,
            conjoin(
                [
                    eq(var("a") + var("b"), var("i") * 3 + const(3)),
                    lt(var("i"), var("n")),
                ]
            ),
        )
        result = check_invariant_map(mapping)
        assert result.ok, result.failures

    def test_wrong_map_is_rejected(self):
        program = get_program("forward")
        head = next(iter(program.loop_heads()))
        mapping = InvariantMap(program)
        mapping.set(head, eq(var("a") + var("b"), var("n") * 3))  # not inductive
        assert not check_invariant_map(mapping).ok


class TestFarkasEngine:
    """Reproduces the Section 5 FORWARD experiment (see also bench E2)."""

    def _path_program(self):
        program = get_program("forward")
        # Obtain the looping counterexample: refine once with the baseline to
        # remove the loop-free spurious path first.
        from repro.core.refiners import PathFormulaRefiner

        precision = Precision()
        checker = VcChecker()
        reach = AbstractReachability(program, checker)
        for _ in range(4):
            outcome = reach.run(precision)
            assert outcome.counterexample is not None
            path = outcome.counterexample
            visited = [path[0].source] + [t.target for t in path]
            if len(set(visited)) < len(visited):
                return build_path_program(program, path).program
            PathFormulaRefiner().refine(program, path, precision)
        raise AssertionError("no looping counterexample found")

    def test_equality_template_alone_fails(self):
        path_program = self._path_program()
        engine = FarkasEngine()
        variables = [Var(n) for n in ("a", "b", "i", "n")]
        template = {cut: equality_template(variables) for cut in cutpoints(path_program)}
        result = engine.synthesize(path_program, template)
        assert not result.success

    def test_refined_template_succeeds(self):
        path_program = self._path_program()
        engine = FarkasEngine()
        variables = [Var(n) for n in ("a", "b", "i", "n")]
        template = {
            cut: equality_template(variables).with_extra_inequality(variables)
            for cut in cutpoints(path_program)
        }
        result = engine.synthesize(path_program, template)
        assert result.success
        checker = VcChecker()
        for cut, formula in result.assertions.items():
            assert checker.check_entailment(formula, eq(var("a") + var("b"), var("i") * 3))


class TestSynthesizer:
    def test_initcheck_path_invariant(self):
        program = get_program("initcheck")
        # Drive the ART to the counterexample that goes through both loops.
        checker = VcChecker()
        precision = Precision()
        reach = AbstractReachability(program, checker)
        from repro.core.refiners import PathInvariantRefiner

        refiner = PathInvariantRefiner(checker)
        outcome = reach.run(precision)
        refiner.refine(program, outcome.counterexample, precision)
        outcome = reach.run(precision)
        path_program = build_path_program(program, outcome.counterexample)
        synthesizer = PathInvariantSynthesizer(checker)
        result = synthesizer.synthesize(path_program.program)
        assert result.success
        assert any(
            formula.has_quantifier() for formula in result.cutpoint_assertions.values()
        )
