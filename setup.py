"""Legacy setup shim (the environment has no `wheel` package, so the
PEP 517 editable-install path is unavailable; this enables `pip install -e .`
via the classic setuptools develop mode)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Path Invariants: CEGAR with path programs and constraint-based "
        "invariant synthesis (PLDI 2007 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro=repro.__main__:main"]},
)
