"""Path Invariants — a reproduction of Beyer, Henzinger, Majumdar, Rybalchenko (PLDI 2007).

The top-level package re-exports the public API:

* :func:`repro.verify` — verify the assertions of a mini-C program with CEGAR,
  using path programs and path invariants for abstraction refinement;
* :mod:`repro.lang` — the mini-C front end and the built-in benchmark suite;
* :mod:`repro.core` — path programs, predicate abstraction, CEGAR;
* :mod:`repro.invgen` — constraint-based invariant synthesis (templates,
  Farkas engine, quantified array invariants);
* :mod:`repro.smt` — the exact decision procedures everything is built on.
"""

from .core.verifier import verify
from .core.cegar import CegarResult, PortfolioResult, Verdict
from .lang.programs import PROGRAMS, get_program, get_source, list_programs

__version__ = "1.1.0"

__all__ = [
    "verify",
    "CegarResult",
    "PortfolioResult",
    "Verdict",
    "PROGRAMS",
    "get_program",
    "get_source",
    "list_programs",
    "__version__",
]
