"""Path Invariants — a reproduction of Beyer, Henzinger, Majumdar, Rybalchenko (PLDI 2007).

The top-level package re-exports the public API:

* :class:`repro.Session` / :class:`repro.VerifierOptions` /
  :class:`repro.VerificationTask` — the typed task/session API: validated
  options, reusable verification sessions with shared solver caches, and
  warm-start precision transfer across tasks and process pools;
* :func:`repro.verify` — the one-call entry point (a thin wrapper over a
  session): verify the assertions of a mini-C program with CEGAR, using
  path programs and path invariants for abstraction refinement;
* :mod:`repro.lang` — the mini-C front end and the built-in benchmark suite;
* :mod:`repro.core` — path programs, predicate abstraction, CEGAR;
* :mod:`repro.invgen` — constraint-based invariant synthesis (templates,
  Farkas engine, quantified array invariants);
* :mod:`repro.serve` — verification as a service: a long-lived daemon
  (:class:`repro.VerificationService`) with request coalescing and
  cross-request warm-starting, and its :class:`repro.ServiceClient`;
* :mod:`repro.smt` — the exact decision procedures everything is built on.
"""

from .core.verifier import verify
from .core.cegar import CegarResult, PortfolioResult, Result, Verdict
from .core.api import (
    PrecisionStore,
    Session,
    VerificationTask,
    VerifierOptions,
    program_fingerprint,
)
from .core.engine import RESULT_SCHEMA_VERSION, Budget
from .core.supervision import RetryPolicy, Supervisor
from .core.faults import FaultPlan, FaultSpec
from .lang.programs import PROGRAMS, get_program, get_source, list_programs

__version__ = "1.3.0"

# After __version__: the daemon's health endpoint reports it.
from .serve import ServiceClient, ServiceConfig, ServiceError, VerificationService

__all__ = [
    "verify",
    "Session",
    "VerifierOptions",
    "VerificationTask",
    "PrecisionStore",
    "program_fingerprint",
    "Budget",
    "Result",
    "CegarResult",
    "PortfolioResult",
    "RESULT_SCHEMA_VERSION",
    "Verdict",
    "Supervisor",
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "VerificationService",
    "PROGRAMS",
    "get_program",
    "get_source",
    "list_programs",
    "__version__",
]
