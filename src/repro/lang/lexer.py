"""Tokenizer for the mini-C surface language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .ast import SourcePosition

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "void",
    "int",
    "if",
    "else",
    "while",
    "for",
    "assume",
    "assert",
    "nondet",
    "skip",
    "true",
    "false",
    "return",
}

_SYMBOLS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "!",
]


class LexError(ValueError):
    """Raised on malformed input."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'number', 'keyword', 'symbol', 'eof'
    text: str
    position: SourcePosition

    def __str__(self) -> str:
        return f"{self.kind}({self.text})"


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def position() -> SourcePosition:
        return SourcePosition(line, column)

    while index < length:
        char = source[index]

        # Whitespace -----------------------------------------------------
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue

        # Comments -------------------------------------------------------
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise LexError(f"unterminated comment at {position()}")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue

        # Identifiers / keywords ------------------------------------------
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, position()))
            column += index - start
            continue

        # Numbers ----------------------------------------------------------
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            tokens.append(Token("number", source[start:index], position()))
            column += index - start
            continue

        # Symbols ----------------------------------------------------------
        matched = None
        for symbol in _SYMBOLS:
            if source.startswith(symbol, index):
                matched = symbol
                break
        if matched is None:
            raise LexError(f"unexpected character {char!r} at {position()}")
        tokens.append(Token("symbol", matched, position()))
        index += len(matched)
        column += len(matched)

    tokens.append(Token("eof", "", SourcePosition(line, column)))
    return tokens
