"""Recursive-descent parser for the mini-C surface language.

The parser produces the AST of :mod:`repro.lang.ast`.  The grammar covers the
constructs used by the paper's example programs and the extended benchmark
suite: function definitions with scalar and array parameters, declarations,
assignments (including ``++``/``--``/``+=``/``-=`` sugar), array writes,
``assume``/``assert``, ``if``/``else``, ``while`` and ``for`` loops, linear
arithmetic and boolean conditions, and the nondeterministic condition ``*``
and value ``nondet()``.
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    ArrayAssignStmt,
    ArrayRef,
    AssertStmt,
    AssignStmt,
    AssumeStmt,
    BinaryOp,
    Block,
    BoolBinary,
    BoolExpr,
    BoolLiteral,
    BoolNondet,
    BoolNot,
    Comparison,
    DeclStmt,
    Expr,
    ForStmt,
    FunctionDef,
    HavocStmt,
    IfStmt,
    IntLiteral,
    NondetExpr,
    Param,
    SkipStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from .lexer import LexError, Token, tokenize

__all__ = ["ParseError", "parse_program", "parse_function", "parse_expression"]

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}


class ParseError(ValueError):
    """Raised when the token stream does not match the grammar."""


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # Token utilities
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def at(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind in ("symbol", "keyword")

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise ParseError(f"expected {text!r} but found {token.text!r} at {token.position}")
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind} but found {token.text!r} at {token.position}")
        return self.advance()

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> list[FunctionDef]:
        functions = []
        while self.peek().kind != "eof":
            functions.append(self.parse_function())
        if not functions:
            raise ParseError("empty program")
        return functions

    def parse_function(self) -> FunctionDef:
        if self.at("void") or self.at("int"):
            self.advance()
        name = self.expect_kind("ident").text
        self.expect("(")
        params: list[Param] = []
        if not self.at(")"):
            params.append(self.parse_param())
            while self.at(","):
                self.advance()
                params.append(self.parse_param())
        self.expect(")")
        body = self.parse_block()
        return FunctionDef(name, tuple(params), body)

    def parse_param(self) -> Param:
        self.expect("int")
        is_array = False
        if self.at("*"):
            self.advance()
            is_array = True
        name = self.expect_kind("ident").text
        if self.at("["):
            self.advance()
            if not self.at("]"):
                self.parse_expression()
            self.expect("]")
            is_array = True
        return Param(name, is_array)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_block(self) -> Block:
        self.expect("{")
        statements: list[Stmt] = []
        while not self.at("}"):
            statements.append(self.parse_statement())
        self.expect("}")
        return Block(tuple(statements))

    def parse_statement(self) -> Stmt:
        token = self.peek()
        if self.at("{"):
            return self.parse_block()
        if self.at("int"):
            return self.parse_declaration()
        if self.at("assume"):
            return self.parse_assume()
        if self.at("assert"):
            return self.parse_assert()
        if self.at("if"):
            return self.parse_if()
        if self.at("while"):
            return self.parse_while()
        if self.at("for"):
            return self.parse_for()
        if self.at("skip"):
            self.advance()
            self.expect(";")
            return SkipStmt(position=token.position)
        if self.at(";"):
            self.advance()
            return SkipStmt(position=token.position)
        if self.at("return"):
            self.advance()
            if not self.at(";"):
                self.parse_expression()
            self.expect(";")
            return SkipStmt(position=token.position)
        if token.kind == "ident":
            statement = self.parse_simple_statement()
            self.expect(";")
            return statement
        raise ParseError(f"unexpected token {token.text!r} at {token.position}")

    def parse_declaration(self) -> Stmt:
        position = self.peek().position
        self.expect("int")
        declarations: list[Stmt] = []
        while True:
            name = self.expect_kind("ident").text
            is_array = False
            size: Optional[Expr] = None
            initializer: Optional[Expr] = None
            if self.at("["):
                self.advance()
                if not self.at("]"):
                    size = self.parse_expression()
                self.expect("]")
                is_array = True
            if self.at("="):
                self.advance()
                initializer = self.parse_expression()
            declarations.append(
                DeclStmt(name, is_array=is_array, size=size, initializer=initializer, position=position)
            )
            if self.at(","):
                self.advance()
                continue
            break
        self.expect(";")
        if len(declarations) == 1:
            return declarations[0]
        return Block(tuple(declarations))

    def parse_assume(self) -> Stmt:
        position = self.peek().position
        self.expect("assume")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        self.expect(";")
        return AssumeStmt(condition, position=position)

    def parse_assert(self) -> Stmt:
        position = self.peek().position
        self.expect("assert")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        self.expect(";")
        return AssertStmt(condition, position=position)

    def parse_if(self) -> Stmt:
        position = self.peek().position
        self.expect("if")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        then_branch = self._statement_as_block()
        else_branch = None
        if self.at("else"):
            self.advance()
            else_branch = self._statement_as_block()
        return IfStmt(condition, then_branch, else_branch, position=position)

    def parse_while(self) -> Stmt:
        position = self.peek().position
        self.expect("while")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        body = self._statement_as_block()
        return WhileStmt(condition, body, position=position)

    def parse_for(self) -> Stmt:
        position = self.peek().position
        self.expect("for")
        self.expect("(")
        init: Optional[Stmt] = None
        if not self.at(";"):
            if self.at("int"):
                # Allow "for (int i = 0; ...)": treat as declaration followed
                # by the loop (the declaration is hoisted by the CFG builder).
                init = self.parse_declaration()
                # parse_declaration consumed the ';'
            else:
                init = self.parse_simple_statement()
                self.expect(";")
        else:
            self.expect(";")
        condition: BoolExpr = BoolLiteral(True)
        if not self.at(";"):
            condition = self.parse_condition()
        self.expect(";")
        update: Optional[Stmt] = None
        if not self.at(")"):
            update = self.parse_simple_statement()
        self.expect(")")
        body = self._statement_as_block()
        return ForStmt(init, condition, update, body, position=position)

    def _statement_as_block(self) -> Block:
        statement = self.parse_statement()
        if isinstance(statement, Block):
            return statement
        return Block((statement,))

    def parse_simple_statement(self) -> Stmt:
        """An assignment / increment / array write (without the trailing ';')."""
        position = self.peek().position
        name = self.expect_kind("ident").text
        if self.at("["):
            self.advance()
            index = self.parse_expression()
            self.expect("]")
            self.expect("=")
            value = self.parse_expression()
            return ArrayAssignStmt(name, index, value, position=position)
        if self.at("++"):
            self.advance()
            return AssignStmt(name, BinaryOp("+", VarRef(name), IntLiteral(1)), position=position)
        if self.at("--"):
            self.advance()
            return AssignStmt(name, BinaryOp("-", VarRef(name), IntLiteral(1)), position=position)
        if self.at("+="):
            self.advance()
            value = self.parse_expression()
            return AssignStmt(name, BinaryOp("+", VarRef(name), value), position=position)
        if self.at("-="):
            self.advance()
            value = self.parse_expression()
            return AssignStmt(name, BinaryOp("-", VarRef(name), value), position=position)
        self.expect("=")
        if self.at("nondet"):
            self.advance()
            self.expect("(")
            self.expect(")")
            return HavocStmt(name, position=position)
        value = self.parse_expression()
        return AssignStmt(name, value, position=position)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def parse_condition(self) -> BoolExpr:
        return self.parse_or()

    def parse_or(self) -> BoolExpr:
        left = self.parse_and()
        while self.at("||"):
            self.advance()
            right = self.parse_and()
            left = BoolBinary("||", left, right)
        return left

    def parse_and(self) -> BoolExpr:
        left = self.parse_bool_atom()
        while self.at("&&"):
            self.advance()
            right = self.parse_bool_atom()
            left = BoolBinary("&&", left, right)
        return left

    def parse_bool_atom(self) -> BoolExpr:
        token = self.peek()
        if self.at("!"):
            self.advance()
            return BoolNot(self.parse_bool_atom())
        if self.at("*") and self.peek(1).text in (")", "&&", "||"):
            self.advance()
            return BoolNondet()
        if self.at("true"):
            self.advance()
            return BoolLiteral(True)
        if self.at("false"):
            self.advance()
            return BoolLiteral(False)
        # Try a comparison; fall back to a parenthesised condition.
        saved = self.index
        try:
            left = self.parse_expression()
            op_token = self.peek()
            if op_token.text in _COMPARISON_OPS:
                self.advance()
                right = self.parse_expression()
                return Comparison(op_token.text, left, right)
            raise ParseError(
                f"expected comparison operator at {op_token.position}, found {op_token.text!r}"
            )
        except ParseError:
            self.index = saved
        if self.at("("):
            self.advance()
            inner = self.parse_condition()
            self.expect(")")
            return inner
        raise ParseError(f"cannot parse condition at {token.position} ({token.text!r})")

    # ------------------------------------------------------------------
    # Arithmetic expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expr:
        left = self.parse_term()
        while self.at("+") or self.at("-"):
            op = self.advance().text
            right = self.parse_term()
            left = BinaryOp(op, left, right)
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.at("*"):
            self.advance()
            right = self.parse_factor()
            left = BinaryOp("*", left, right)
        return left

    def parse_factor(self) -> Expr:
        token = self.peek()
        if self.at("-"):
            self.advance()
            return UnaryOp("-", self.parse_factor())
        if token.kind == "number":
            self.advance()
            return IntLiteral(int(token.text))
        if self.at("nondet"):
            self.advance()
            self.expect("(")
            self.expect(")")
            return NondetExpr()
        if token.kind == "ident":
            self.advance()
            if self.at("["):
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                return ArrayRef(token.text, index)
            return VarRef(token.text)
        if self.at("("):
            self.advance()
            inner = self.parse_expression()
            self.expect(")")
            return inner
        raise ParseError(f"unexpected token {token.text!r} at {token.position}")


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def parse_program(source: str) -> list[FunctionDef]:
    """Parse all function definitions of a source file."""
    return _Parser(tokenize(source)).parse_program()


def parse_function(source: str) -> FunctionDef:
    """Parse a source file containing a single function definition."""
    functions = parse_program(source)
    if len(functions) != 1:
        raise ParseError(f"expected exactly one function, found {len(functions)}")
    return functions[0]


def parse_expression(source: str) -> Expr:
    """Parse a standalone arithmetic expression (useful in tests)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    if parser.peek().kind != "eof":
        raise ParseError(f"trailing input after expression: {parser.peek().text!r}")
    return expr
