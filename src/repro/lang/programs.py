"""Built-in benchmark programs.

The first three programs are verbatim translations of the paper's examples
(Figures 1-3).  The remaining programs form the extended suite used by the
Section-6 style comparison (programs whose proofs need quantified or
relational loop invariants, plus buggy variants that exercise the
falsification path of the CEGAR loop).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cfg import Program, program_from_source

__all__ = [
    "BenchmarkProgram",
    "PROGRAMS",
    "FORWARD",
    "INITCHECK",
    "PARTITION",
    "get_program",
    "get_source",
    "list_programs",
    "safe_programs",
    "unsafe_programs",
]


# ----------------------------------------------------------------------
# The paper's examples
# ----------------------------------------------------------------------

#: Figure 1(a): the correctness argument couples the counter with the data
#: variables (`a + b == 3 * i` throughout the loop).
FORWARD = """
void forward(int n) {
  int i, a, b;
  assume(n >= 0);
  i = 0;
  a = 0;
  b = 0;
  while (i < n) {
    if (*) {
      a = a + 1;
      b = b + 2;
    } else {
      a = a + 2;
      b = b + 1;
    }
    i = i + 1;
  }
  assert(a + b == 3 * n);
}
"""

#: Figure 2(a): initialise an array and then check every element; the proof
#: needs the universally quantified invariant `forall k: 0 <= k < i -> a[k] = 0`.
INITCHECK = """
void init_check(int a[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = 0;
  }
  for (i = 0; i < n; i++) {
    assert(a[i] == 0);
  }
}
"""

#: Figure 3: partition an array into non-negative and negative elements; the
#: proof needs one quantified invariant per output array, found by two
#: successive path programs.
PARTITION = """
void partition(int a[], int n) {
  int i, gelen, ltlen;
  int ge[n], lt[n];
  gelen = 0;
  ltlen = 0;
  for (i = 0; i < n; i++) {
    if (a[i] >= 0) {
      ge[gelen] = a[i];
      gelen = gelen + 1;
    } else {
      lt[ltlen] = a[i];
      ltlen = ltlen + 1;
    }
  }
  for (i = 0; i < gelen; i++) {
    assert(ge[i] >= 0);
  }
  for (i = 0; i < ltlen; i++) {
    assert(lt[i] < 0);
  }
}
"""

#: Section 6: the buggy variant of INITCHECK (there *is* an error trace).
INITCHECK_BUGGY = """
void init_check_buggy(int a[]) {
  int i;
  for (i = 0; i < 100; i++) {
    a[i] = 1;
  }
  assert(a[0] == 0);
}
"""


# ----------------------------------------------------------------------
# Extended suite
# ----------------------------------------------------------------------

FORWARD_BUGGY = """
void forward_buggy(int n) {
  int i, a, b;
  assume(n >= 1);
  i = 0;
  a = 0;
  b = 0;
  while (i < n) {
    if (*) {
      a = a + 1;
      b = b + 2;
    } else {
      a = a + 2;
      b = b + 1;
    }
    i = i + 1;
  }
  assert(a + b == 3 * n + 1);
}
"""

DOUBLE_COUNTER = """
void double_counter(int n) {
  int i, a;
  assume(n >= 0);
  i = 0;
  a = 0;
  while (i < n) {
    a = a + 2;
    i = i + 1;
  }
  assert(a == 2 * n);
}
"""

UP_DOWN = """
void up_down(int n) {
  int i, x, y;
  assume(n >= 0);
  i = 0;
  x = 0;
  y = n;
  while (i < n) {
    x = x + 1;
    y = y - 1;
    i = i + 1;
  }
  assert(x + y == n);
}
"""

ARRAY_INIT_CONST = """
void array_init_const(int a[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = 5;
  }
  for (i = 0; i < n; i++) {
    assert(a[i] == 5);
  }
}
"""

ARRAY_INIT_VAR = """
void array_init_var(int a[], int n, int c) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = c;
  }
  for (i = 0; i < n; i++) {
    assert(a[i] == c);
  }
}
"""

ARRAY_INIT_NONNEG = """
void array_init_nonneg(int a[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = i;
  }
  for (i = 0; i < n; i++) {
    assert(a[i] >= 0);
  }
}
"""

ARRAY_COPY = """
void array_copy(int a[], int b[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    b[i] = a[i];
  }
  for (i = 0; i < n; i++) {
    assert(b[i] == a[i]);
  }
}
"""

ARRAY_INIT_BUGGY = """
void array_init_buggy(int a[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = 1;
  }
  for (i = 0; i < n; i++) {
    assert(a[i] == 0);
  }
}
"""

SIMPLE_SAFE = """
void simple_safe(int x) {
  int y;
  assume(x >= 0);
  y = x + 1;
  assert(y >= 1);
}
"""

SIMPLE_UNSAFE = """
void simple_unsafe(int x) {
  int y;
  assume(x >= 0);
  y = x - 1;
  assert(y >= 0);
}
"""

DIAMOND_SAFE = """
void diamond_safe(int x) {
  int y;
  if (x >= 0) {
    y = x;
  } else {
    y = 0 - x;
  }
  assert(y >= 0);
}
"""

LOCK_STEP = """
void lock_step(int n) {
  int i, j;
  assume(n >= 0);
  i = 0;
  j = 0;
  while (i < n) {
    i = i + 1;
    j = j + 1;
  }
  assert(i == j);
}
"""


@dataclass(frozen=True)
class BenchmarkProgram:
    """A named benchmark with its expected verification verdict."""

    name: str
    source: str
    expected_safe: bool
    needs_quantifiers: bool
    description: str


PROGRAMS: dict[str, BenchmarkProgram] = {
    program.name: program
    for program in [
        BenchmarkProgram(
            "forward", FORWARD, True, False,
            "Figure 1(a): counter/data coupling, invariant a+b = 3i",
        ),
        BenchmarkProgram(
            "initcheck", INITCHECK, True, True,
            "Figure 2(a): initialise-then-check array, quantified invariant",
        ),
        BenchmarkProgram(
            "partition", PARTITION, True, True,
            "Figure 3: partition into non-negative/negative arrays",
        ),
        BenchmarkProgram(
            "initcheck_buggy", INITCHECK_BUGGY, False, False,
            "Section 6: buggy variant of INITCHECK with a real error trace",
        ),
        BenchmarkProgram(
            "forward_buggy", FORWARD_BUGGY, False, False,
            "FORWARD with an off-by-one assertion (real bug)",
        ),
        BenchmarkProgram(
            "double_counter", DOUBLE_COUNTER, True, False,
            "Single counter doubled each iteration, invariant a = 2i",
        ),
        BenchmarkProgram(
            "up_down", UP_DOWN, True, False,
            "Two counters moving in opposite directions, invariant x+y = n",
        ),
        BenchmarkProgram(
            "array_init_const", ARRAY_INIT_CONST, True, True,
            "INITCHECK with a non-zero constant",
        ),
        BenchmarkProgram(
            "array_init_var", ARRAY_INIT_VAR, True, True,
            "INITCHECK with a symbolic fill value",
        ),
        BenchmarkProgram(
            "array_init_nonneg", ARRAY_INIT_NONNEG, True, True,
            "Array filled with the loop counter, inequality assertion",
        ),
        BenchmarkProgram(
            "array_copy", ARRAY_COPY, True, True,
            "Copy one array into another and check element-wise equality",
        ),
        BenchmarkProgram(
            "array_init_buggy", ARRAY_INIT_BUGGY, False, False,
            "Initialise with 1 but assert 0 (real bug)",
        ),
        BenchmarkProgram(
            "simple_safe", SIMPLE_SAFE, True, False,
            "Loop-free arithmetic, safe",
        ),
        BenchmarkProgram(
            "simple_unsafe", SIMPLE_UNSAFE, False, False,
            "Loop-free arithmetic, unsafe (x = 0 violates the assertion)",
        ),
        BenchmarkProgram(
            "diamond_safe", DIAMOND_SAFE, True, False,
            "Branching absolute value, safe",
        ),
        BenchmarkProgram(
            "lock_step", LOCK_STEP, True, False,
            "Two counters in lock step, invariant i = j",
        ),
    ]
}


def get_source(name: str) -> str:
    """Source text of a built-in benchmark."""
    return PROGRAMS[name].source


def get_program(name: str, do_compact: bool = True) -> Program:
    """The transition system of a built-in benchmark."""
    return program_from_source(PROGRAMS[name].source, do_compact=do_compact)


def list_programs() -> list[str]:
    return sorted(PROGRAMS)


def safe_programs() -> list[str]:
    return [name for name, program in sorted(PROGRAMS.items()) if program.expected_safe]


def unsafe_programs() -> list[str]:
    return [name for name, program in sorted(PROGRAMS.items()) if not program.expected_safe]
