"""Control-flow graphs / transition systems.

A program is represented exactly as in Section 3 of the paper:
``P = (X, locs, l0, T, lE)`` where every transition ``(l, rho, l')`` is
labelled by a sequence of primitive commands (the constraint ``rho`` is the
relational semantics of that sequence).  The builder translates the surface
AST into this representation, creating a fresh location per primitive
statement, and a compaction pass then merges straight-line chains so that the
location structure matches the paper's per-program-point labels (L0 ... L5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..logic.formulas import (
    FALSE,
    Formula,
    TRUE,
    conjoin,
    disjoin,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
    negate,
)
from ..logic.terms import LinExpr
from .ast import (
    ArrayAssignStmt,
    ArrayRef,
    AssertStmt,
    AssignStmt,
    AssumeStmt,
    BinaryOp,
    Block,
    BoolBinary,
    BoolExpr,
    BoolLiteral,
    BoolNondet,
    BoolNot,
    Comparison,
    DeclStmt,
    Expr,
    ForStmt,
    FunctionDef,
    HavocStmt,
    IfStmt,
    IntLiteral,
    NondetExpr,
    SkipStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from .commands import ArrayAssign, Assign, Assume, Command, Havoc, Skip
from .parser import parse_function
from .typecheck import SymbolTable, check_function

__all__ = [
    "Location",
    "Transition",
    "Program",
    "CfgBuildError",
    "build_program",
    "program_from_source",
    "compact",
    "expr_to_linexpr",
    "condition_to_formula",
]


class CfgBuildError(ValueError):
    """Raised when the AST cannot be translated (e.g. non-linear arithmetic)."""


@dataclass(frozen=True, order=True)
class Location:
    """A control location."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Transition:
    """An edge ``source --commands--> target``."""

    source: Location
    commands: tuple[Command, ...]
    target: Location

    def __str__(self) -> str:
        label = "; ".join(str(c) for c in self.commands) or "skip"
        return f"{self.source} --[{label}]--> {self.target}"


@dataclass
class Program:
    """A transition system ``(X, locs, l0, T, lE)``."""

    name: str
    variables: tuple[str, ...]
    arrays: tuple[str, ...]
    locations: tuple[Location, ...]
    initial: Location
    error: Location
    transitions: tuple[Transition, ...]

    # ------------------------------------------------------------------
    def outgoing(self, location: Location) -> list[Transition]:
        return [t for t in self.transitions if t.source == location]

    def incoming(self, location: Location) -> list[Transition]:
        return [t for t in self.transitions if t.target == location]

    def successors(self, location: Location) -> list[Location]:
        return [t.target for t in self.outgoing(location)]

    def predecessors(self, location: Location) -> list[Location]:
        return [t.source for t in self.incoming(location)]

    def location_by_name(self, name: str) -> Location:
        for location in self.locations:
            if location.name == name:
                return location
        raise KeyError(name)

    def reachable_locations(self) -> set[Location]:
        """Locations reachable from the initial location in the graph."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            location = frontier.pop()
            for transition in self.outgoing(location):
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
        return seen

    def back_edges(self) -> set[Transition]:
        """Transitions that close a cycle in a DFS from the initial location."""
        back: set[Transition] = set()
        color: dict[Location, int] = {}

        def dfs(location: Location) -> None:
            color[location] = 1
            for transition in self.outgoing(location):
                target = transition.target
                if color.get(target, 0) == 0:
                    dfs(target)
                elif color.get(target) == 1:
                    back.add(transition)
            color[location] = 2

        dfs(self.initial)
        return back

    def loop_heads(self) -> set[Location]:
        """Targets of back edges."""
        return {t.target for t in self.back_edges()}

    def stats(self) -> dict[str, int]:
        return {
            "locations": len(self.locations),
            "transitions": len(self.transitions),
            "variables": len(self.variables),
            "arrays": len(self.arrays),
        }


# ----------------------------------------------------------------------
# Expression and condition translation
# ----------------------------------------------------------------------
def expr_to_linexpr(expr: Expr) -> LinExpr:
    """Translate an arithmetic AST expression into a linear expression."""
    if isinstance(expr, IntLiteral):
        return LinExpr.constant(expr.value)
    if isinstance(expr, VarRef):
        return LinExpr.variable(expr.name)
    if isinstance(expr, ArrayRef):
        return LinExpr.array_read(expr.array, expr_to_linexpr(expr.index))
    if isinstance(expr, UnaryOp):
        if expr.op != "-":
            raise CfgBuildError(f"unsupported unary operator {expr.op!r}")
        return -expr_to_linexpr(expr.operand)
    if isinstance(expr, NondetExpr):
        raise CfgBuildError("nondet() may only appear as the sole right-hand side")
    if isinstance(expr, BinaryOp):
        left = expr_to_linexpr(expr.left)
        right = expr_to_linexpr(expr.right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant():
                return right.scale(left.const)
            if right.is_constant():
                return left.scale(right.const)
            raise CfgBuildError(f"non-linear multiplication: {expr}")
        raise CfgBuildError(f"unsupported operator {expr.op!r}")
    raise CfgBuildError(f"unexpected expression {expr!r}")


def condition_to_formula(condition: BoolExpr) -> Formula:
    """Translate a boolean AST condition into a formula.

    The nondeterministic condition ``*`` translates to ``true`` (both of its
    branches are enabled), matching the paper's treatment of the unmodelled
    branch in FORWARD.
    """
    if isinstance(condition, BoolLiteral):
        return TRUE if condition.value else FALSE
    if isinstance(condition, BoolNondet):
        return TRUE
    if isinstance(condition, BoolNot):
        inner = condition.operand
        if isinstance(inner, BoolNondet):
            return TRUE
        return negate(condition_to_formula(inner))
    if isinstance(condition, BoolBinary):
        left = condition_to_formula(condition.left)
        right = condition_to_formula(condition.right)
        if condition.op == "&&":
            return conjoin([left, right])
        return disjoin([left, right])
    if isinstance(condition, Comparison):
        left = expr_to_linexpr(condition.left)
        right = expr_to_linexpr(condition.right)
        table = {"==": eq, "!=": ne, "<": lt, "<=": le, ">": gt, ">=": ge}
        if condition.op not in table:
            raise CfgBuildError(f"unsupported comparison {condition.op!r}")
        return table[condition.op](left, right)
    raise CfgBuildError(f"unexpected condition {condition!r}")


def negated_condition_to_formula(condition: BoolExpr) -> Formula:
    """The formula of ``!condition`` (with ``*`` again mapping to ``true``).

    A nondeterministic sub-condition makes the whole negated guard
    nondeterministic: both branches must stay enabled, so the negation is
    over-approximated by ``true`` (sound for safety checking).
    """
    if _contains_nondet(condition):
        return TRUE
    return negate(condition_to_formula(condition))


def _contains_nondet(condition: BoolExpr) -> bool:
    if isinstance(condition, BoolNondet):
        return True
    if isinstance(condition, BoolNot):
        return _contains_nondet(condition.operand)
    if isinstance(condition, BoolBinary):
        return _contains_nondet(condition.left) or _contains_nondet(condition.right)
    return False


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class _Builder:
    def __init__(self, function: FunctionDef, table: SymbolTable) -> None:
        self.function = function
        self.table = table
        self.transitions: list[Transition] = []
        self.locations: list[Location] = []
        self._counter = itertools.count()
        self._aux_counter = itertools.count()
        self.aux_variables: list[str] = []
        self.initial = self.new_location("entry")
        self.error = Location("ERR")
        self.locations.append(self.error)

    # -- helpers ---------------------------------------------------------
    def new_location(self, hint: str = "L") -> Location:
        location = Location(f"L{next(self._counter)}")
        self.locations.append(location)
        return location

    def add_edge(self, source: Location, commands: Sequence[Command], target: Location) -> None:
        self.transitions.append(Transition(source, tuple(commands), target))

    def fresh_aux(self) -> str:
        name = f"__nd{next(self._aux_counter)}"
        self.aux_variables.append(name)
        self.table.scalars.add(name)
        return name

    # -- expression lowering (handles nondet() on right-hand sides) -------
    def lower_expr(self, expr: Expr, pending: list[Command]) -> LinExpr:
        if isinstance(expr, NondetExpr):
            aux = self.fresh_aux()
            pending.append(Havoc((aux,)))
            return LinExpr.variable(aux)
        if isinstance(expr, BinaryOp):
            left = self.lower_expr(expr.left, pending)
            right = self.lower_expr(expr.right, pending)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                if left.is_constant():
                    return right.scale(left.const)
                if right.is_constant():
                    return left.scale(right.const)
                raise CfgBuildError(f"non-linear multiplication: {expr}")
            raise CfgBuildError(f"unsupported operator {expr.op!r}")
        if isinstance(expr, UnaryOp):
            return -self.lower_expr(expr.operand, pending)
        return expr_to_linexpr(expr)

    # -- statement translation --------------------------------------------
    def build(self) -> Program:
        exit_location = self.translate_block(self.function.body, self.initial)
        # The function exit is an ordinary location with no outgoing edges.
        variables = tuple(sorted(self.table.scalars))
        arrays = tuple(sorted(self.table.arrays))
        return Program(
            name=self.function.name,
            variables=variables,
            arrays=arrays,
            locations=tuple(self.locations),
            initial=self.initial,
            error=self.error,
            transitions=tuple(self.transitions),
        )

    def translate_block(self, block: Block, entry: Location) -> Location:
        current = entry
        for statement in block:
            current = self.translate_statement(statement, current)
        return current

    def translate_statement(self, statement: Stmt, entry: Location) -> Location:
        if isinstance(statement, (SkipStmt,)):
            return entry
        if isinstance(statement, Block):
            return self.translate_block(statement, entry)
        if isinstance(statement, DeclStmt):
            if statement.initializer is not None:
                pending: list[Command] = []
                value = self.lower_expr(statement.initializer, pending)
                target = self.new_location()
                self.add_edge(entry, pending + [Assign(statement.name, value)], target)
                return target
            return entry
        if isinstance(statement, AssignStmt):
            pending = []
            value = self.lower_expr(statement.value, pending)
            target = self.new_location()
            self.add_edge(entry, pending + [Assign(statement.target, value)], target)
            return target
        if isinstance(statement, HavocStmt):
            target = self.new_location()
            self.add_edge(entry, [Havoc((statement.target,))], target)
            return target
        if isinstance(statement, ArrayAssignStmt):
            pending = []
            index = self.lower_expr(statement.index, pending)
            value = self.lower_expr(statement.value, pending)
            target = self.new_location()
            self.add_edge(entry, pending + [ArrayAssign(statement.array, index, value)], target)
            return target
        if isinstance(statement, AssumeStmt):
            target = self.new_location()
            self.add_edge(entry, [Assume(condition_to_formula(statement.condition))], target)
            return target
        if isinstance(statement, AssertStmt):
            target = self.new_location()
            self.add_edge(entry, [Assume(negated_condition_to_formula(statement.condition))], self.error)
            self.add_edge(entry, [Assume(condition_to_formula(statement.condition))], target)
            return target
        if isinstance(statement, IfStmt):
            return self.translate_if(statement, entry)
        if isinstance(statement, WhileStmt):
            return self.translate_while(statement, entry)
        if isinstance(statement, ForStmt):
            return self.translate_for(statement, entry)
        raise CfgBuildError(f"unexpected statement {statement!r}")

    def translate_if(self, statement: IfStmt, entry: Location) -> Location:
        then_entry = self.new_location()
        else_entry = self.new_location()
        join = self.new_location()
        self.add_edge(entry, [Assume(condition_to_formula(statement.condition))], then_entry)
        self.add_edge(entry, [Assume(negated_condition_to_formula(statement.condition))], else_entry)
        then_exit = self.translate_block(statement.then_branch, then_entry)
        self.add_edge(then_exit, [Skip()], join)
        if statement.else_branch is not None:
            else_exit = self.translate_block(statement.else_branch, else_entry)
            self.add_edge(else_exit, [Skip()], join)
        else:
            self.add_edge(else_entry, [Skip()], join)
        return join

    def translate_while(self, statement: WhileStmt, entry: Location) -> Location:
        head = self.new_location()
        body_entry = self.new_location()
        exit_location = self.new_location()
        self.add_edge(entry, [Skip()], head)
        self.add_edge(head, [Assume(condition_to_formula(statement.condition))], body_entry)
        self.add_edge(head, [Assume(negated_condition_to_formula(statement.condition))], exit_location)
        body_exit = self.translate_block(statement.body, body_entry)
        self.add_edge(body_exit, [Skip()], head)
        return exit_location

    def translate_for(self, statement: ForStmt, entry: Location) -> Location:
        current = entry
        if statement.init is not None:
            current = self.translate_statement(statement.init, current)
        head = self.new_location()
        body_entry = self.new_location()
        exit_location = self.new_location()
        self.add_edge(current, [Skip()], head)
        self.add_edge(head, [Assume(condition_to_formula(statement.condition))], body_entry)
        self.add_edge(head, [Assume(negated_condition_to_formula(statement.condition))], exit_location)
        body_exit = self.translate_block(statement.body, body_entry)
        if statement.update is not None:
            body_exit = self.translate_statement(statement.update, body_exit)
        self.add_edge(body_exit, [Skip()], head)
        return exit_location


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def compact(program: Program) -> Program:
    """Merge straight-line chains of locations and drop no-op skips.

    A location is merged into its predecessor when it has exactly one
    incoming and one outgoing transition and is neither the initial, error,
    nor a location with a self-loop.  The result has the coarse location
    structure of the paper's figures (one location per program point that
    matters for control flow).
    """
    transitions = list(program.transitions)
    changed = True
    while changed:
        changed = False
        # Sorted by name: set iteration order varies with the interpreter's
        # hash seed, and the merge sequence determines the final transition
        # *order* — which seeds the frontier and hence the exploration
        # micro-order.  Sorting makes the emitted transition system (and
        # every downstream post-decision count) hash-seed-independent.
        for location in sorted(
            _intermediate_locations(program, transitions), key=lambda l: l.name
        ):
            incoming = [t for t in transitions if t.target == location]
            outgoing = [t for t in transitions if t.source == location]
            if len(incoming) != 1 or len(outgoing) != 1:
                continue
            before, after = incoming[0], outgoing[0]
            if before.source == location or after.target == location:
                continue  # self loop
            merged = Transition(
                before.source,
                _strip_skips(before.commands + after.commands),
                after.target,
            )
            transitions.remove(before)
            transitions.remove(after)
            transitions.append(merged)
            changed = True

    # Also normalise command lists on remaining transitions.
    transitions = [
        Transition(t.source, _strip_skips(t.commands), t.target) for t in transitions
    ]
    used_locations = {program.initial, program.error}
    for transition in transitions:
        used_locations.add(transition.source)
        used_locations.add(transition.target)
    locations = tuple(sorted(used_locations, key=lambda l: l.name))
    return replace(
        program,
        locations=locations,
        transitions=tuple(transitions),
    )


def _strip_skips(commands: Sequence[Command]) -> tuple[Command, ...]:
    stripped = tuple(c for c in commands if not isinstance(c, Skip))
    return stripped if stripped else (Skip(),)


def _intermediate_locations(program: Program, transitions: list[Transition]) -> set[Location]:
    locations = set()
    for transition in transitions:
        locations.add(transition.source)
        locations.add(transition.target)
    locations.discard(program.initial)
    locations.discard(program.error)
    return locations


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def build_program(function: FunctionDef, do_compact: bool = True) -> Program:
    """Translate a parsed function into a transition system."""
    table = check_function(function)
    program = _Builder(function, table).build()
    if do_compact:
        program = compact(program)
    return program


def program_from_source(source: str, do_compact: bool = True) -> Program:
    """Parse a single-function source text and build its transition system."""
    return build_program(parse_function(source), do_compact=do_compact)
