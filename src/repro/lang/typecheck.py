"""Symbol resolution and static checks for the surface language.

The checker collects the scalar and array symbols of a function, verifies
that every use is consistent with its declaration (scalars are not indexed,
arrays are only used indexed), and rejects obviously non-linear arithmetic
(products of two non-constant expressions), which the logic layer cannot
represent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .ast import (
    ArrayAssignStmt,
    ArrayRef,
    AssertStmt,
    AssignStmt,
    AssumeStmt,
    BinaryOp,
    Block,
    BoolBinary,
    BoolExpr,
    BoolLiteral,
    BoolNondet,
    BoolNot,
    Comparison,
    DeclStmt,
    Expr,
    ForStmt,
    FunctionDef,
    HavocStmt,
    IfStmt,
    IntLiteral,
    NondetExpr,
    SkipStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WhileStmt,
)

__all__ = ["SymbolTable", "TypeCheckError", "check_function"]


class TypeCheckError(ValueError):
    """Raised when a program violates the static rules of the language."""


@dataclass
class SymbolTable:
    """Declared symbols of a function."""

    scalars: set[str] = field(default_factory=set)
    arrays: set[str] = field(default_factory=set)

    def declare_scalar(self, name: str) -> None:
        if name in self.arrays:
            raise TypeCheckError(f"{name!r} is already declared as an array")
        self.scalars.add(name)

    def declare_array(self, name: str) -> None:
        if name in self.scalars:
            raise TypeCheckError(f"{name!r} is already declared as a scalar")
        self.arrays.add(name)

    def require_scalar(self, name: str) -> None:
        if name in self.arrays:
            raise TypeCheckError(f"array {name!r} used as a scalar")
        if name not in self.scalars:
            raise TypeCheckError(f"undeclared variable {name!r}")

    def require_array(self, name: str) -> None:
        if name in self.scalars:
            raise TypeCheckError(f"scalar {name!r} used as an array")
        if name not in self.arrays:
            raise TypeCheckError(f"undeclared array {name!r}")


def check_function(function: FunctionDef) -> SymbolTable:
    """Check a function and return its symbol table."""
    table = SymbolTable()
    for param in function.params:
        if param.is_array:
            table.declare_array(param.name)
        else:
            table.declare_scalar(param.name)
    _collect_declarations(function.body, table)
    _check_block(function.body, table)
    return table


def _collect_declarations(block: Block, table: SymbolTable) -> None:
    for statement in block:
        if isinstance(statement, DeclStmt):
            if statement.is_array:
                table.declare_array(statement.name)
            else:
                table.declare_scalar(statement.name)
        elif isinstance(statement, Block):
            _collect_declarations(statement, table)
        elif isinstance(statement, IfStmt):
            _collect_declarations(statement.then_branch, table)
            if statement.else_branch is not None:
                _collect_declarations(statement.else_branch, table)
        elif isinstance(statement, WhileStmt):
            _collect_declarations(statement.body, table)
        elif isinstance(statement, ForStmt):
            if isinstance(statement.init, DeclStmt):
                table.declare_scalar(statement.init.name)
            elif isinstance(statement.init, Block):
                _collect_declarations(statement.init, table)
            _collect_declarations(statement.body, table)


def _check_block(block: Block, table: SymbolTable) -> None:
    for statement in block:
        _check_statement(statement, table)


def _check_statement(statement: Stmt, table: SymbolTable) -> None:
    if isinstance(statement, (SkipStmt,)):
        return
    if isinstance(statement, DeclStmt):
        if statement.size is not None:
            _check_expr(statement.size, table)
        if statement.initializer is not None:
            if statement.is_array:
                raise TypeCheckError(f"array {statement.name!r} cannot have an initializer")
            _check_expr(statement.initializer, table)
        return
    if isinstance(statement, AssignStmt):
        table.require_scalar(statement.target)
        _check_expr(statement.value, table)
        return
    if isinstance(statement, HavocStmt):
        table.require_scalar(statement.target)
        return
    if isinstance(statement, ArrayAssignStmt):
        table.require_array(statement.array)
        _check_expr(statement.index, table)
        _check_expr(statement.value, table)
        return
    if isinstance(statement, (AssumeStmt, AssertStmt)):
        _check_condition(statement.condition, table)
        return
    if isinstance(statement, IfStmt):
        _check_condition(statement.condition, table)
        _check_block(statement.then_branch, table)
        if statement.else_branch is not None:
            _check_block(statement.else_branch, table)
        return
    if isinstance(statement, WhileStmt):
        _check_condition(statement.condition, table)
        _check_block(statement.body, table)
        return
    if isinstance(statement, ForStmt):
        if statement.init is not None:
            _check_statement(statement.init, table)
        _check_condition(statement.condition, table)
        if statement.update is not None:
            _check_statement(statement.update, table)
        _check_block(statement.body, table)
        return
    if isinstance(statement, Block):
        _check_block(statement, table)
        return
    raise TypeCheckError(f"unexpected statement {statement!r}")


def _check_condition(condition: BoolExpr, table: SymbolTable) -> None:
    if isinstance(condition, (BoolNondet, BoolLiteral)):
        return
    if isinstance(condition, BoolNot):
        _check_condition(condition.operand, table)
        return
    if isinstance(condition, BoolBinary):
        _check_condition(condition.left, table)
        _check_condition(condition.right, table)
        return
    if isinstance(condition, Comparison):
        _check_expr(condition.left, table)
        _check_expr(condition.right, table)
        return
    raise TypeCheckError(f"unexpected condition {condition!r}")


def _check_expr(expr: Expr, table: SymbolTable) -> None:
    if isinstance(expr, (IntLiteral, NondetExpr)):
        return
    if isinstance(expr, VarRef):
        table.require_scalar(expr.name)
        return
    if isinstance(expr, ArrayRef):
        table.require_array(expr.array)
        _check_expr(expr.index, table)
        return
    if isinstance(expr, UnaryOp):
        _check_expr(expr.operand, table)
        return
    if isinstance(expr, BinaryOp):
        _check_expr(expr.left, table)
        _check_expr(expr.right, table)
        if expr.op == "*" and not (_is_constant(expr.left) or _is_constant(expr.right)):
            raise TypeCheckError(f"non-linear multiplication: {expr}")
        return
    raise TypeCheckError(f"unexpected expression {expr!r}")


def _is_constant(expr: Expr) -> bool:
    if isinstance(expr, IntLiteral):
        return True
    if isinstance(expr, UnaryOp):
        return _is_constant(expr.operand)
    if isinstance(expr, BinaryOp):
        return _is_constant(expr.left) and _is_constant(expr.right)
    return False
