"""Primitive program commands.

Control-flow-graph edges are labelled with sequences of these commands.  The
representation is deliberately structured (rather than raw transition
constraints over ``X`` and ``X'``) because every client — the path-formula
builder, the verification-condition generator, the strongest-postcondition
engine and the invariant synthesizer — needs to know *which* variable or array
cell an edge updates.  The relational view of the paper (a constraint ``rho``
over ``X`` and ``X'``) is recovered by :func:`relation_formula`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic.formulas import Atom, Formula, TRUE, conjoin, eq
from ..logic.terms import ArrayRead, LinExpr, Var

__all__ = [
    "Command",
    "Assume",
    "Assign",
    "ArrayAssign",
    "Havoc",
    "Skip",
    "command_reads",
    "command_writes",
    "commands_variables",
    "commands_arrays",
    "relation_formula",
    "pretty_command",
]


class Command:
    """Base class of primitive commands (frozen dataclass subclasses)."""


@dataclass(frozen=True)
class Assume(Command):
    """``assume(cond)`` — block execution unless ``cond`` holds."""

    cond: Formula

    def __str__(self) -> str:
        return f"[{self.cond}]"


@dataclass(frozen=True)
class Assign(Command):
    """``var := expr`` for a scalar variable."""

    var: str
    expr: LinExpr

    def __str__(self) -> str:
        return f"{self.var} := {self.expr}"


@dataclass(frozen=True)
class ArrayAssign(Command):
    """``array[index] := value``."""

    array: str
    index: LinExpr
    value: LinExpr

    def __str__(self) -> str:
        return f"{self.array}[{self.index}] := {self.value}"


@dataclass(frozen=True)
class Havoc(Command):
    """Nondeterministically update the listed scalar variables."""

    vars: tuple[str, ...]

    def __str__(self) -> str:
        return f"havoc({', '.join(self.vars)})"


@dataclass(frozen=True)
class Skip(Command):
    """No-op."""

    def __str__(self) -> str:
        return "skip"


def command_reads(cmd: Command) -> set[str]:
    """Names of scalar variables and arrays read by a command."""
    if isinstance(cmd, Assume):
        names = {v.name for v in cmd.cond.variables()}
        names |= cmd.cond.arrays()
        return names
    if isinstance(cmd, Assign):
        names = {v.name for v in cmd.expr.variables()}
        names |= cmd.expr.arrays()
        return names
    if isinstance(cmd, ArrayAssign):
        names = {v.name for v in cmd.index.variables()} | {
            v.name for v in cmd.value.variables()
        }
        names |= cmd.index.arrays() | cmd.value.arrays()
        return names
    return set()


def command_writes(cmd: Command) -> set[str]:
    """Names of scalar variables and arrays written by a command."""
    if isinstance(cmd, Assign):
        return {cmd.var}
    if isinstance(cmd, ArrayAssign):
        return {cmd.array}
    if isinstance(cmd, Havoc):
        return set(cmd.vars)
    return set()


def commands_variables(cmds: Iterable[Command]) -> set[str]:
    """All scalar-variable and array names mentioned by a command sequence."""
    names: set[str] = set()
    for cmd in cmds:
        names |= command_reads(cmd) | command_writes(cmd)
    return names


def commands_arrays(cmds: Iterable[Command]) -> set[str]:
    """Array names mentioned by a command sequence."""
    arrays: set[str] = set()
    for cmd in cmds:
        if isinstance(cmd, ArrayAssign):
            arrays.add(cmd.array)
            arrays |= cmd.index.arrays() | cmd.value.arrays()
        elif isinstance(cmd, Assume):
            arrays |= cmd.cond.arrays()
        elif isinstance(cmd, Assign):
            arrays |= cmd.expr.arrays()
    return arrays


def relation_formula(cmd: Command, frame: Sequence[str] = ()) -> Formula:
    """The transition constraint ``rho`` over ``X`` and ``X'`` for one command.

    Array assignments are *not* expressible as a finite formula in our logic
    (they would need a ``store`` term); callers that need the relational view
    of an array write must use the SSA machinery in :mod:`repro.smt.ssa`.
    ``frame`` lists variables that should be explicitly framed (``x' = x``).
    """
    parts: list[Formula] = []
    if isinstance(cmd, Assume):
        parts.append(cmd.cond)
        written: set[str] = set()
    elif isinstance(cmd, Assign):
        parts.append(eq(LinExpr.variable(Var(cmd.var).primed()), cmd.expr))
        written = {cmd.var}
    elif isinstance(cmd, Havoc):
        written = set(cmd.vars)
    elif isinstance(cmd, Skip):
        written = set()
    elif isinstance(cmd, ArrayAssign):
        raise ValueError(
            "array assignments have no finite relational formula; use repro.smt.ssa"
        )
    else:
        raise TypeError(f"unexpected command {cmd!r}")
    for name in frame:
        if name not in written:
            parts.append(eq(LinExpr.variable(Var(name).primed()), LinExpr.variable(name)))
    return conjoin(parts)


def pretty_command(cmd: Command) -> str:
    """A single-line rendering used by the CFG pretty printer."""
    return str(cmd)
