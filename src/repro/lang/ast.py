"""Abstract syntax trees of the mini-C surface language.

The surface language is the fragment of C that the paper's examples use:
integer scalars and integer arrays, ``assume``/``assert`` statements,
structured control flow (``if``/``else``, ``while``, ``for``), linear
arithmetic expressions and boolean conditions, plus the nondeterministic
condition ``*`` (used in FORWARD for the unmodelled branch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "Expr",
    "IntLiteral",
    "VarRef",
    "ArrayRef",
    "BinaryOp",
    "UnaryOp",
    "NondetExpr",
    "BoolExpr",
    "Comparison",
    "BoolBinary",
    "BoolNot",
    "BoolNondet",
    "BoolLiteral",
    "Stmt",
    "DeclStmt",
    "AssignStmt",
    "ArrayAssignStmt",
    "HavocStmt",
    "AssumeStmt",
    "AssertStmt",
    "IfStmt",
    "WhileStmt",
    "ForStmt",
    "Block",
    "SkipStmt",
    "Param",
    "FunctionDef",
    "SourcePosition",
]


@dataclass(frozen=True)
class SourcePosition:
    """Line/column of a syntactic element (1-based)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


# ----------------------------------------------------------------------
# Arithmetic expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of arithmetic expressions."""


@dataclass(frozen=True)
class IntLiteral(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    array: str
    index: Expr

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # '+', '-', '*'
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class NondetExpr(Expr):
    """An arbitrary integer value (``nondet()``)."""

    def __str__(self) -> str:
        return "nondet()"


# ----------------------------------------------------------------------
# Boolean expressions
# ----------------------------------------------------------------------
class BoolExpr:
    """Base class of boolean conditions."""


@dataclass(frozen=True)
class Comparison(BoolExpr):
    op: str  # '==', '!=', '<', '<=', '>', '>='
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BoolBinary(BoolExpr):
    op: str  # '&&', '||'
    left: BoolExpr
    right: BoolExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolNot(BoolExpr):
    operand: BoolExpr

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class BoolNondet(BoolExpr):
    """The unmodelled condition ``*`` (either branch may be taken)."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class BoolLiteral(BoolExpr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class DeclStmt(Stmt):
    """``int x;`` or ``int x = e;`` or ``int a[n];``."""

    name: str
    is_array: bool = False
    size: Optional[Expr] = None
    initializer: Optional[Expr] = None
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class AssignStmt(Stmt):
    target: str
    value: Expr
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class ArrayAssignStmt(Stmt):
    array: str
    index: Expr
    value: Expr
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class HavocStmt(Stmt):
    """``x = nondet();`` is represented as a havoc of ``x``."""

    target: str
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class AssumeStmt(Stmt):
    condition: BoolExpr
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class AssertStmt(Stmt):
    condition: BoolExpr
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class IfStmt(Stmt):
    condition: BoolExpr
    then_branch: "Block"
    else_branch: Optional["Block"] = None
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class WhileStmt(Stmt):
    condition: BoolExpr
    body: "Block"
    label: Optional[str] = None
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class ForStmt(Stmt):
    init: Optional[Stmt]
    condition: BoolExpr
    update: Optional[Stmt]
    body: "Block"
    label: Optional[str] = None
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class SkipStmt(Stmt):
    position: Optional[SourcePosition] = None


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple[Stmt, ...] = ()

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


# ----------------------------------------------------------------------
# Functions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Param:
    """A function parameter: scalar ``int n`` or array ``int *a`` / ``int a[]``."""

    name: str
    is_array: bool = False


@dataclass(frozen=True)
class FunctionDef:
    name: str
    params: tuple[Param, ...]
    body: Block

    def scalar_params(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params if not p.is_array)

    def array_params(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params if p.is_array)
