"""AST -> mini-C source printer (the inverse of :mod:`repro.lang.parser`).

:func:`format_function` renders any :class:`~repro.lang.ast.FunctionDef`
back into parseable surface syntax.  The printer is *round-trip exact*:
for every AST the parser can produce (and everything
:mod:`repro.testgen.generator` emits), ``parse_function(format_function(fn))``
returns an AST structurally equal to ``fn`` modulo source positions
(compare through :func:`strip_positions`).  Exactness rests on a few
deliberate choices, each matching a parser quirk:

* every compound arithmetic subexpression is fully parenthesised —
  ``(a + (2 * b))`` — so the parser's precedence climbing rebuilds the
  exact tree (it unwraps redundant parentheses without adding nodes);
* boolean connectives are parenthesised and negation always prints as
  ``!(...)`` (the parser backtracks from the comparison attempt into the
  parenthesised-condition branch);
* branch and loop bodies always print braced, matching the parser's
  ``_statement_as_block`` normalisation;
* ``HavocStmt`` prints as ``x = nondet();`` — which is also how the parser
  *reads* it back.  An ``AssignStmt`` whose value is a *bare*
  ``NondetExpr`` prints identically and therefore reparses as the
  (semantically identical) ``HavocStmt``: that is a printer
  normalisation, not a round-trip break (the generator never emits the
  bare-assign form);
* negative ``IntLiteral`` values cannot round-trip (the parser produces
  ``UnaryOp('-', IntLiteral(n))`` instead) — the parser never creates
  them, and neither does the generator.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from .ast import (
    ArrayAssignStmt,
    ArrayRef,
    AssertStmt,
    AssignStmt,
    AssumeStmt,
    BinaryOp,
    Block,
    BoolBinary,
    BoolExpr,
    BoolLiteral,
    BoolNondet,
    BoolNot,
    Comparison,
    DeclStmt,
    Expr,
    ForStmt,
    FunctionDef,
    HavocStmt,
    IfStmt,
    IntLiteral,
    NondetExpr,
    Param,
    SkipStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WhileStmt,
)

__all__ = [
    "format_expr",
    "format_condition",
    "format_function",
    "strip_positions",
]

_INDENT = "  "


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def format_expr(expr: Expr) -> str:
    """Render an arithmetic expression; compound nodes are parenthesised."""
    if isinstance(expr, IntLiteral):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.array}[{format_expr(expr.index)}]"
    if isinstance(expr, NondetExpr):
        return "nondet()"
    if isinstance(expr, UnaryOp):
        return f"({expr.op}{format_expr(expr.operand)})"
    if isinstance(expr, BinaryOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    raise TypeError(f"cannot print expression {expr!r}")


def format_condition(condition: BoolExpr) -> str:
    """Render a boolean condition; connectives are parenthesised."""
    if isinstance(condition, BoolLiteral):
        return "true" if condition.value else "false"
    if isinstance(condition, BoolNondet):
        return "*"
    if isinstance(condition, Comparison):
        return (
            f"{format_expr(condition.left)} {condition.op} "
            f"{format_expr(condition.right)}"
        )
    if isinstance(condition, BoolNot):
        return f"!({format_condition(condition.operand)})"
    if isinstance(condition, BoolBinary):
        return (
            f"({format_condition(condition.left)} {condition.op} "
            f"{format_condition(condition.right)})"
        )
    raise TypeError(f"cannot print condition {condition!r}")


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def _decl_text(statement: DeclStmt) -> str:
    """The ``int ...`` declaration text including the trailing ``;``."""
    if statement.is_array:
        size = format_expr(statement.size) if statement.size is not None else ""
        return f"int {statement.name}[{size}];"
    if statement.initializer is not None:
        return f"int {statement.name} = {format_expr(statement.initializer)};"
    return f"int {statement.name};"


def _simple_text(statement: Stmt) -> str:
    """An assignment-like statement without the trailing ``;`` (for-headers)."""
    if isinstance(statement, AssignStmt):
        return f"{statement.target} = {format_expr(statement.value)}"
    if isinstance(statement, HavocStmt):
        return f"{statement.target} = nondet()"
    if isinstance(statement, ArrayAssignStmt):
        return (
            f"{statement.array}[{format_expr(statement.index)}] = "
            f"{format_expr(statement.value)}"
        )
    raise TypeError(f"not a simple statement: {statement!r}")


def _statement_lines(statement: Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(statement, DeclStmt):
        return [pad + _decl_text(statement)]
    if isinstance(statement, (AssignStmt, HavocStmt, ArrayAssignStmt)):
        return [pad + _simple_text(statement) + ";"]
    if isinstance(statement, AssumeStmt):
        return [pad + f"assume({format_condition(statement.condition)});"]
    if isinstance(statement, AssertStmt):
        return [pad + f"assert({format_condition(statement.condition)});"]
    if isinstance(statement, SkipStmt):
        return [pad + "skip;"]
    if isinstance(statement, Block):
        lines = [pad + "{"]
        lines.extend(_block_lines(statement, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, IfStmt):
        lines = [pad + f"if ({format_condition(statement.condition)}) {{"]
        lines.extend(_block_lines(statement.then_branch, depth + 1))
        if statement.else_branch is not None:
            lines.append(pad + "} else {")
            lines.extend(_block_lines(statement.else_branch, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, WhileStmt):
        lines = [pad + f"while ({format_condition(statement.condition)}) {{"]
        lines.extend(_block_lines(statement.body, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, ForStmt):
        if statement.init is None:
            init = ";"
        elif isinstance(statement.init, DeclStmt):
            init = _decl_text(statement.init)
        elif isinstance(statement.init, Block):
            # ``for (int i = 0, j = 0; ...)`` parses to a Block of DeclStmts.
            parts = [
                stmt.name
                + (
                    f" = {format_expr(stmt.initializer)}"
                    if stmt.initializer is not None
                    else ""
                )
                for stmt in statement.init.statements
                if isinstance(stmt, DeclStmt)
            ]
            init = "int " + ", ".join(parts) + ";"
        else:
            init = _simple_text(statement.init) + ";"
        update = "" if statement.update is None else _simple_text(statement.update)
        header = (
            f"for ({init} {format_condition(statement.condition)}; {update}) {{"
        )
        lines = [pad + header]
        lines.extend(_block_lines(statement.body, depth + 1))
        lines.append(pad + "}")
        return lines
    raise TypeError(f"cannot print statement {statement!r}")


def _block_lines(block: Block, depth: int) -> list[str]:
    lines: list[str] = []
    for statement in block.statements:
        lines.extend(_statement_lines(statement, depth))
    return lines


def format_function(function: FunctionDef) -> str:
    """Render a function back into parseable mini-C source."""
    params = ", ".join(
        f"int *{param.name}" if param.is_array else f"int {param.name}"
        for param in function.params
    )
    lines = [f"void {function.name}({params}) {{"]
    lines.extend(_block_lines(function.body, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Position stripping (round-trip comparisons)
# ----------------------------------------------------------------------
def strip_positions(
    node: Union[FunctionDef, Stmt],
) -> Union[FunctionDef, Stmt]:
    """A structurally equal copy with every ``position`` field set to None.

    Statement dataclasses compare positions in ``__eq__``, so two parses of
    differently formatted but identical programs are unequal; stripping
    makes ``parse(format(ast)) == strip(ast)`` a meaningful round-trip
    check.  Expressions and conditions carry no positions and are shared.
    """
    if isinstance(node, FunctionDef):
        return FunctionDef(
            node.name, node.params, _strip_block(node.body)
        )
    return _strip_stmt(node)


def _strip_block(block: Block) -> Block:
    return Block(tuple(_strip_stmt(s) for s in block.statements))


def _strip_stmt(statement: Stmt) -> Stmt:
    if isinstance(statement, Block):
        return _strip_block(statement)
    if isinstance(statement, IfStmt):
        return IfStmt(
            statement.condition,
            _strip_block(statement.then_branch),
            None
            if statement.else_branch is None
            else _strip_block(statement.else_branch),
            position=None,
        )
    if isinstance(statement, WhileStmt):
        return WhileStmt(
            statement.condition,
            _strip_block(statement.body),
            label=statement.label,
            position=None,
        )
    if isinstance(statement, ForStmt):
        return ForStmt(
            None if statement.init is None else _strip_stmt(statement.init),
            statement.condition,
            None if statement.update is None else _strip_stmt(statement.update),
            _strip_block(statement.body),
            label=statement.label,
            position=None,
        )
    if hasattr(statement, "position"):
        return dataclasses.replace(statement, position=None)
    return statement
