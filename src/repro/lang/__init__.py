"""Surface language front end: parsing, type checking, CFG construction."""

from .ast import FunctionDef
from .commands import ArrayAssign, Assign, Assume, Command, Havoc, Skip
from .cfg import (
    CfgBuildError,
    Location,
    Program,
    Transition,
    build_program,
    compact,
    condition_to_formula,
    expr_to_linexpr,
    program_from_source,
)
from .lexer import LexError, tokenize
from .parser import ParseError, parse_expression, parse_function, parse_program
from .pretty import format_path, format_program, format_transition, program_to_dot
from .source import format_condition, format_expr, format_function, strip_positions
from .programs import (
    PROGRAMS,
    BenchmarkProgram,
    get_program,
    get_source,
    list_programs,
    safe_programs,
    unsafe_programs,
)
from .typecheck import SymbolTable, TypeCheckError, check_function

__all__ = [
    "FunctionDef",
    "ArrayAssign",
    "Assign",
    "Assume",
    "Command",
    "Havoc",
    "Skip",
    "CfgBuildError",
    "Location",
    "Program",
    "Transition",
    "build_program",
    "compact",
    "condition_to_formula",
    "expr_to_linexpr",
    "program_from_source",
    "LexError",
    "tokenize",
    "ParseError",
    "parse_expression",
    "parse_function",
    "parse_program",
    "format_path",
    "format_program",
    "format_transition",
    "program_to_dot",
    "format_condition",
    "format_expr",
    "format_function",
    "strip_positions",
    "PROGRAMS",
    "BenchmarkProgram",
    "get_program",
    "get_source",
    "list_programs",
    "safe_programs",
    "unsafe_programs",
    "SymbolTable",
    "TypeCheckError",
    "check_function",
]
