"""Pretty printers for transition systems and paths.

The textual renderings are used by the examples, the experiment harness and
the documentation; they mirror the notation of the paper's figures:
assumptions are printed in square brackets and updates with ``:=``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .cfg import Program, Transition

__all__ = ["format_program", "format_transition", "format_path", "program_to_dot"]


def format_transition(transition: Transition) -> str:
    label = "; ".join(str(command) for command in transition.commands)
    return f"  {transition.source} --[{label}]--> {transition.target}"


def format_program(program: Program) -> str:
    """A human-readable listing of a transition system."""
    lines = [
        f"program {program.name}",
        f"  variables: {', '.join(program.variables) or '(none)'}",
        f"  arrays:    {', '.join(program.arrays) or '(none)'}",
        f"  initial:   {program.initial}",
        f"  error:     {program.error}",
        "  transitions:",
    ]
    for transition in sorted(program.transitions, key=lambda t: (t.source.name, t.target.name)):
        lines.append("  " + format_transition(transition))
    return "\n".join(lines)


def format_path(transitions: Sequence[Transition]) -> str:
    """Render an error path as a numbered list of transitions."""
    lines = []
    for index, transition in enumerate(transitions):
        label = "; ".join(str(command) for command in transition.commands)
        lines.append(f"  {index}: {transition.source} --[{label}]--> {transition.target}")
    return "\n".join(lines)


def program_to_dot(program: Program) -> str:
    """A Graphviz rendering of the control-flow graph."""
    lines = [f'digraph "{program.name}" {{', "  rankdir=TB;"]
    for location in program.locations:
        shape = "doublecircle" if location == program.error else "circle"
        if location == program.initial:
            shape = "box"
        lines.append(f'  "{location.name}" [shape={shape}];')
    for transition in program.transitions:
        label = "; ".join(str(command) for command in transition.commands)
        label = label.replace('"', "'")
        lines.append(
            f'  "{transition.source.name}" -> "{transition.target.name}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)
