"""Normal-form transformations and fresh-name generation.

The lazy case-splitting solver in :mod:`repro.smt.solver` only needs
negation normal form (:func:`to_nnf`); it explores disjunctions on demand
instead of expanding them.  The disjunctive-normal-form helpers
(:func:`dnf_cubes`, :func:`to_dnf`, :func:`cube_size_of`) are kept for the
eager reference oracle ``SmtSolver.check_sat_eager`` and for tests and
benchmarks that measure how much enumeration laziness avoids; ``limit``
guards their worst-case exponential blow-up.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolConst,
    Forall,
    Formula,
    Not,
    Or,
    conjoin,
    disjoin,
    negate,
)
from .terms import LinExpr, Var

__all__ = [
    "FreshNames",
    "to_nnf",
    "to_dnf",
    "dnf_cubes",
    "cube_size_of",
    "quantifier_free",
]


class FreshNames:
    """A generator of globally fresh variable names with a common prefix.

    Fresh names contain a ``#`` character, which the surface-language lexer
    rejects, so they can never clash with program variables.
    """

    def __init__(self, prefix: str = "tmp") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self, hint: str = "") -> Var:
        index = next(self._counter)
        if hint:
            return Var(f"{self._prefix}#{hint}#{index}")
        return Var(f"{self._prefix}#{index}")

    def fresh_name(self, hint: str = "") -> str:
        return self.fresh(hint).name


def to_nnf(formula: Formula) -> Formula:
    """Push negations down to atoms (quantifiers are left untouched)."""
    if isinstance(formula, (BoolConst, Atom)):
        return formula
    if isinstance(formula, And):
        return conjoin([to_nnf(arg) for arg in formula.args])
    if isinstance(formula, Or):
        return disjoin([to_nnf(arg) for arg in formula.args])
    if isinstance(formula, Not):
        inner = formula.arg
        if isinstance(inner, BoolConst):
            return FALSE if inner.value else TRUE
        if isinstance(inner, Atom):
            return inner.negated()
        if isinstance(inner, Not):
            return to_nnf(inner.arg)
        if isinstance(inner, And):
            return disjoin([to_nnf(Not(arg)) for arg in inner.args])
        if isinstance(inner, Or):
            return conjoin([to_nnf(Not(arg)) for arg in inner.args])
        if isinstance(inner, Forall):
            return Not(Forall(inner.index, to_nnf(inner.body)))
        raise TypeError(f"unexpected formula {inner!r}")
    if isinstance(formula, Forall):
        return Forall(formula.index, to_nnf(formula.body))
    raise TypeError(f"unexpected formula {formula!r}")


def dnf_cubes(formula: Formula, limit: int = 200_000) -> list[tuple[Formula, ...]]:
    """Expand a formula into a list of cubes (conjunctions of literals).

    Each cube is returned as a tuple of formulas; quantified sub-formulas and
    their negations are kept as opaque literals inside cubes.  ``limit`` bounds
    the number of cubes produced and guards against pathological blow-up.
    """
    nnf = to_nnf(formula)
    cubes = list(_cubes_of(nnf))
    if len(cubes) > limit:
        raise ValueError(f"DNF expansion produced {len(cubes)} cubes (limit {limit})")
    return cubes


def _cubes_of(formula: Formula) -> Iterator[tuple[Formula, ...]]:
    if isinstance(formula, BoolConst):
        if formula.value:
            yield ()
        return
    if isinstance(formula, (Atom, Forall, Not)):
        yield (formula,)
        return
    if isinstance(formula, Or):
        for arg in formula.args:
            yield from _cubes_of(arg)
        return
    if isinstance(formula, And):
        partial: list[tuple[Formula, ...]] = [()]
        for arg in formula.args:
            arg_cubes = list(_cubes_of(arg))
            if not arg_cubes:
                return
            partial = [left + right for left in partial for right in arg_cubes]
        yield from partial
        return
    raise TypeError(f"unexpected formula {formula!r}")


def to_dnf(formula: Formula) -> Formula:
    """Disjunctive normal form as a formula."""
    cubes = dnf_cubes(formula)
    return disjoin([conjoin(cube) for cube in cubes])


def cube_size_of(formula: Formula) -> int:
    """Number of cubes the DNF expansion of ``formula`` would have.

    Useful for tests and for deciding whether an eager expansion is viable.
    """
    return len(dnf_cubes(formula))


def quantifier_free(formula: Formula) -> bool:
    """True iff the formula contains no quantifier (even under negations)."""
    if isinstance(formula, (BoolConst, Atom)):
        return True
    if isinstance(formula, Forall):
        return False
    if isinstance(formula, Not):
        return quantifier_free(formula.arg)
    if isinstance(formula, (And, Or)):
        return all(quantifier_free(arg) for arg in formula.args)
    raise TypeError(f"unexpected formula {formula!r}")


def substitute_all(formulas: Iterable[Formula], mapping) -> list[Formula]:
    """Apply a variable substitution to every formula in a collection."""
    return [formula.substitute(mapping) for formula in formulas]
