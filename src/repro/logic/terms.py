"""Linear terms over exact rationals, with array-read atoms.

The logic layer of the reproduction works with *linear expressions* over a set
of atomic terms.  An atomic term is either a program variable (:class:`Var`) or
an array read (:class:`ArrayRead`).  Linear expressions are immutable and
hashable, which lets them be used as dictionary keys, set members, and as parts
of larger immutable formula objects.

All term objects are **hash-consed**: constructing a term returns the unique
interned instance for its content, so structural equality coincides with
object identity (``==`` is a pointer comparison), ``__hash__`` is a cached
field read, and the structural queries ``variables()``/``array_reads()`` are
computed once per node and shared.  The pervasive set/dict operations of the
predicate-abstraction and invariant layers therefore never re-hash or
re-traverse whole trees.  Interned tables grow with the set of distinct terms
ever built; long-running services can call :func:`clear_intern_caches`
between independent problems.

All coefficients are :class:`fractions.Fraction`; no floating point arithmetic
is used anywhere in the library, so soundness of verification results never
depends on rounding.
"""

from __future__ import annotations

import threading
from fractions import Fraction
from typing import Iterable, Mapping, Union

#: Guards every hash-consing intern table in the logic layer (terms *and*
#: formulas — :mod:`repro.logic.formulas` imports this same lock).  Lookups
#: stay lock-free (``dict.get`` is atomic under CPython); only the miss path
#: takes the lock and re-checks, so single-threaded construction pays one
#: uncontended acquire per *new* object and nothing per hit.  Without the
#: lock, two threads interning the same key could both insert — equality
#: would survive (``__eq__`` falls back to structure) but the identity
#: guarantee ``Var("x") is Var("x")`` would not.
INTERN_LOCK = threading.RLock()

__all__ = [
    "INTERN_LOCK",
    "Var",
    "ArrayRead",
    "Atomic",
    "LinExpr",
    "Rat",
    "as_fraction",
    "var",
    "const",
    "read",
    "clear_intern_caches",
]

#: Values accepted wherever a rational constant is expected.
Rat = Union[int, Fraction]


def as_fraction(value: Rat) -> Fraction:
    """Coerce an ``int`` or :class:`Fraction` into a :class:`Fraction`.

    Floats are rejected on purpose: exact arithmetic is a soundness
    requirement for the solvers built on top of this module.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}: {value!r}")


class Var:
    """A scalar program variable (or an auxiliary solver variable).

    Instances are interned by name: ``Var("x") is Var("x")``.
    """

    __slots__ = ("name", "_hash")

    _intern: dict[str, "Var"] = {}

    def __new__(cls, name: str) -> "Var":
        cached = cls._intern.get(name)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(name)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.name = name
            self._hash = hash((Var, name))
            cls._intern[name] = self
            return self

    def __eq__(self, other: object) -> bool:
        # Interning makes identity the common case; the structural fallback
        # keeps equality meaningful across clear_intern_caches() generations.
        if self is other:
            return True
        if isinstance(other, Var):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Unpickling goes back through __new__, so a loaded term re-interns
        # into the receiving process's table (precisions shipped across a
        # process pool stay identity-comparable with locally built terms).
        return (Var, (self.name,))

    # Total order by name (mirrors the seed's ``order=True`` dataclass).
    def __lt__(self, other: object) -> bool:
        if isinstance(other, Var):
            return self.name < other.name
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, Var):
            return self.name <= other.name
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, Var):
            return self.name > other.name
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, Var):
            return self.name >= other.name
        return NotImplemented

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def primed(self) -> "Var":
        """Return the next-state version of this variable."""
        return Var(self.name + "'")

    def is_primed(self) -> bool:
        return self.name.endswith("'")

    def unprimed(self) -> "Var":
        if not self.is_primed():
            return self
        return Var(self.name.rstrip("'"))


class ArrayRead:
    """A read ``array[index]`` where ``index`` is a linear expression.

    Instances are interned by ``(array, index)``.
    """

    __slots__ = ("array", "index", "_hash")

    _intern: dict[tuple, "ArrayRead"] = {}

    def __new__(cls, array: str, index: "LinExpr") -> "ArrayRead":
        key = (array, index)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(key)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.array = array
            self.index = index
            self._hash = hash((ArrayRead, array, index))
            cls._intern[key] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, ArrayRead):
            return self.array == other.array and self.index == other.index
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (ArrayRead, (self.array, self.index))

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"

    def __repr__(self) -> str:
        return f"ArrayRead({self.array!r}, {self.index!r})"

    def __lt__(self, other: object) -> bool:  # stable ordering for canonical forms
        if isinstance(other, Var):
            return False
        if isinstance(other, ArrayRead):
            return (self.array, str(self.index)) < (other.array, str(other.index))
        return NotImplemented


#: The atomic building blocks of linear expressions.
Atomic = Union[Var, ArrayRead]


def _atomic_key(atom: Atomic) -> tuple:
    """A total order on atomic terms used to canonicalise linear expressions."""
    if isinstance(atom, Var):
        return (0, atom.name, "")
    return (1, atom.array, str(atom.index))


class LinExpr:
    """An immutable linear expression ``sum(coeff_i * atom_i) + const``.

    Instances are canonical: atoms with zero coefficient are dropped and the
    atom/coefficient pairs are sorted, so two expressions denoting the same
    function are the *same interned object* and hash identically through a
    cached hash field.
    """

    __slots__ = ("terms", "const", "_hash", "_variables", "_array_reads")

    _intern: dict[tuple, "LinExpr"] = {}

    def __new__(
        cls, terms: tuple[tuple[Atomic, Fraction], ...], const: Fraction
    ) -> "LinExpr":
        key = (terms, const)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(key)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.terms = terms
            self.const = const
            self._hash = hash(key)
            self._variables = None
            self._array_reads = None
            cls._intern[key] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, LinExpr):
            return self.const == other.const and self.terms == other.terms
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (LinExpr, (self.terms, self.const))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def make(coeffs: Mapping[Atomic, Rat] | None = None, constant: Rat = 0) -> "LinExpr":
        """Build a canonical linear expression from a coefficient mapping."""
        items: list[tuple[Atomic, Fraction]] = []
        if coeffs:
            for atom, coeff in coeffs.items():
                frac = as_fraction(coeff)
                if frac != 0:
                    items.append((atom, frac))
        items.sort(key=lambda pair: _atomic_key(pair[0]))
        return LinExpr(tuple(items), as_fraction(constant))

    @staticmethod
    def constant(value: Rat) -> "LinExpr":
        return LinExpr.make({}, value)

    @staticmethod
    def variable(name: str | Var, coeff: Rat = 1) -> "LinExpr":
        atom = name if isinstance(name, Var) else Var(name)
        return LinExpr.make({atom: coeff})

    @staticmethod
    def array_read(array: str, index: "LinExpr | str | Rat") -> "LinExpr":
        if isinstance(index, str):
            index = LinExpr.variable(index)
        elif isinstance(index, (int, Fraction)):
            index = LinExpr.constant(index)
        return LinExpr.make({ArrayRead(array, index): 1})

    @staticmethod
    def zero() -> "LinExpr":
        return LinExpr.constant(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def coeff(self, atom: Atomic) -> Fraction:
        """Coefficient of ``atom`` (zero if absent)."""
        for candidate, value in self.terms:
            if candidate == atom:
                return value
        return Fraction(0)

    def atoms(self) -> tuple[Atomic, ...]:
        return tuple(atom for atom, _ in self.terms)

    def variables(self) -> frozenset[Var]:
        """All scalar variables, including those inside array indices."""
        cached = self._variables
        if cached is None:
            result: set[Var] = set()
            for atom, _ in self.terms:
                if isinstance(atom, Var):
                    result.add(atom)
                else:
                    result.update(atom.index.variables())
            cached = frozenset(result)
            self._variables = cached
        return cached

    def array_reads(self) -> frozenset[ArrayRead]:
        cached = self._array_reads
        if cached is None:
            result: set[ArrayRead] = set()
            for atom, _ in self.terms:
                if isinstance(atom, ArrayRead):
                    result.add(atom)
                    result.update(atom.index.array_reads())
            cached = frozenset(result)
            self._array_reads = cached
        return cached

    def arrays(self) -> set[str]:
        return {r.array for r in self.array_reads()}

    def is_constant(self) -> bool:
        return not self.terms

    def constant_value(self) -> Fraction:
        if not self.is_constant():
            raise ValueError(f"{self} is not a constant expression")
        return self.const

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _as_dict(self) -> dict[Atomic, Fraction]:
        return {atom: coeff for atom, coeff in self.terms}

    def __add__(self, other: "LinExpr | Rat") -> "LinExpr":
        other = coerce_expr(other)
        coeffs = self._as_dict()
        for atom, coeff in other.terms:
            coeffs[atom] = coeffs.get(atom, Fraction(0)) + coeff
        return LinExpr.make(coeffs, self.const + other.const)

    def __radd__(self, other: "LinExpr | Rat") -> "LinExpr":
        return self.__add__(other)

    def __neg__(self) -> "LinExpr":
        return self.scale(-1)

    def __sub__(self, other: "LinExpr | Rat") -> "LinExpr":
        return self + (-coerce_expr(other))

    def __rsub__(self, other: "LinExpr | Rat") -> "LinExpr":
        return coerce_expr(other) - self

    def scale(self, factor: Rat) -> "LinExpr":
        frac = as_fraction(factor)
        coeffs = {atom: coeff * frac for atom, coeff in self.terms}
        return LinExpr.make(coeffs, self.const * frac)

    def __mul__(self, factor: Rat) -> "LinExpr":
        return self.scale(factor)

    def __rmul__(self, factor: Rat) -> "LinExpr":
        return self.scale(factor)

    # ------------------------------------------------------------------
    # Substitution and renaming
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[Var, "LinExpr"]) -> "LinExpr":
        """Replace scalar variables by linear expressions (also inside indices)."""
        result = LinExpr.constant(self.const)
        for atom, coeff in self.terms:
            if isinstance(atom, Var) and atom in mapping:
                result = result + mapping[atom].scale(coeff)
            elif isinstance(atom, ArrayRead):
                new_index = atom.index.substitute(mapping)
                result = result + LinExpr.make({ArrayRead(atom.array, new_index): coeff})
            else:
                result = result + LinExpr.make({atom: coeff})
        return result

    def substitute_reads(self, mapping: Mapping[ArrayRead, "LinExpr"]) -> "LinExpr":
        """Replace array-read atoms by linear expressions."""
        result = LinExpr.constant(self.const)
        for atom, coeff in self.terms:
            if isinstance(atom, ArrayRead) and atom in mapping:
                result = result + mapping[atom].scale(coeff)
            else:
                result = result + LinExpr.make({atom: coeff})
        return result

    def rename(self, renaming: Mapping[str, str]) -> "LinExpr":
        """Rename scalar variables and array symbols according to ``renaming``."""
        coeffs: dict[Atomic, Fraction] = {}
        for atom, coeff in self.terms:
            if isinstance(atom, Var):
                new_atom: Atomic = Var(renaming.get(atom.name, atom.name))
            else:
                new_atom = ArrayRead(
                    renaming.get(atom.array, atom.array), atom.index.rename(renaming)
                )
            coeffs[new_atom] = coeffs.get(new_atom, Fraction(0)) + coeff
        return LinExpr.make(coeffs, self.const)

    def primed(self) -> "LinExpr":
        renaming = {v.name: v.name + "'" for v in self.variables()}
        renaming.update({a: a + "'" for a in self.arrays()})
        return self.rename(renaming)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> Fraction:
        """Evaluate under a valuation of every atomic term appearing here."""
        total = self.const
        for atom, coeff in self.terms:
            if isinstance(atom, ArrayRead):
                # Allow array reads to be looked up by their (array, index value).
                if atom in valuation:
                    value = as_fraction(valuation[atom])
                else:
                    raise KeyError(f"no valuation for array read {atom}")
            else:
                if atom not in valuation:
                    raise KeyError(f"no valuation for variable {atom}")
                value = as_fraction(valuation[atom])
            total += coeff * value
        return total

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.terms:
            return str(self.const)
        parts: list[str] = []
        for atom, coeff in self.terms:
            if coeff == 1:
                text = str(atom)
            elif coeff == -1:
                text = f"-{atom}"
            else:
                text = f"{coeff}*{atom}"
            parts.append(text)
        rendered = " + ".join(parts).replace("+ -", "- ")
        if self.const > 0:
            rendered += f" + {self.const}"
        elif self.const < 0:
            rendered += f" - {-self.const}"
        return rendered

    def __repr__(self) -> str:
        return f"LinExpr({self})"


def coerce_expr(value: "LinExpr | Var | ArrayRead | Rat") -> LinExpr:
    """Coerce constants, variables and reads into :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Var):
        return LinExpr.make({value: 1})
    if isinstance(value, ArrayRead):
        return LinExpr.make({value: 1})
    return LinExpr.constant(as_fraction(value))


#: Extra caches (registered by higher layers) that key on interned terms and
#: must be dropped together with the interning tables, or they would pin
#: retired term generations in memory.
_dependent_caches: list = []


def register_intern_cache(clear) -> None:
    """Register a zero-argument callable run by :func:`clear_intern_caches`."""
    _dependent_caches.append(clear)


def clear_intern_caches() -> None:
    """Drop the hash-consing tables of the term layer.

    Interned objects stay valid; only the tables that guarantee *new*
    constructions are shared are reset.  Only call this between independent
    verification problems (identity-based equality still holds within each
    table generation because the canonical constructors always re-intern).
    Caches registered via :func:`register_intern_cache` are cleared too.
    """
    with INTERN_LOCK:
        Var._intern.clear()
        ArrayRead._intern.clear()
        LinExpr._intern.clear()
        for clear in _dependent_caches:
            clear()


# ----------------------------------------------------------------------
# Small construction helpers used pervasively in tests and examples.
# ----------------------------------------------------------------------
def var(name: str, coeff: Rat = 1) -> LinExpr:
    """Shorthand for a single-variable linear expression."""
    return LinExpr.variable(name, coeff)


def const(value: Rat) -> LinExpr:
    """Shorthand for a constant linear expression."""
    return LinExpr.constant(value)


def read(array: str, index: LinExpr | str | Rat) -> LinExpr:
    """Shorthand for an array-read linear expression."""
    return LinExpr.array_read(array, index)


def sum_exprs(exprs: Iterable[LinExpr]) -> LinExpr:
    total = LinExpr.zero()
    for expr in exprs:
        total = total + expr
    return total
