"""Lightweight syntactic simplification of formulas.

The simplifier is purely syntactic (constant folding, duplicate removal,
absorption of obviously redundant bounds).  It never changes the meaning of a
formula; semantic simplification is the job of the solvers in
:mod:`repro.smt`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolConst,
    Forall,
    Formula,
    Not,
    Or,
    Relation,
    conjoin,
    disjoin,
)
from .terms import LinExpr

__all__ = ["simplify", "normalize_atom", "simplify_conjunction"]


def normalize_atom(atom: Atom) -> Formula:
    """Constant-fold an atom and scale it to a canonical representative.

    The expression is divided by the greatest common divisor of its
    coefficients (keeping direction), so for example ``2x - 4 <= 0`` and
    ``x - 2 <= 0`` normalise to the same atom.
    """
    expr = atom.expr
    if expr.is_constant():
        return TRUE if atom.rel.holds(expr.const) else FALSE
    coeffs = [abs(c) for _, c in expr.terms] + ([abs(expr.const)] if expr.const else [])
    # Compute the gcd of numerators over the lcm of denominators to obtain a
    # positive rational scaling factor.
    numerators = [c.numerator for c in coeffs if c != 0]
    denominators = [c.denominator for c in coeffs if c != 0]
    if not numerators:
        return atom
    gcd = numerators[0]
    for n in numerators[1:]:
        gcd = _gcd(gcd, n)
    lcm = denominators[0]
    for d in denominators[1:]:
        lcm = lcm * d // _gcd(lcm, d)
    factor = Fraction(lcm, gcd)
    if factor != 1:
        expr = expr.scale(factor)
    return Atom(expr, atom.rel)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


def simplify(formula: Formula) -> Formula:
    """Recursively constant-fold and canonicalise a formula."""
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Atom):
        return normalize_atom(formula)
    if isinstance(formula, Not):
        inner = simplify(formula.arg)
        if isinstance(inner, BoolConst):
            return FALSE if inner.value else TRUE
        if isinstance(inner, Atom):
            return inner.negated()
        return Not(inner)
    if isinstance(formula, And):
        return simplify_conjunction([simplify(arg) for arg in formula.args])
    if isinstance(formula, Or):
        return disjoin([simplify(arg) for arg in formula.args])
    if isinstance(formula, Forall):
        body = simplify(formula.body)
        if isinstance(body, BoolConst):
            return body
        return Forall(formula.index, body)
    raise TypeError(f"unexpected formula {formula!r}")


def simplify_conjunction(parts: Iterable[Formula]) -> Formula:
    """Conjoin formulas, dropping bounds subsumed by tighter ones.

    Only inexpensive, purely syntactic subsumption is applied: if two atoms
    differ only in their constant and point in the same direction, the weaker
    one is dropped; a pair of directly contradictory constant bounds collapses
    the conjunction to false.
    """
    flat = conjoin(parts)
    if not isinstance(flat, And):
        return flat

    atoms: list[Atom] = [a for a in flat.args if isinstance(a, Atom)]
    others = [a for a in flat.args if not isinstance(a, Atom)]

    # Group inequality atoms by their variable part (expression minus const).
    best: dict[tuple, Atom] = {}
    kept: list[Atom] = []
    for atom in atoms:
        if atom.rel not in (Relation.LE, Relation.LT):
            kept.append(atom)
            continue
        key = (atom.expr.terms,)
        current = best.get(key)
        if current is None:
            best[key] = atom
            continue
        # Both constraints read  terms + const REL 0 : the larger constant is
        # the tighter bound; for equal constants, strict beats non-strict.
        if atom.expr.const > current.expr.const or (
            atom.expr.const == current.expr.const and atom.rel is Relation.LT
        ):
            best[key] = atom
    kept.extend(best.values())

    # Detect direct contradictions between a kept upper bound and an equality.
    result = conjoin(list(kept) + list(others))
    return result
