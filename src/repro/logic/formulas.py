"""Formulas of linear arithmetic with array reads and restricted quantification.

The formula language mirrors the assertion language of the paper:

* atoms are linear constraints ``e <= 0``, ``e < 0``, ``e = 0`` and ``e != 0``
  where ``e`` is a :class:`~repro.logic.terms.LinExpr` (possibly mentioning
  array reads),
* boolean structure (``And``, ``Or``, ``Not``, ``true``, ``false``), and
* a restricted universal quantifier of the *array property fragment*:
  ``Forall(k, body)`` where the body is typically an implication of the form
  ``lower <= k /\\ k <= upper  ->  a[k] = rhs``.

All formula objects are immutable, hashable and **hash-consed**: constructing
a node returns the unique interned instance for its content, equality is a
pointer comparison in the common case, ``__hash__`` reads a cached field, and
the structural queries (``variables()``, ``array_reads()``, ``atoms()``) are
computed once per node and shared as frozensets.  This makes the pervasive
set/dict operations of the predicate abstraction (per-location predicate
sets, ART state subsumption, VC memo keys) cheap regardless of formula size.
"""

from __future__ import annotations

from enum import Enum
from fractions import Fraction
from typing import Iterable, Mapping

from .terms import INTERN_LOCK, ArrayRead, Atomic, LinExpr, Rat, Var, coerce_expr

__all__ = [
    "Relation",
    "Formula",
    "Atom",
    "BoolConst",
    "And",
    "Or",
    "Not",
    "Forall",
    "TRUE",
    "FALSE",
    "eq",
    "ne",
    "le",
    "lt",
    "ge",
    "gt",
    "conjoin",
    "disjoin",
    "negate",
    "implies_formula",
]


class Relation(Enum):
    """Relations of normalised atoms ``expr REL 0``."""

    LE = "<="
    LT = "<"
    EQ = "="
    NE = "!="

    def negated(self) -> "Relation":
        return _NEGATIONS[self]

    def holds(self, value: Fraction) -> bool:
        if self is Relation.LE:
            return value <= 0
        if self is Relation.LT:
            return value < 0
        if self is Relation.EQ:
            return value == 0
        return value != 0


_NEGATIONS = {
    Relation.LE: Relation.LT,   # not(e <= 0)  ==  -e < 0
    Relation.LT: Relation.LE,   # not(e < 0)   ==  -e <= 0
    Relation.EQ: Relation.NE,
    Relation.NE: Relation.EQ,
}


class Formula:
    """Base class of all formulas.  Subclasses are interned immutable nodes."""

    __slots__ = ("_hash", "_variables", "_array_reads", "_atoms")

    def _init_caches(self, hash_value: int) -> None:
        self._hash = hash_value
        self._variables = None
        self._array_reads = None
        self._atoms = None

    def __hash__(self) -> int:
        return self._hash

    # -- structural queries -------------------------------------------------
    def variables(self) -> frozenset[Var]:
        cached = self._variables
        if cached is None:
            cached = frozenset(self._compute_variables())
            self._variables = cached
        return cached

    def array_reads(self) -> frozenset[ArrayRead]:
        cached = self._array_reads
        if cached is None:
            cached = frozenset(self._compute_array_reads())
            self._array_reads = cached
        return cached

    def atoms(self) -> frozenset["Atom"]:
        cached = self._atoms
        if cached is None:
            cached = frozenset(self._compute_atoms())
            self._atoms = cached
        return cached

    def arrays(self) -> set[str]:
        return {r.array for r in self.array_reads()}

    def _compute_variables(self) -> Iterable[Var]:
        raise NotImplementedError

    def _compute_array_reads(self) -> Iterable[ArrayRead]:
        raise NotImplementedError

    def _compute_atoms(self) -> Iterable["Atom"]:
        raise NotImplementedError

    def has_quantifier(self) -> bool:
        raise NotImplementedError

    # -- transformations ----------------------------------------------------
    def substitute(self, mapping: Mapping[Var, LinExpr]) -> "Formula":
        raise NotImplementedError

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> "Formula":
        raise NotImplementedError

    def rename(self, renaming: Mapping[str, str]) -> "Formula":
        raise NotImplementedError

    def primed(self) -> "Formula":
        renaming = {v.name: v.name + "'" for v in self.variables()}
        renaming.update({a: a + "'" for a in self.arrays()})
        return self.rename(renaming)

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        raise NotImplementedError

    # -- convenience --------------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return conjoin([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disjoin([self, other])

    def __invert__(self) -> "Formula":
        return negate(self)


class BoolConst(Formula):
    """The constants ``true`` and ``false``."""

    __slots__ = ("value",)

    _intern: dict[bool, "BoolConst"] = {}

    def __new__(cls, value: bool) -> "BoolConst":
        cached = cls._intern.get(value)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(value)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.value = value
            self._init_caches(hash((BoolConst, value)))
            cls._intern[value] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, BoolConst):
            return self.value == other.value
        return NotImplemented

    __hash__ = Formula.__hash__

    def __reduce__(self):
        # Unpickling re-enters __new__, so loaded formulas re-intern into the
        # receiving process (predicates are shipped across process pools for
        # warm-starting; see repro.core.api).
        return (BoolConst, (self.value,))

    def _compute_variables(self) -> Iterable[Var]:
        return ()

    def _compute_array_reads(self) -> Iterable[ArrayRead]:
        return ()

    def _compute_atoms(self) -> Iterable["Atom"]:
        return ()

    def has_quantifier(self) -> bool:
        return False

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return self

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return self

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return self

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"

    def __repr__(self) -> str:
        return f"BoolConst({self.value})"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class Atom(Formula):
    """A normalised linear atom ``expr REL 0``."""

    __slots__ = ("expr", "rel")

    _intern: dict[tuple, "Atom"] = {}

    def __new__(cls, expr: LinExpr, rel: Relation) -> "Atom":
        key = (expr, rel)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(key)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.expr = expr
            self.rel = rel
            self._init_caches(hash((Atom, expr, rel)))
            cls._intern[key] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Atom):
            return self.rel is other.rel and self.expr == other.expr
        return NotImplemented

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Atom, (self.expr, self.rel))

    def _compute_variables(self) -> Iterable[Var]:
        return self.expr.variables()

    def _compute_array_reads(self) -> Iterable[ArrayRead]:
        return self.expr.array_reads()

    def _compute_atoms(self) -> Iterable["Atom"]:
        return (self,)

    def has_quantifier(self) -> bool:
        return False

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return Atom(self.expr.substitute(mapping), self.rel)

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return Atom(self.expr.substitute_reads(mapping), self.rel)

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return Atom(self.expr.rename(renaming), self.rel)

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return self.rel.holds(self.expr.evaluate(valuation))

    def negated(self) -> "Atom":
        """The negation of this atom, again as a single atom."""
        if self.rel in (Relation.EQ, Relation.NE):
            return Atom(self.expr, self.rel.negated())
        # not(e <= 0) == -e < 0 ; not(e < 0) == -e <= 0
        return Atom(-self.expr, self.rel.negated())

    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        return self.rel.holds(self.expr.const)

    def is_trivially_false(self) -> bool:
        if not self.expr.is_constant():
            return False
        return not self.rel.holds(self.expr.const)

    def __str__(self) -> str:
        return f"{self.expr} {self.rel.value} 0"

    def __repr__(self) -> str:
        return f"Atom({self.expr!r}, {self.rel})"


class And(Formula):
    """Conjunction.  Use :func:`conjoin` to build flattened instances."""

    __slots__ = ("args",)

    _intern: dict[tuple, "And"] = {}

    def __new__(cls, args: tuple[Formula, ...]) -> "And":
        cached = cls._intern.get(args)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(args)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.args = args
            self._init_caches(hash((And, args)))
            cls._intern[args] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, And):
            return self.args == other.args
        return NotImplemented

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (And, (self.args,))

    def _compute_variables(self) -> Iterable[Var]:
        result: set[Var] = set()
        for arg in self.args:
            result |= arg.variables()
        return result

    def _compute_array_reads(self) -> Iterable[ArrayRead]:
        result: set[ArrayRead] = set()
        for arg in self.args:
            result |= arg.array_reads()
        return result

    def _compute_atoms(self) -> Iterable[Atom]:
        result: set[Atom] = set()
        for arg in self.args:
            result |= arg.atoms()
        return result

    def has_quantifier(self) -> bool:
        return any(arg.has_quantifier() for arg in self.args)

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return conjoin([arg.substitute(mapping) for arg in self.args])

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return conjoin([arg.substitute_reads(mapping) for arg in self.args])

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return conjoin([arg.rename(renaming) for arg in self.args])

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return all(arg.evaluate(valuation) for arg in self.args)

    def __str__(self) -> str:
        return "(" + " /\\ ".join(str(arg) for arg in self.args) + ")"

    def __repr__(self) -> str:
        return f"And({self.args!r})"


class Or(Formula):
    """Disjunction.  Use :func:`disjoin` to build flattened instances."""

    __slots__ = ("args",)

    _intern: dict[tuple, "Or"] = {}

    def __new__(cls, args: tuple[Formula, ...]) -> "Or":
        cached = cls._intern.get(args)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(args)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.args = args
            self._init_caches(hash((Or, args)))
            cls._intern[args] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Or):
            return self.args == other.args
        return NotImplemented

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Or, (self.args,))

    def _compute_variables(self) -> Iterable[Var]:
        result: set[Var] = set()
        for arg in self.args:
            result |= arg.variables()
        return result

    def _compute_array_reads(self) -> Iterable[ArrayRead]:
        result: set[ArrayRead] = set()
        for arg in self.args:
            result |= arg.array_reads()
        return result

    def _compute_atoms(self) -> Iterable[Atom]:
        result: set[Atom] = set()
        for arg in self.args:
            result |= arg.atoms()
        return result

    def has_quantifier(self) -> bool:
        return any(arg.has_quantifier() for arg in self.args)

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return disjoin([arg.substitute(mapping) for arg in self.args])

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return disjoin([arg.substitute_reads(mapping) for arg in self.args])

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return disjoin([arg.rename(renaming) for arg in self.args])

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return any(arg.evaluate(valuation) for arg in self.args)

    def __str__(self) -> str:
        return "(" + " \\/ ".join(str(arg) for arg in self.args) + ")"

    def __repr__(self) -> str:
        return f"Or({self.args!r})"


class Not(Formula):
    """Negation of an arbitrary sub-formula."""

    __slots__ = ("arg",)

    _intern: dict[Formula, "Not"] = {}

    def __new__(cls, arg: Formula) -> "Not":
        cached = cls._intern.get(arg)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(arg)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.arg = arg
            self._init_caches(hash((Not, arg)))
            cls._intern[arg] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Not):
            return self.arg == other.arg
        return NotImplemented

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Not, (self.arg,))

    def _compute_variables(self) -> Iterable[Var]:
        return self.arg.variables()

    def _compute_array_reads(self) -> Iterable[ArrayRead]:
        return self.arg.array_reads()

    def _compute_atoms(self) -> Iterable[Atom]:
        return self.arg.atoms()

    def has_quantifier(self) -> bool:
        return self.arg.has_quantifier()

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return negate(self.arg.substitute(mapping))

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return negate(self.arg.substitute_reads(mapping))

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return negate(self.arg.rename(renaming))

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return not self.arg.evaluate(valuation)

    def __str__(self) -> str:
        return f"!({self.arg})"

    def __repr__(self) -> str:
        return f"Not({self.arg!r})"


class Forall(Formula):
    """A universally quantified formula ``forall index: body``.

    The invariant-synthesis pipeline only produces instances in the array
    property fragment (the body is an implication whose hypothesis bounds the
    index variable by linear expressions), but the class itself admits any
    body; the quantifier-instantiation module checks the shape it needs.
    """

    __slots__ = ("index", "body")

    _intern: dict[tuple, "Forall"] = {}

    def __new__(cls, index: Var, body: Formula) -> "Forall":
        key = (index, body)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        with INTERN_LOCK:
            cached = cls._intern.get(key)
            if cached is not None:
                return cached
            self = object.__new__(cls)
            self.index = index
            self.body = body
            self._init_caches(hash((Forall, index, body)))
            cls._intern[key] = self
            return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Forall):
            return self.index == other.index and self.body == other.body
        return NotImplemented

    __hash__ = Formula.__hash__

    def __reduce__(self):
        return (Forall, (self.index, self.body))

    def _compute_variables(self) -> Iterable[Var]:
        return self.body.variables() - {self.index}

    def bound_variable(self) -> Var:
        return self.index

    def _compute_array_reads(self) -> Iterable[ArrayRead]:
        # Reads whose index mentions the bound variable are reported too;
        # callers that need only "ground" reads filter on variables().
        return self.body.array_reads()

    def _compute_atoms(self) -> Iterable[Atom]:
        return self.body.atoms()

    def has_quantifier(self) -> bool:
        return True

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        safe = {v: e for v, e in mapping.items() if v != self.index}
        return Forall(self.index, self.body.substitute(safe))

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return Forall(self.index, self.body.substitute_reads(mapping))

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        safe = {old: new for old, new in renaming.items() if old != self.index.name}
        return Forall(self.index, self.body.rename(safe))

    def instantiate(self, term: LinExpr) -> Formula:
        """Instantiate the bound variable with ``term``."""
        return self.body.substitute({self.index: term})

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        raise NotImplementedError("quantified formulas cannot be evaluated directly")

    def __str__(self) -> str:
        return f"(forall {self.index}: {self.body})"

    def __repr__(self) -> str:
        return f"Forall({self.index!r}, {self.body!r})"


def clear_formula_intern_caches() -> None:
    """Drop the hash-consing tables of the formula layer (see terms module).

    The ``TRUE``/``FALSE`` singletons stay interned on purpose.
    """
    with INTERN_LOCK:
        Atom._intern.clear()
        And._intern.clear()
        Or._intern.clear()
        Not._intern.clear()
        Forall._intern.clear()


# ----------------------------------------------------------------------
# Smart constructors
# ----------------------------------------------------------------------
def conjoin(parts: Iterable[Formula]) -> Formula:
    """Flattened, constant-folding conjunction."""
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for part in parts:
        if isinstance(part, BoolConst):
            if not part.value:
                return FALSE
            continue
        if isinstance(part, Atom):
            if part.is_trivially_true():
                continue
            if part.is_trivially_false():
                return FALSE
        if isinstance(part, And):
            for sub in part.args:
                if sub not in seen:
                    seen.add(sub)
                    flat.append(sub)
            continue
        if part not in seen:
            seen.add(part)
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(parts: Iterable[Formula]) -> Formula:
    """Flattened, constant-folding disjunction."""
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for part in parts:
        if isinstance(part, BoolConst):
            if part.value:
                return TRUE
            continue
        if isinstance(part, Atom):
            if part.is_trivially_false():
                continue
            if part.is_trivially_true():
                return TRUE
        if isinstance(part, Or):
            for sub in part.args:
                if sub not in seen:
                    seen.add(sub)
                    flat.append(sub)
            continue
        if part not in seen:
            seen.add(part)
            flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def negate(formula: Formula) -> Formula:
    """Negation with negation-normal-form push for the propositional part."""
    if isinstance(formula, BoolConst):
        return FALSE if formula.value else TRUE
    if isinstance(formula, Atom):
        return formula.negated()
    if isinstance(formula, Not):
        return formula.arg
    if isinstance(formula, And):
        return disjoin([negate(arg) for arg in formula.args])
    if isinstance(formula, Or):
        return conjoin([negate(arg) for arg in formula.args])
    if isinstance(formula, Forall):
        # The negation of a universal is existential; we keep it wrapped in
        # Not and let the quantifier module skolemise it.
        return Not(formula)
    raise TypeError(f"cannot negate {formula!r}")


def implies_formula(lhs: Formula, rhs: Formula) -> Formula:
    """The formula ``lhs -> rhs`` (as a disjunction)."""
    return disjoin([negate(lhs), rhs])


# ----------------------------------------------------------------------
# Comparison helpers: build normalised atoms from arbitrary expressions.
# ----------------------------------------------------------------------
def _diff(lhs, rhs) -> LinExpr:
    return coerce_expr(lhs) - coerce_expr(rhs)


def eq(lhs, rhs) -> Atom:
    """``lhs = rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.EQ)


def ne(lhs, rhs) -> Atom:
    """``lhs != rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.NE)


def le(lhs, rhs) -> Atom:
    """``lhs <= rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.LE)


def lt(lhs, rhs) -> Atom:
    """``lhs < rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.LT)


def ge(lhs, rhs) -> Atom:
    """``lhs >= rhs`` as a normalised atom."""
    return le(rhs, lhs)


def gt(lhs, rhs) -> Atom:
    """``lhs > rhs`` as a normalised atom."""
    return lt(rhs, lhs)


def conjuncts(formula: Formula) -> tuple[Formula, ...]:
    """Top-level conjuncts of a formula (the formula itself if not an And)."""
    if isinstance(formula, And):
        return formula.args
    if isinstance(formula, BoolConst) and formula.value:
        return ()
    return (formula,)


def disjuncts(formula: Formula) -> tuple[Formula, ...]:
    """Top-level disjuncts of a formula (the formula itself if not an Or)."""
    if isinstance(formula, Or):
        return formula.args
    if isinstance(formula, BoolConst) and not formula.value:
        return ()
    return (formula,)
