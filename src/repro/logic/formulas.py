"""Formulas of linear arithmetic with array reads and restricted quantification.

The formula language mirrors the assertion language of the paper:

* atoms are linear constraints ``e <= 0``, ``e < 0``, ``e = 0`` and ``e != 0``
  where ``e`` is a :class:`~repro.logic.terms.LinExpr` (possibly mentioning
  array reads),
* boolean structure (``And``, ``Or``, ``Not``, ``true``, ``false``), and
* a restricted universal quantifier of the *array property fragment*:
  ``Forall(k, body)`` where the body is typically an implication of the form
  ``lower <= k /\\ k <= upper  ->  a[k] = rhs``.

All formula objects are immutable and hashable so they can be used as
predicates inside sets (the predicate abstraction keeps per-location sets of
formulas).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from .terms import ArrayRead, Atomic, LinExpr, Rat, Var, coerce_expr

__all__ = [
    "Relation",
    "Formula",
    "Atom",
    "BoolConst",
    "And",
    "Or",
    "Not",
    "Forall",
    "TRUE",
    "FALSE",
    "eq",
    "ne",
    "le",
    "lt",
    "ge",
    "gt",
    "conjoin",
    "disjoin",
    "negate",
    "implies_formula",
]


class Relation(Enum):
    """Relations of normalised atoms ``expr REL 0``."""

    LE = "<="
    LT = "<"
    EQ = "="
    NE = "!="

    def negated(self) -> "Relation":
        return _NEGATIONS[self]

    def holds(self, value: Fraction) -> bool:
        if self is Relation.LE:
            return value <= 0
        if self is Relation.LT:
            return value < 0
        if self is Relation.EQ:
            return value == 0
        return value != 0


_NEGATIONS = {
    Relation.LE: Relation.LT,   # not(e <= 0)  ==  -e < 0
    Relation.LT: Relation.LE,   # not(e < 0)   ==  -e <= 0
    Relation.EQ: Relation.NE,
    Relation.NE: Relation.EQ,
}


class Formula:
    """Base class of all formulas.  Subclasses are frozen dataclasses."""

    # -- structural queries -------------------------------------------------
    def variables(self) -> set[Var]:
        raise NotImplementedError

    def array_reads(self) -> set[ArrayRead]:
        raise NotImplementedError

    def arrays(self) -> set[str]:
        return {r.array for r in self.array_reads()}

    def atoms(self) -> set["Atom"]:
        raise NotImplementedError

    def has_quantifier(self) -> bool:
        raise NotImplementedError

    # -- transformations ----------------------------------------------------
    def substitute(self, mapping: Mapping[Var, LinExpr]) -> "Formula":
        raise NotImplementedError

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> "Formula":
        raise NotImplementedError

    def rename(self, renaming: Mapping[str, str]) -> "Formula":
        raise NotImplementedError

    def primed(self) -> "Formula":
        renaming = {v.name: v.name + "'" for v in self.variables()}
        renaming.update({a: a + "'" for a in self.arrays()})
        return self.rename(renaming)

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        raise NotImplementedError

    # -- convenience --------------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return conjoin([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disjoin([self, other])

    def __invert__(self) -> "Formula":
        return negate(self)


@dataclass(frozen=True)
class BoolConst(Formula):
    """The constants ``true`` and ``false``."""

    value: bool

    def variables(self) -> set[Var]:
        return set()

    def array_reads(self) -> set[ArrayRead]:
        return set()

    def atoms(self) -> set["Atom"]:
        return set()

    def has_quantifier(self) -> bool:
        return False

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return self

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return self

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return self

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Atom(Formula):
    """A normalised linear atom ``expr REL 0``."""

    expr: LinExpr
    rel: Relation

    def variables(self) -> set[Var]:
        return self.expr.variables()

    def array_reads(self) -> set[ArrayRead]:
        return self.expr.array_reads()

    def atoms(self) -> set["Atom"]:
        return {self}

    def has_quantifier(self) -> bool:
        return False

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return Atom(self.expr.substitute(mapping), self.rel)

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return Atom(self.expr.substitute_reads(mapping), self.rel)

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return Atom(self.expr.rename(renaming), self.rel)

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return self.rel.holds(self.expr.evaluate(valuation))

    def negated(self) -> "Atom":
        """The negation of this atom, again as a single atom."""
        if self.rel in (Relation.EQ, Relation.NE):
            return Atom(self.expr, self.rel.negated())
        # not(e <= 0) == -e < 0 ; not(e < 0) == -e <= 0
        return Atom(-self.expr, self.rel.negated())

    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        return self.rel.holds(self.expr.const)

    def is_trivially_false(self) -> bool:
        if not self.expr.is_constant():
            return False
        return not self.rel.holds(self.expr.const)

    def __str__(self) -> str:
        return f"{self.expr} {self.rel.value} 0"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction.  Use :func:`conjoin` to build flattened instances."""

    args: tuple[Formula, ...]

    def variables(self) -> set[Var]:
        result: set[Var] = set()
        for arg in self.args:
            result |= arg.variables()
        return result

    def array_reads(self) -> set[ArrayRead]:
        result: set[ArrayRead] = set()
        for arg in self.args:
            result |= arg.array_reads()
        return result

    def atoms(self) -> set[Atom]:
        result: set[Atom] = set()
        for arg in self.args:
            result |= arg.atoms()
        return result

    def has_quantifier(self) -> bool:
        return any(arg.has_quantifier() for arg in self.args)

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return conjoin([arg.substitute(mapping) for arg in self.args])

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return conjoin([arg.substitute_reads(mapping) for arg in self.args])

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return conjoin([arg.rename(renaming) for arg in self.args])

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return all(arg.evaluate(valuation) for arg in self.args)

    def __str__(self) -> str:
        return "(" + " /\\ ".join(str(arg) for arg in self.args) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction.  Use :func:`disjoin` to build flattened instances."""

    args: tuple[Formula, ...]

    def variables(self) -> set[Var]:
        result: set[Var] = set()
        for arg in self.args:
            result |= arg.variables()
        return result

    def array_reads(self) -> set[ArrayRead]:
        result: set[ArrayRead] = set()
        for arg in self.args:
            result |= arg.array_reads()
        return result

    def atoms(self) -> set[Atom]:
        result: set[Atom] = set()
        for arg in self.args:
            result |= arg.atoms()
        return result

    def has_quantifier(self) -> bool:
        return any(arg.has_quantifier() for arg in self.args)

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return disjoin([arg.substitute(mapping) for arg in self.args])

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return disjoin([arg.substitute_reads(mapping) for arg in self.args])

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return disjoin([arg.rename(renaming) for arg in self.args])

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return any(arg.evaluate(valuation) for arg in self.args)

    def __str__(self) -> str:
        return "(" + " \\/ ".join(str(arg) for arg in self.args) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation of an arbitrary sub-formula."""

    arg: Formula

    def variables(self) -> set[Var]:
        return self.arg.variables()

    def array_reads(self) -> set[ArrayRead]:
        return self.arg.array_reads()

    def atoms(self) -> set[Atom]:
        return self.arg.atoms()

    def has_quantifier(self) -> bool:
        return self.arg.has_quantifier()

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        return negate(self.arg.substitute(mapping))

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return negate(self.arg.substitute_reads(mapping))

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        return negate(self.arg.rename(renaming))

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        return not self.arg.evaluate(valuation)

    def __str__(self) -> str:
        return f"!({self.arg})"


@dataclass(frozen=True)
class Forall(Formula):
    """A universally quantified formula ``forall index: body``.

    The invariant-synthesis pipeline only produces instances in the array
    property fragment (the body is an implication whose hypothesis bounds the
    index variable by linear expressions), but the class itself admits any
    body; the quantifier-instantiation module checks the shape it needs.
    """

    index: Var
    body: Formula

    def variables(self) -> set[Var]:
        return self.body.variables() - {self.index}

    def bound_variable(self) -> Var:
        return self.index

    def array_reads(self) -> set[ArrayRead]:
        # Reads whose index mentions the bound variable are reported too;
        # callers that need only "ground" reads filter on variables().
        return self.body.array_reads()

    def atoms(self) -> set[Atom]:
        return self.body.atoms()

    def has_quantifier(self) -> bool:
        return True

    def substitute(self, mapping: Mapping[Var, LinExpr]) -> Formula:
        safe = {v: e for v, e in mapping.items() if v != self.index}
        return Forall(self.index, self.body.substitute(safe))

    def substitute_reads(self, mapping: Mapping[ArrayRead, LinExpr]) -> Formula:
        return Forall(self.index, self.body.substitute_reads(mapping))

    def rename(self, renaming: Mapping[str, str]) -> Formula:
        safe = {old: new for old, new in renaming.items() if old != self.index.name}
        return Forall(self.index, self.body.rename(safe))

    def instantiate(self, term: LinExpr) -> Formula:
        """Instantiate the bound variable with ``term``."""
        return self.body.substitute({self.index: term})

    def evaluate(self, valuation: Mapping[Atomic, Rat]) -> bool:
        raise NotImplementedError("quantified formulas cannot be evaluated directly")

    def __str__(self) -> str:
        return f"(forall {self.index}: {self.body})"


# ----------------------------------------------------------------------
# Smart constructors
# ----------------------------------------------------------------------
def conjoin(parts: Iterable[Formula]) -> Formula:
    """Flattened, constant-folding conjunction."""
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for part in parts:
        if isinstance(part, BoolConst):
            if not part.value:
                return FALSE
            continue
        if isinstance(part, Atom):
            if part.is_trivially_true():
                continue
            if part.is_trivially_false():
                return FALSE
        if isinstance(part, And):
            for sub in part.args:
                if sub not in seen:
                    seen.add(sub)
                    flat.append(sub)
            continue
        if part not in seen:
            seen.add(part)
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(parts: Iterable[Formula]) -> Formula:
    """Flattened, constant-folding disjunction."""
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for part in parts:
        if isinstance(part, BoolConst):
            if part.value:
                return TRUE
            continue
        if isinstance(part, Atom):
            if part.is_trivially_false():
                continue
            if part.is_trivially_true():
                return TRUE
        if isinstance(part, Or):
            for sub in part.args:
                if sub not in seen:
                    seen.add(sub)
                    flat.append(sub)
            continue
        if part not in seen:
            seen.add(part)
            flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def negate(formula: Formula) -> Formula:
    """Negation with negation-normal-form push for the propositional part."""
    if isinstance(formula, BoolConst):
        return FALSE if formula.value else TRUE
    if isinstance(formula, Atom):
        return formula.negated()
    if isinstance(formula, Not):
        return formula.arg
    if isinstance(formula, And):
        return disjoin([negate(arg) for arg in formula.args])
    if isinstance(formula, Or):
        return conjoin([negate(arg) for arg in formula.args])
    if isinstance(formula, Forall):
        # The negation of a universal is existential; we keep it wrapped in
        # Not and let the quantifier module skolemise it.
        return Not(formula)
    raise TypeError(f"cannot negate {formula!r}")


def implies_formula(lhs: Formula, rhs: Formula) -> Formula:
    """The formula ``lhs -> rhs`` (as a disjunction)."""
    return disjoin([negate(lhs), rhs])


# ----------------------------------------------------------------------
# Comparison helpers: build normalised atoms from arbitrary expressions.
# ----------------------------------------------------------------------
def _diff(lhs, rhs) -> LinExpr:
    return coerce_expr(lhs) - coerce_expr(rhs)


def eq(lhs, rhs) -> Atom:
    """``lhs = rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.EQ)


def ne(lhs, rhs) -> Atom:
    """``lhs != rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.NE)


def le(lhs, rhs) -> Atom:
    """``lhs <= rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.LE)


def lt(lhs, rhs) -> Atom:
    """``lhs < rhs`` as a normalised atom."""
    return Atom(_diff(lhs, rhs), Relation.LT)


def ge(lhs, rhs) -> Atom:
    """``lhs >= rhs`` as a normalised atom."""
    return le(rhs, lhs)


def gt(lhs, rhs) -> Atom:
    """``lhs > rhs`` as a normalised atom."""
    return lt(rhs, lhs)


def conjuncts(formula: Formula) -> tuple[Formula, ...]:
    """Top-level conjuncts of a formula (the formula itself if not an And)."""
    if isinstance(formula, And):
        return formula.args
    if isinstance(formula, BoolConst) and formula.value:
        return ()
    return (formula,)


def disjuncts(formula: Formula) -> tuple[Formula, ...]:
    """Top-level disjuncts of a formula (the formula itself if not an Or)."""
    if isinstance(formula, Or):
        return formula.args
    if isinstance(formula, BoolConst) and not formula.value:
        return ()
    return (formula,)
