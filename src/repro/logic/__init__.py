"""Terms, formulas and normal forms used throughout the library."""

from .terms import ArrayRead, Atomic, LinExpr, Rat, Var, as_fraction, const, read, var
from .terms import clear_intern_caches as _clear_term_intern_caches
from .formulas import clear_formula_intern_caches as _clear_formula_intern_caches
from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolConst,
    Forall,
    Formula,
    Not,
    Or,
    Relation,
    conjoin,
    conjuncts,
    disjoin,
    disjuncts,
    eq,
    ge,
    gt,
    implies_formula,
    le,
    lt,
    ne,
    negate,
)
from .transform import FreshNames, dnf_cubes, quantifier_free, to_dnf, to_nnf
from .simplify import normalize_atom, simplify


def clear_intern_caches() -> None:
    """Drop the hash-consing tables of both the term and formula layers.

    Only call this between independent verification problems; see
    :mod:`repro.logic.terms` for the caveats.
    """
    _clear_term_intern_caches()
    _clear_formula_intern_caches()


__all__ = [
    "ArrayRead",
    "Atomic",
    "LinExpr",
    "Rat",
    "Var",
    "as_fraction",
    "clear_intern_caches",
    "const",
    "read",
    "var",
    "FALSE",
    "TRUE",
    "And",
    "Atom",
    "BoolConst",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "Relation",
    "conjoin",
    "conjuncts",
    "disjoin",
    "disjuncts",
    "eq",
    "ge",
    "gt",
    "implies_formula",
    "le",
    "lt",
    "ne",
    "negate",
    "FreshNames",
    "dnf_cubes",
    "quantifier_free",
    "to_dnf",
    "to_nnf",
    "normalize_atom",
    "simplify",
]
