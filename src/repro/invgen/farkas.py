"""Constraint-based instantiation of linear templates (Farkas' lemma).

This is the reproduction of the paper's concrete invariant-generation engine
for numeric path programs (Section 4.2 and the FORWARD experiment of
Section 5).  For every basic path of the path program a verification
condition is generated; Farkas' lemma turns "the conclusion is a non-negative
affine combination of the hypotheses" into constraints over the template
parameters and the combination multipliers.

The paper solves the resulting non-linear (bilinear) constraint system with a
CLP(Q) solver; no such solver exists in this environment, so the bilinearity
is removed in two phases instead (documented as a substitution in DESIGN.md):

1. *Equality conjuncts.*  The only bilinear products involve the multiplier
   attached to the template hypothesis of its own consecution condition; for
   an inductive affine equality that multiplier is ``+1`` (``-1`` for the
   reversed direction), so it is fixed and the system becomes an exact
   rational LP.  Non-trivial solutions are obtained by enumerating a
   normalisation (one template coefficient is pinned to 1).
2. *Inequality conjuncts.*  The equalities found in phase 1 are now concrete
   hypotheses; the remaining bilinear products involve only the inequality
   template's own multiplier in its consecution and safety conditions, which
   is enumerated over a tiny grid.

Every candidate instantiation is re-verified with the exact VC checker before
it is reported, so the search heuristics cannot affect soundness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..lang.cfg import Location, Program
from ..logic.formulas import (
    FALSE,
    TRUE,
    Atom,
    Formula,
    Relation,
    conjoin,
    conjuncts,
)
from ..logic.terms import LinExpr, Var
from ..smt.linear import LinConstraint, tighten_integer
from ..smt.lra import LraSolver
from ..smt.ssa import ssa_translate, versioned
from ..smt.vcgen import VcChecker
from .cutset import BasicPath, basic_paths
from .templates import LinearTemplate, ParamExpr, TemplateConjunction

__all__ = ["FarkasEngine", "FarkasResult"]


# ----------------------------------------------------------------------
# Data model of one proof obligation
# ----------------------------------------------------------------------
@dataclass
class _Hypothesis:
    expr: ParamExpr
    is_equality: bool
    #: fixed multiplier value (template hypotheses in phase 1/2), or None for
    #: a fresh LP multiplier variable (concrete hypotheses).
    fixed: Optional[Fraction]
    #: when the multiplier is enumerated, the index of its slot
    slot: Optional[int] = None


@dataclass
class _Obligation:
    """Raw ingredients of the Farkas systems for one basic path."""

    path: BasicPath
    concrete_eq: list[LinExpr]
    concrete_le_variants: list[list[LinExpr]]
    initial_renaming: dict[str, str]
    final_renaming: dict[str, str]
    is_error: bool


@dataclass
class FarkasResult:
    """Outcome of a template-instantiation attempt."""

    success: bool
    assertions: dict[Location, Formula] = field(default_factory=dict)
    lp_calls: int = 0
    reason: str = ""


class _NotApplicable(Exception):
    """Raised when the linear Farkas engine cannot handle the path program."""


class FarkasEngine:
    """Instantiates linear template maps on array-free path programs."""

    def __init__(self, checker: Optional[VcChecker] = None) -> None:
        self.checker = checker or VcChecker()
        self.lp = LraSolver(integer_mode=False)
        self.lp_calls = 0

    # ------------------------------------------------------------------
    def synthesize(
        self, program: Program, template_map: dict[Location, TemplateConjunction]
    ) -> FarkasResult:
        """Instantiate the templates into an inductive, safe invariant map."""
        self.lp_calls = 0
        try:
            obligations = self._obligations(program, template_map)
        except _NotApplicable as exc:
            return FarkasResult(False, reason=str(exc), lp_calls=self.lp_calls)

        eq_map = {
            loc: [t for t in conj.conjuncts if t.relation is Relation.EQ]
            for loc, conj in template_map.items()
        }
        le_map = {
            loc: [t for t in conj.conjuncts if t.relation is not Relation.EQ]
            for loc, conj in template_map.items()
        }

        equalities = self._phase_one(program, obligations, eq_map)

        if any(le_map.values()):
            result = self._phase_two(program, obligations, eq_map, le_map, equalities)
            if result is not None:
                return FarkasResult(True, result, self.lp_calls)
            return FarkasResult(False, reason="no instantiation found", lp_calls=self.lp_calls)

        # Equality-only template: verify the map (including safety) as is.
        assertions = {loc: conjoin(parts) for loc, parts in equalities.items()}
        if equalities and self._verify(program, assertions):
            return FarkasResult(True, assertions, self.lp_calls)
        return FarkasResult(
            False,
            reason="equality template is not strong enough for safety",
            lp_calls=self.lp_calls,
        )

    # ------------------------------------------------------------------
    # Obligation extraction
    # ------------------------------------------------------------------
    def _obligations(
        self, program: Program, template_map: dict[Location, TemplateConjunction]
    ) -> list[_Obligation]:
        obligations = []
        for path in basic_paths(program):
            is_error = path.target == program.error
            if not is_error and path.target not in template_map:
                continue
            translation = ssa_translate(path.commands)
            if translation.stores:
                raise _NotApplicable("path program writes arrays; linear engine not applicable")
            concrete_eq: list[LinExpr] = []
            concrete_le: list[LinExpr] = []
            disequalities: list[LinExpr] = []
            for _, constraint in translation.constraints:
                for part in conjuncts(constraint):
                    if not isinstance(part, Atom) or part.expr.array_reads():
                        continue
                    if part.rel is Relation.NE:
                        disequalities.append(part.expr)
                    elif part.rel is Relation.EQ:
                        concrete_eq.append(part.expr)
                    else:
                        concrete_le.append(
                            tighten_integer(LinConstraint(part.expr, part.rel)).expr
                        )
            variants = _disequality_variants(disequalities)
            obligations.append(
                _Obligation(
                    path=path,
                    concrete_eq=concrete_eq,
                    concrete_le_variants=[concrete_le + extra for extra in variants],
                    initial_renaming={name: versioned(name, 0) for name in program.variables},
                    final_renaming={
                        name: versioned(name, translation.var_versions.get(name, 0))
                        for name in program.variables
                    },
                    is_error=is_error,
                )
            )
        if not obligations:
            raise _NotApplicable("no proof obligations (no error paths, no templates)")
        return obligations

    # ------------------------------------------------------------------
    # Phase 1: affine equalities
    # ------------------------------------------------------------------
    def _phase_one(
        self,
        program: Program,
        obligations: Sequence[_Obligation],
        eq_map: dict[Location, list[LinearTemplate]],
    ) -> dict[Location, list[Formula]]:
        """Find affine-equality invariants for the cut-point templates."""
        found: dict[Location, list[Formula]] = {loc: [] for loc in eq_map}
        templates = [(loc, t) for loc, ts in eq_map.items() for t in ts]
        if not templates:
            return found

        normalisations: list[tuple[LinearTemplate, Var]] = []
        for _, template in templates:
            for variable in template.variables:
                normalisations.append((template, template.parameter(variable)))

        solutions: list[dict[Var, Fraction]] = []
        for template, parameter in normalisations:
            constraints = self._equality_systems(obligations, eq_map)
            if constraints is None:
                continue
            constraints = constraints + [Atom(LinExpr.make({parameter: 1}) - LinExpr.constant(1), Relation.EQ)]
            self.lp_calls += 1
            outcome = self.lp.check(constraints)
            if outcome.satisfiable and outcome.model is not None:
                solutions.append(dict(outcome.model))

        seen: set[tuple[Location, Formula]] = set()
        for solution in solutions:
            candidate = {
                loc: conjoin([t.instantiate(solution) for t in ts]) for loc, ts in eq_map.items()
            }
            if not self._verify(program, candidate, include_error=False):
                continue
            for loc, formula in candidate.items():
                for part in conjuncts(formula):
                    if (loc, part) not in seen and part != TRUE:
                        seen.add((loc, part))
                        found[loc].append(part)
        return found

    def _equality_systems(
        self,
        obligations: Sequence[_Obligation],
        eq_map: dict[Location, list[LinearTemplate]],
    ) -> Optional[list[Atom]]:
        """LP constraints for initiation/consecution of the equality templates."""
        constraints: list[Atom] = []
        counter = itertools.count()
        for obligation in obligations:
            if obligation.is_error:
                continue
            targets = eq_map.get(obligation.path.target, [])
            if not targets:
                continue
            source_templates = eq_map.get(obligation.path.source, [])
            for variant in obligation.concrete_le_variants:
                for target in targets:
                    for direction in (Fraction(1), Fraction(-1)):
                        hypotheses = self._hypotheses(
                            obligation, variant, source_templates, [], direction
                        )
                        target_expr = _scale(target.param_expr(obligation.final_renaming), direction)
                        constraints.extend(
                            _farkas_rows(hypotheses, target_expr, counter)
                        )
        return constraints

    # ------------------------------------------------------------------
    # Phase 2: inequality conjuncts
    # ------------------------------------------------------------------
    def _phase_two(
        self,
        program: Program,
        obligations: Sequence[_Obligation],
        eq_map: dict[Location, list[LinearTemplate]],
        le_map: dict[Location, list[LinearTemplate]],
        equalities: dict[Location, list[Formula]],
    ) -> Optional[dict[Location, Formula]]:
        # Enumeration slots: one per (obligation variant, target, source LE template).
        grids: list[tuple[Fraction, ...]] = []
        plans = []  # (obligation, variant, target_expr or None, slot indices per source template)
        counter = itertools.count()

        for obligation in obligations:
            targets: list[Optional[LinearTemplate]]
            if obligation.is_error:
                targets = [None]
            else:
                targets = list(le_map.get(obligation.path.target, []))
                if not targets:
                    continue
            source_le = le_map.get(obligation.path.source, [])
            for variant in obligation.concrete_le_variants:
                for target in targets:
                    slots = []
                    for _ in source_le:
                        slots.append(len(grids))
                        grids.append(
                            (Fraction(1), Fraction(0), Fraction(2), Fraction(3))
                            if target is not None
                            else (Fraction(0), Fraction(1), Fraction(2), Fraction(3))
                        )
                    plans.append((obligation, variant, target, source_le, slots))

        combos = itertools.product(*grids) if grids else iter([()])
        for combo in itertools.islice(combos, 0, 5000):
            constraints: list[Atom] = []
            for obligation, variant, target, source_le, slots in plans:
                extra_eq = [
                    part.expr.rename(obligation.initial_renaming)
                    for part in equalities.get(obligation.path.source, [])
                    if isinstance(part, Atom) and part.rel is Relation.EQ
                ]
                # The equalities found in phase 1 enter as *concrete*
                # hypotheses only.  Passing the symbolic equality template
                # here (as the consecution encoding of phase 1 does) would
                # let the LP instantiate it to a false hypothesis such as
                # ``1 = 0`` — its parameters are not re-established by any
                # phase-2 row — and "refute" every error path, so every
                # grid combination would solve the LP trivially and then
                # fail re-verification.
                hypotheses = self._hypotheses(
                    obligation, variant, [], extra_eq, Fraction(1)
                )
                for template, slot in zip(source_le, slots):
                    hypotheses.append(
                        _Hypothesis(
                            template.param_expr(obligation.initial_renaming),
                            False,
                            combo[slot],
                        )
                    )
                target_expr = (
                    target.param_expr(obligation.final_renaming) if target is not None else None
                )
                constraints.extend(_farkas_rows(hypotheses, target_expr, counter))
            self.lp_calls += 1
            outcome = self.lp.check(constraints)
            if not outcome.satisfiable or outcome.model is None:
                continue
            solution = dict(outcome.model)
            assertions: dict[Location, Formula] = {}
            for loc in set(eq_map) | set(le_map):
                parts = list(equalities.get(loc, []))
                for template in le_map.get(loc, []):
                    instantiated = template.instantiate(solution)
                    if instantiated != TRUE:
                        parts.append(instantiated)
                assertions[loc] = conjoin(parts)
            if self._verify(program, assertions):
                return assertions
        return None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _hypotheses(
        self,
        obligation: _Obligation,
        variant: Sequence[LinExpr],
        source_eq_templates: Sequence[LinearTemplate],
        extra_concrete_eq: Sequence[LinExpr],
        direction: Fraction,
    ) -> list[_Hypothesis]:
        hypotheses: list[_Hypothesis] = []
        for expr in list(obligation.concrete_eq) + list(extra_concrete_eq):
            hypotheses.append(_Hypothesis(ParamExpr.concrete(expr), True, None))
        for expr in variant:
            hypotheses.append(_Hypothesis(ParamExpr.concrete(expr), False, None))
        for template in source_eq_templates:
            # The inductive equality re-occurs in its own consecution with the
            # same orientation as the conclusion.
            hypotheses.append(
                _Hypothesis(template.param_expr(obligation.initial_renaming), True, direction)
            )
        return hypotheses

    def _verify(
        self,
        program: Program,
        assertions: dict[Location, Formula],
        include_error: bool = True,
    ) -> bool:
        for path in basic_paths(program):
            pre = assertions.get(path.source, TRUE)
            if path.target == program.error:
                if not include_error:
                    continue
                post: Formula = FALSE
            elif path.target in assertions:
                post = assertions[path.target]
            else:
                continue
            if post == TRUE:
                continue
            if not self.checker.check_triple(pre, path.commands, post):
                return False
        return True


# ----------------------------------------------------------------------
# Farkas row construction
# ----------------------------------------------------------------------
def _farkas_rows(
    hypotheses: Sequence[_Hypothesis],
    target: Optional[ParamExpr],
    counter,
) -> list[Atom]:
    """Constraints stating that ``target <= 0`` (or false) follows by Farkas."""
    multipliers: list[tuple[LinExpr, _Hypothesis]] = []
    rows: list[Atom] = []
    for hypothesis in hypotheses:
        if hypothesis.fixed is not None:
            mult = LinExpr.constant(hypothesis.fixed)
        else:
            mult_var = Var(f"lam${next(counter)}")
            mult = LinExpr.make({mult_var: 1})
            if not hypothesis.is_equality:
                rows.append(Atom(-mult, Relation.LE))  # multiplier >= 0
        multipliers.append((mult, hypothesis))

    variables: set[Var] = set()
    for _, hypothesis in multipliers:
        variables |= hypothesis.expr.variables()
    if target is not None:
        variables |= target.variables()

    for variable in sorted(variables):
        combination = LinExpr.constant(0)
        for mult, hypothesis in multipliers:
            combination = combination + _product(mult, hypothesis.expr.coeff(variable))
        goal = target.coeff(variable) if target is not None else LinExpr.constant(0)
        rows.append(Atom(combination - goal, Relation.EQ))

    combination = LinExpr.constant(0)
    for mult, hypothesis in multipliers:
        combination = combination + _product(mult, hypothesis.expr.const)
    if target is None:
        rows.append(Atom(LinExpr.constant(1) - combination, Relation.LE))
    else:
        rows.append(Atom(target.const - combination, Relation.LE))
    return rows


def _product(multiplier: LinExpr, coefficient: LinExpr) -> LinExpr:
    """Product of a multiplier and a coefficient; one factor is constant."""
    if multiplier.is_constant():
        return coefficient.scale(multiplier.const)
    if coefficient.is_constant():
        return multiplier.scale(coefficient.const)
    raise ValueError("bilinear product of two symbolic factors")


def _scale(expr: ParamExpr, factor: Fraction) -> ParamExpr:
    return ParamExpr(
        {v: e.scale(factor) for v, e in expr.coeffs.items()}, expr.const.scale(factor)
    )


def _disequality_variants(disequalities: Sequence[LinExpr], limit: int = 3) -> list[list[LinExpr]]:
    """Case-split hypotheses ``e != 0`` into ``e <= -1`` / ``e >= 1``."""
    variants: list[list[LinExpr]] = [[]]
    for expr in disequalities[:limit]:
        lower = expr + LinExpr.constant(1)   # e + 1 <= 0
        upper = -expr + LinExpr.constant(1)  # -e + 1 <= 0
        variants = [v + [lower] for v in variants] + [v + [upper] for v in variants]
    return variants
