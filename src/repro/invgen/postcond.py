"""Best-effort strongest postconditions.

The synthesizer places templates only at cut-points (as the paper's tool
does: "Invariants for non-cut-point locations are obtained by computing
strongest postconditions from cut-points in a standard way").  This module
implements that propagation.  For scalar assignments the postcondition of the
purely numeric part is exact (computed by renaming and Fourier–Motzkin
projection); universally quantified conjuncts are propagated with two rules:

* if the assigned variable does not occur in the conjunct it is kept
  unchanged, and
* if it occurs only in the index bounds, the bounds are rewritten using the
  bounds on the assigned variable available in the remaining conjuncts (the
  range can only shrink, so the result is implied by the exact
  postcondition).  This is what turns
  ``forall k: 0 <= k <= i-1 -> a[k] = 0   /\\   i >= n`` into
  ``forall k: 0 <= k <= n-1 -> a[k] = 0`` when ``i`` is reassigned.

Everything that cannot be propagated soundly is dropped, so the result is
always an over-approximation of the exact strongest postcondition.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..lang.commands import ArrayAssign, Assign, Assume, Command, Havoc, Skip
from ..logic.formulas import (
    Atom,
    Forall,
    Formula,
    Or,
    Relation,
    TRUE,
    conjoin,
    conjuncts,
)
from ..logic.terms import ArrayRead, LinExpr, Var
from ..smt.fourier_motzkin import project
from ..smt.linear import LinConstraint

__all__ = ["strongest_post", "strongest_post_path", "forall_range"]


def strongest_post_path(formula: Formula, commands: Sequence[Command]) -> Formula:
    """Propagate a state formula through a sequence of commands."""
    current = formula
    for command in commands:
        current = strongest_post(current, command)
    return current


def strongest_post(formula: Formula, command: Command) -> Formula:
    """Propagate a state formula through a single command."""
    if isinstance(command, (Skip,)):
        return formula
    if isinstance(command, Assume):
        return conjoin([formula, command.cond])
    if isinstance(command, Assign):
        return _post_assign(formula, command)
    if isinstance(command, Havoc):
        return _drop_variables(formula, set(command.vars))
    if isinstance(command, ArrayAssign):
        return _post_array_assign(formula, command)
    raise TypeError(f"unexpected command {command!r}")


# ----------------------------------------------------------------------
# Scalar assignment
# ----------------------------------------------------------------------
def _post_assign(formula: Formula, command: Assign) -> Formula:
    assigned = Var(command.var)
    parts = conjuncts(formula)
    numeric: list[Atom] = []
    others: list[Formula] = []
    for part in parts:
        if isinstance(part, Atom) and not part.expr.array_reads():
            numeric.append(part)
        else:
            others.append(part)

    kept: list[Formula] = []
    # Quantified (and read-containing) conjuncts.
    bounds = _variable_bounds(numeric, assigned)
    for part in others:
        if assigned not in part.variables():
            kept.append(part)
            continue
        kept.extend(_rewrite_quantified_bounds(part, assigned, bounds))
        # non-rewritable conjuncts are dropped (sound weakening)

    # Numeric conjuncts: exact projection.
    kept.extend(_numeric_post(numeric, command))
    return conjoin(kept)


def _post_array_assign(formula: Formula, command: ArrayAssign) -> Formula:
    """Best-effort postcondition of an array write.

    Conjuncts that do not mention the written array are preserved; a
    quantified conjunct over the written array of the canonical range shape
    is extended by one cell when the write lands exactly one past its upper
    bound with the value the conjunct predicts (the initialisation-loop
    pattern); everything else about the written array is dropped.  The result
    is always implied by the exact postcondition.
    """
    kept: list[Formula] = []
    for part in conjuncts(formula):
        if command.array not in part.arrays():
            kept.append(part)
            continue
        if isinstance(part, Forall):
            decomposed = forall_range(part)
            if decomposed is not None:
                lower, upper, body = decomposed
                predicted = body.substitute({part.index: command.index})
                reads_only_written_array = part.arrays() == {command.array}
                if (
                    reads_only_written_array
                    and upper + LinExpr.constant(1) == command.index
                    and predicted == eq_formula(command.array, command.index, command.value)
                ):
                    kept.append(make_range_forall(part.index, lower, command.index, body))
                    continue
        # dropped (sound weakening)
    return conjoin(kept)


def eq_formula(array: str, index: LinExpr, value: LinExpr) -> Formula:
    """The atom ``array[index] = value`` (helper for the extension rule)."""
    from ..logic.formulas import eq as _eq
    from ..logic.terms import ArrayRead

    return _eq(LinExpr.make({ArrayRead(array, index): 1}), value)


def _numeric_post(atoms: Sequence[Atom], command: Assign) -> list[Formula]:
    """Exact postcondition of the numeric conjuncts under an assignment."""
    assigned = Var(command.var)
    old = Var(command.var + "#old")
    constraints: list[LinConstraint] = []
    ok = True
    for atom in atoms:
        renamed = atom.substitute({assigned: LinExpr.make({old: 1})})
        for constraint in _atom_to_constraints(renamed):
            if constraint is None:
                ok = False
                break
            constraints.append(constraint)
    if not ok or command.expr.array_reads():
        # An array read on the right-hand side is not a linear term, so there
        # is no defining equation to project through; treating the assignment
        # as a havoc of the target is the sound weakening.
        return [a for a in atoms if assigned not in a.variables()]
    # x' = e[x -> old]
    rhs = command.expr.substitute({assigned: LinExpr.make({old: 1})})
    defining = LinExpr.make({assigned: 1}) - rhs
    constraints.append(LinConstraint(defining, Relation.EQ))
    constraints.append(LinConstraint(-defining, Relation.EQ))
    projected = project(constraints, [old])
    if projected is None:
        # The precondition was unsatisfiable; the exact post is 'false', but
        # returning the original atoms (minus the assigned variable) is a
        # sound over-approximation and keeps fill-in formulas readable.
        return [a for a in atoms if assigned not in a.variables()]
    return [Atom(c.expr, c.rel) for c in projected]


def _atom_to_constraints(atom: Atom) -> list[Optional[LinConstraint]]:
    if atom.rel is Relation.NE:
        return [None]
    if atom.rel is Relation.EQ:
        return [
            LinConstraint(atom.expr, Relation.LE),
            LinConstraint(-atom.expr, Relation.LE),
        ]
    return [LinConstraint(atom.expr, atom.rel)]


def _drop_variables(formula: Formula, names: set[str]) -> Formula:
    kept = [
        part
        for part in conjuncts(formula)
        if not ({v.name for v in part.variables()} & names)
    ]
    return conjoin(kept)


# ----------------------------------------------------------------------
# Quantified-range rewriting
# ----------------------------------------------------------------------
def forall_range(formula: Forall) -> Optional[tuple[LinExpr, LinExpr, Formula]]:
    """Decompose ``forall k: lo <= k /\\ k <= hi -> body``.

    The quantified candidates produced by this library are represented as
    ``forall k: (k < lo) \\/ (k > hi) \\/ body``; this helper recovers the
    ``(lo, hi, body)`` triple, returning ``None`` for other shapes.
    """
    k = formula.index
    body = formula.body
    if not isinstance(body, Or):
        return None
    lower: Optional[LinExpr] = None
    upper: Optional[LinExpr] = None
    payload: list[Formula] = []
    for arg in body.args:
        handled = False
        if isinstance(arg, Atom) and arg.rel in (Relation.LT, Relation.LE):
            coeff = arg.expr.coeff(k)
            rest = arg.expr - LinExpr.make({k: coeff})
            if coeff == 1 and not rest.variables() & {k}:
                # k + rest < 0  ==  k < -rest : this is the "k < lo" disjunct,
                # i.e. lo = -rest (for LT) or lo = -rest + 1 (for LE).
                bound = -rest if arg.rel is Relation.LT else -rest + LinExpr.constant(1)
                if lower is None:
                    lower = bound
                    handled = True
            elif coeff == -1 and not rest.variables() & {k}:
                # -k + rest < 0  ==  k > rest : the "k > hi" disjunct.
                bound = rest if arg.rel is Relation.LT else rest - LinExpr.constant(1)
                if upper is None:
                    upper = bound
                    handled = True
        if not handled:
            payload.append(arg)
    if lower is None or upper is None or not payload:
        return None
    return lower, upper, conjoin(payload) if len(payload) > 1 else payload[0]


def make_range_forall(index: Var, lower: LinExpr, upper: LinExpr, body: Formula) -> Forall:
    """Build ``forall index: lower <= index <= upper -> body``."""
    below = Atom(LinExpr.make({index: 1}) - lower, Relation.LT)  # index < lower
    above = Atom(upper - LinExpr.make({index: 1}), Relation.LT)  # index > upper
    return Forall(index, Or((below, above, body)))


def _variable_bounds(
    atoms: Sequence[Atom], variable: Var
) -> tuple[list[LinExpr], list[LinExpr]]:
    """Lower/upper bound expressions for ``variable`` found in ``atoms``."""
    lowers: list[LinExpr] = []
    uppers: list[LinExpr] = []
    for atom in atoms:
        coeff = atom.expr.coeff(variable)
        if coeff == 0:
            continue
        rest = atom.expr - LinExpr.make({variable: coeff})
        if variable in rest.variables():
            continue
        bound = rest.scale(Fraction(-1) / coeff)
        if atom.rel is Relation.EQ:
            lowers.append(bound)
            uppers.append(bound)
        elif atom.rel in (Relation.LE, Relation.LT):
            if coeff > 0:
                uppers.append(bound)
            else:
                lowers.append(bound)
    return lowers, uppers


def _rewrite_quantified_bounds(
    part: Formula, assigned: Var, bounds: tuple[list[LinExpr], list[LinExpr]]
) -> list[Formula]:
    """Rewrite a quantified conjunct whose range bounds mention ``assigned``.

    Every combination of admissible bound substitutions is returned (they are
    all implied by the exact postcondition; which one is *useful* depends on
    the downstream proof, so all of them are kept as separate conjuncts).
    """
    if not isinstance(part, Forall):
        return []
    decomposed = forall_range(part)
    if decomposed is None:
        return []
    lower, upper, body = decomposed
    if assigned in body.variables():
        return []
    lowers, uppers = bounds
    new_lowers = _substitute_bound(lower, assigned, lowers, uppers, want="max")
    new_uppers = _substitute_bound(upper, assigned, lowers, uppers, want="min")
    results: list[Formula] = []
    for new_lower in new_lowers[:4]:
        for new_upper in new_uppers[:4]:
            results.append(make_range_forall(part.index, new_lower, new_upper, body))
    return results


def _substitute_bound(
    bound: LinExpr,
    assigned: Var,
    lowers: list[LinExpr],
    uppers: list[LinExpr],
    want: str,
) -> list[LinExpr]:
    """Replacements of ``assigned`` inside a range bound that only shrink the range."""
    coeff = bound.coeff(assigned)
    if coeff == 0:
        return [bound]
    # For the new lower bound we need a value >= the old bound for every
    # admissible value of the assigned variable ("max"); for the new upper
    # bound we need "<=" ("min").
    if want == "max":
        replacements = uppers if coeff > 0 else lowers
    else:
        replacements = lowers if coeff > 0 else uppers
    results: list[LinExpr] = []
    for replacement in replacements:
        if assigned in replacement.variables():
            continue
        results.append(bound.substitute({assigned: replacement}))
    return results
