"""Invariant templates with symbolic parameters.

A template is a parametric assertion; instantiating its parameters with
rationals yields a candidate invariant.  The linear templates below are the
ones used in the paper's Section 5 experiments: an affine equality
``c_1 x_1 + ... + c_m x_m + c = 0`` over the program variables, optionally
conjoined with an affine inequality (the paper's refinement step for
FORWARD).  The Farkas engine of :mod:`repro.invgen.farkas` instantiates them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from ..logic.formulas import Atom, Formula, Relation, conjoin
from ..logic.terms import LinExpr, Var

__all__ = [
    "ParamExpr",
    "LinearTemplate",
    "TemplateConjunction",
    "equality_template",
    "inequality_template",
]

_param_counter = itertools.count()


@dataclass(frozen=True)
class ParamExpr:
    """A linear expression whose coefficients are linear in the parameters.

    ``coeffs[v]`` and ``const`` are :class:`LinExpr` objects over *parameter*
    variables; a concrete expression is represented with constant
    coefficient expressions.
    """

    coeffs: Mapping[Var, LinExpr]
    const: LinExpr

    @staticmethod
    def concrete(expr: LinExpr) -> "ParamExpr":
        coeffs = {}
        for atom, coeff in expr.terms:
            if not isinstance(atom, Var):
                raise ValueError(f"array read in Farkas constraint: {atom}")
            coeffs[atom] = LinExpr.constant(coeff)
        return ParamExpr(coeffs, LinExpr.constant(expr.const))

    def variables(self) -> set[Var]:
        return set(self.coeffs)

    def coeff(self, var: Var) -> LinExpr:
        return self.coeffs.get(var, LinExpr.constant(0))


@dataclass(frozen=True)
class LinearTemplate:
    """``sum(param_v * v) + param_0  REL  0`` over the given variables."""

    variables: tuple[Var, ...]
    relation: Relation
    name: str

    @staticmethod
    def fresh(variables: Sequence[Var], relation: Relation, prefix: str) -> "LinearTemplate":
        return LinearTemplate(tuple(variables), relation, f"{prefix}{next(_param_counter)}")

    # ------------------------------------------------------------------
    def parameter(self, variable: Var | None) -> Var:
        suffix = variable.name if variable is not None else "const"
        return Var(f"{self.name}${suffix}")

    def parameters(self) -> list[Var]:
        return [self.parameter(v) for v in self.variables] + [self.parameter(None)]

    def param_expr(self, renaming: Mapping[str, str] | None = None) -> ParamExpr:
        """The template as a parametric expression over (renamed) variables."""
        renaming = renaming or {}
        coeffs: dict[Var, LinExpr] = {}
        for variable in self.variables:
            target = Var(renaming.get(variable.name, variable.name))
            coeffs[target] = LinExpr.make({self.parameter(variable): 1})
        return ParamExpr(coeffs, LinExpr.make({self.parameter(None): 1}))

    def instantiate(self, solution: Mapping[Var, Fraction]) -> Formula:
        expr = LinExpr.constant(solution.get(self.parameter(None), Fraction(0)))
        for variable in self.variables:
            coeff = solution.get(self.parameter(variable), Fraction(0))
            expr = expr + LinExpr.make({variable: coeff})
        return Atom(expr, self.relation)

    def is_trivial(self, solution: Mapping[Var, Fraction]) -> bool:
        return all(
            solution.get(self.parameter(v), Fraction(0)) == 0 for v in self.variables
        )


@dataclass(frozen=True)
class TemplateConjunction:
    """A conjunction of linear templates placed at one cut-point."""

    conjuncts: tuple[LinearTemplate, ...]

    def parameters(self) -> list[Var]:
        params: list[Var] = []
        for template in self.conjuncts:
            params.extend(template.parameters())
        return params

    def instantiate(self, solution: Mapping[Var, Fraction]) -> Formula:
        parts = [
            template.instantiate(solution)
            for template in self.conjuncts
            if not template.is_trivial(solution)
        ]
        return conjoin(parts)

    def with_extra_inequality(self, variables: Sequence[Var]) -> "TemplateConjunction":
        """The paper's refinement step: conjoin one more inequality template."""
        extra = LinearTemplate.fresh(variables, Relation.LE, "d")
        return TemplateConjunction(self.conjuncts + (extra,))


def equality_template(variables: Sequence[Var]) -> TemplateConjunction:
    """A single affine-equality template (the paper's first FORWARD attempt)."""
    return TemplateConjunction((LinearTemplate.fresh(variables, Relation.EQ, "c"),))


def inequality_template(variables: Sequence[Var]) -> TemplateConjunction:
    """A single affine-inequality template."""
    return TemplateConjunction((LinearTemplate.fresh(variables, Relation.LE, "d"),))
