"""Invariant maps and their exact verification.

An *invariant map* ``eta`` assigns a formula to every location of a program.
It is an inductive, safe invariant map when it satisfies the three conditions
of Section 3 of the paper:

* I0 (Initiation): ``eta(l0) = true``,
* I1 (Inductiveness): ``eta(l) /\\ rho |= eta(l')`` for every transition
  ``(l, rho, l')``, and
* I2 (Safety): ``eta(lE) = false``.

Whatever heuristic produced a map, :func:`check_invariant_map` re-validates
all three conditions with the exact VC checker, so the synthesizer can never
produce an unsound refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..lang.cfg import Location, Program, Transition
from ..logic.formulas import FALSE, Formula, TRUE, conjoin, conjuncts
from ..smt.vcgen import VcChecker

__all__ = ["InvariantMap", "MapCheckResult", "check_invariant_map"]


@dataclass
class InvariantMap:
    """A mapping from locations to formulas."""

    program: Program
    assertions: dict[Location, Formula] = field(default_factory=dict)

    def get(self, location: Location) -> Formula:
        return self.assertions.get(location, TRUE)

    def set(self, location: Location, formula: Formula) -> None:
        self.assertions[location] = formula

    def strengthen(self, location: Location, formula: Formula) -> None:
        self.assertions[location] = conjoin([self.get(location), formula])

    def conjuncts_at(self, location: Location) -> tuple[Formula, ...]:
        return conjuncts(self.get(location))

    def copy(self) -> "InvariantMap":
        return InvariantMap(self.program, dict(self.assertions))

    def __str__(self) -> str:
        lines = []
        for location in sorted(self.assertions, key=lambda l: l.name):
            lines.append(f"  eta({location}) = {self.assertions[location]}")
        return "\n".join(lines)


@dataclass
class MapCheckResult:
    """Outcome of checking an invariant map against I0/I1/I2."""

    ok: bool
    failures: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def check_invariant_map(
    invariant_map: InvariantMap,
    checker: Optional[VcChecker] = None,
    require_safety: bool = True,
) -> MapCheckResult:
    """Verify I0, I1 and I2 for the given map.

    The error location is implicitly mapped to ``false``: I1 checks into the
    error location therefore require the corresponding path to be refuted.
    """
    checker = checker or VcChecker()
    program = invariant_map.program
    failures: list[str] = []

    # I0: the initial location must be mapped to true (anything weaker than
    # the invariant of a location reachable with no assumptions is wrong).
    initial = invariant_map.get(program.initial)
    if initial != TRUE and not checker.holds_initially(initial):
        failures.append(f"I0: eta({program.initial}) = {initial} is not 'true'")

    # I2: the error location must be mapped to false.  When ``require_safety``
    # is set, the effective assertion at the error location is ``false`` and
    # the corresponding obligations are checked as part of I1 below; an
    # explicit, weaker assertion stored for the error location is an error.
    if require_safety and program.error in invariant_map.assertions:
        error_formula = invariant_map.get(program.error)
        if error_formula != FALSE and not checker.check_entailment(error_formula, FALSE):
            failures.append(f"I2: eta({program.error}) = {error_formula} is not 'false'")

    # I1: inductiveness along every transition.
    for transition in program.transitions:
        pre = invariant_map.get(transition.source)
        if transition.target == program.error:
            post: Formula = FALSE if require_safety else invariant_map.get(transition.target)
        else:
            post = invariant_map.get(transition.target)
        if post == TRUE:
            continue
        if not checker.check_triple(pre, transition.commands, post):
            failures.append(f"I1: {transition} does not preserve eta")
    return MapCheckResult(not failures, failures)
