"""Cutsets and basic paths of a transition system.

A *cutset* is a set of locations such that every syntactic cycle of the CFG
passes through at least one of them (Section 3 of the paper); the invariant
synthesizer only places templates at cut-points and handles the straight-line
code between them with composed commands.  A *basic path* is a path between
two cut-points (or from the initial location, or to the error/exit locations)
that does not pass through a cut-point in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..lang.cfg import Location, Program, Transition
from ..lang.commands import Command

__all__ = ["BasicPath", "cutpoints", "basic_paths", "entry_paths", "error_paths"]


@dataclass(frozen=True)
class BasicPath:
    """A cut-point-free path ``source --transitions--> target``."""

    source: Location
    target: Location
    transitions: tuple[Transition, ...]

    @property
    def commands(self) -> tuple[Command, ...]:
        result: list[Command] = []
        for transition in self.transitions:
            result.extend(transition.commands)
        return tuple(result)

    def __str__(self) -> str:
        return f"{self.source} ->* {self.target} ({len(self.transitions)} transitions)"


def cutpoints(program: Program) -> set[Location]:
    """Loop heads of the program (targets of DFS back edges).

    For the reducible CFGs produced by the structured surface language (and by
    path-program construction) the loop heads form a cutset.  The initial
    location is *not* included; callers add it when they need the full
    anchor set.
    """
    return program.loop_heads()


def _anchor_set(program: Program) -> set[Location]:
    anchors = cutpoints(program)
    anchors.add(program.initial)
    anchors.add(program.error)
    return anchors


def basic_paths(program: Program) -> list[BasicPath]:
    """All basic paths between anchor locations (initial, cut-points, error).

    Paths ending in a location without outgoing transitions (a normal exit)
    are also reported, with that exit location as target; they carry no proof
    obligation but are useful for strongest-postcondition fill-in.
    """
    anchors = _anchor_set(program)
    paths: list[BasicPath] = []
    for source in sorted(anchors, key=lambda l: l.name):
        if source == program.error:
            continue
        paths.extend(_paths_from(program, source, anchors))
    return paths


def _paths_from(
    program: Program, source: Location, anchors: set[Location]
) -> list[BasicPath]:
    results: list[BasicPath] = []

    def explore(location: Location, prefix: list[Transition], visited: set[Location]) -> None:
        outgoing = program.outgoing(location)
        for transition in outgoing:
            target = transition.target
            if target in anchors:
                results.append(BasicPath(source, target, tuple(prefix + [transition])))
                continue
            if target in visited:
                # A cycle that avoids every anchor: treat the revisited
                # location as an additional anchor to guarantee termination.
                results.append(BasicPath(source, target, tuple(prefix + [transition])))
                continue
            explore(target, prefix + [transition], visited | {target})
        if not outgoing and prefix:
            # Normal exit; record the path so fill-in can reach exit locations.
            pass

    explore(source, [], {source})
    # Also record exit-terminated paths (targets with no outgoing edges).
    def explore_exits(location: Location, prefix: list[Transition], visited: set[Location]) -> None:
        for transition in program.outgoing(location):
            target = transition.target
            if target in anchors or target in visited:
                continue
            if not program.outgoing(target):
                results.append(BasicPath(source, target, tuple(prefix + [transition])))
            else:
                explore_exits(target, prefix + [transition], visited | {target})

    explore_exits(source, [], {source})
    return results


def entry_paths(program: Program, paths: Iterable[BasicPath]) -> list[BasicPath]:
    """Basic paths starting at the initial location."""
    return [p for p in paths if p.source == program.initial]


def error_paths(program: Program, paths: Iterable[BasicPath]) -> list[BasicPath]:
    """Basic paths ending at the error location."""
    return [p for p in paths if p.target == program.error]
