"""Candidate invariant generation (template instantiation space).

The constraint-based synthesizer of the paper instantiates parameters of
invariant templates.  This module enumerates the corresponding *candidate
assertions* over a structured, program-derived grid:

* linear candidates are mined from the guards of the path program, from the
  target assertion (including the paper's heuristic of replacing variables of
  the assertion by other program variables, which is how ``a+b = 3i`` arises
  from ``a+b = 3n``), and from simple bound patterns between variables;
* universally quantified candidates follow the tractable template shape of
  Section 4.2, ``forall k: p1(X) <= k <= p2(X) -> a[k] REL p3(X)``, with the
  bound expressions drawn from index variables (and their ±1 offsets) and the
  right-hand sides drawn from the values written to or compared against the
  array in the path program.

The candidates are then filtered to the greatest inductive subset by the
Houdini-style pruning loop in :mod:`repro.invgen.synthesize`; soundness never
depends on the heuristics here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..lang.cfg import Program, Transition
from ..lang.commands import ArrayAssign, Assign, Assume, Command
from ..logic.formulas import (
    Atom,
    Forall,
    Formula,
    Relation,
    eq,
    ge,
    le,
)
from ..logic.simplify import normalize_atom
from ..logic.terms import ArrayRead, LinExpr, Var
from .postcond import make_range_forall

__all__ = [
    "CandidatePool",
    "mine_linear_candidates",
    "quantified_candidates",
    "collect_array_facts",
    "ArrayFacts",
]

#: Bound variable used in every quantified candidate.
_INDEX = Var("__k")


@dataclass
class CandidatePool:
    """Candidates proposed for the cut-points of a path program."""

    linear: list[Formula] = field(default_factory=list)
    quantified: list[Formula] = field(default_factory=list)

    def all(self) -> list[Formula]:
        return list(self.linear) + list(self.quantified)

    def __len__(self) -> int:
        return len(self.linear) + len(self.quantified)


# ----------------------------------------------------------------------
# Linear candidates
# ----------------------------------------------------------------------
def mine_linear_candidates(program: Program, max_candidates: int = 120) -> list[Formula]:
    """Linear candidate assertions mined from the program text."""
    candidates: list[Atom] = []
    guard_atoms: list[Atom] = []
    assertion_atoms: list[Atom] = []

    for transition in program.transitions:
        into_error = transition.target == program.error
        for command in transition.commands:
            if not isinstance(command, Assume):
                continue
            for atom in command.cond.atoms():
                if into_error:
                    assertion_atoms.append(atom.negated())
                else:
                    guard_atoms.append(atom)

    scalars = [Var(name) for name in program.variables if not name.startswith("__")]

    # 1. Guards and their non-strict relaxations.
    for atom in guard_atoms:
        candidates.extend(_relaxations(atom))

    # 2. Assertion atoms and variable-substituted variants (the paper's
    #    template heuristic: parameterise the target assertion).
    for atom in assertion_atoms:
        candidates.extend(_relaxations(atom))
        mentioned = sorted(atom.expr.variables())
        for original in mentioned:
            for replacement in scalars:
                if replacement == original:
                    continue
                substituted = atom.substitute({original: LinExpr.make({replacement: 1})})
                candidates.extend(_relaxations(substituted))

    # 3. Simple bounds between scalar variables and against small constants.
    for variable in scalars:
        candidates.append(ge(LinExpr.make({variable: 1}), 0))
        candidates.append(ge(LinExpr.make({variable: 1}), 1))
    for left in scalars:
        for right in scalars:
            if left == right:
                continue
            candidates.append(le(LinExpr.make({left: 1}), LinExpr.make({right: 1})))

    # Deduplicate (after normalisation) and drop trivial or read-bearing atoms.
    unique: list[Formula] = []
    seen: set[Formula] = set()
    for atom in candidates:
        if atom.expr.array_reads():
            continue
        normalised = normalize_atom(atom)
        if not isinstance(normalised, Atom):
            continue
        if normalised.rel is Relation.NE:
            continue
        if normalised in seen:
            continue
        seen.add(normalised)
        unique.append(normalised)
        if len(unique) >= max_candidates:
            break
    return unique


def _relaxations(atom: Atom) -> list[Atom]:
    """An atom together with its useful weakenings."""
    results = [atom]
    if atom.rel is Relation.EQ:
        results.append(Atom(atom.expr, Relation.LE))
        results.append(Atom(-atom.expr, Relation.LE))
    elif atom.rel is Relation.LT:
        results.append(Atom(atom.expr, Relation.LE))
    elif atom.rel is Relation.NE:
        results = []
    return results


# ----------------------------------------------------------------------
# Quantified candidates
# ----------------------------------------------------------------------
@dataclass
class ArrayFacts:
    """Syntactic facts about how an array is used by a path program."""

    name: str
    #: Scalar variables used as write indices.
    write_index_vars: set[Var] = field(default_factory=set)
    #: Scalar variables used as read indices (in assumes).
    read_index_vars: set[Var] = field(default_factory=set)
    #: Right-hand sides as (relation-name, expression over the bound
    #: variable) pairs, where the relation name is one of "eq", "le", "ge".
    body_candidates: list[tuple[str, LinExpr]] = field(default_factory=list)
    #: Variables that bound the index variables in guards (e.g. ``n``).
    bound_vars: set[Var] = field(default_factory=set)


def collect_array_facts(program: Program) -> dict[str, ArrayFacts]:
    """Scan the path program and collect per-array template ingredients."""
    facts: dict[str, ArrayFacts] = {name: ArrayFacts(name) for name in program.arrays}
    index_vars: set[Var] = set()

    for transition in program.transitions:
        for command in transition.commands:
            if isinstance(command, ArrayAssign):
                fact = facts.setdefault(command.array, ArrayFacts(command.array))
                idx_vars = command.index.variables()
                fact.write_index_vars |= idx_vars
                index_vars |= idx_vars
                rhs = _generalise_over_index(command.value, command.index)
                _add_body_candidate(fact, "eq", rhs)
            elif isinstance(command, Assume):
                for atom in command.cond.atoms():
                    for read in atom.expr.array_reads():
                        fact = facts.setdefault(read.array, ArrayFacts(read.array))
                        idx_vars = read.index.variables()
                        fact.read_index_vars |= idx_vars
                        index_vars |= idx_vars
                        extracted = _extract_body(atom, read)
                        if extracted is not None:
                            _add_body_candidate(fact, *extracted)

    # Bound variables: scalars compared against index variables in guards.
    for transition in program.transitions:
        for command in transition.commands:
            if not isinstance(command, Assume):
                continue
            for atom in command.cond.atoms():
                if atom.expr.array_reads():
                    continue
                mentioned = atom.expr.variables()
                if mentioned & index_vars:
                    for fact in facts.values():
                        fact.bound_vars |= mentioned - index_vars
    return facts


def _generalise_over_index(value: LinExpr, index: LinExpr) -> LinExpr:
    """Rewrite a written value as a function of the quantified index.

    If the write index is a single variable ``i``, occurrences of ``i`` in the
    value (including inside nested array reads, as in ``b[i] = a[i]``) are
    replaced by the bound variable.
    """
    index_vars = sorted(index.variables())
    if len(index_vars) == 1 and index == LinExpr.make({index_vars[0]: 1}):
        return value.substitute({index_vars[0]: LinExpr.make({_INDEX: 1})})
    return value


def _extract_body(atom: Atom, read: ArrayRead) -> Optional[tuple[str, LinExpr]]:
    """From an atom mentioning ``read``, derive a candidate body ``a[k] REL rhs``."""
    coeff = atom.expr.coeff(read)
    if coeff == 0:
        return None
    rest = atom.expr - LinExpr.make({read: coeff})
    if rest.array_reads():
        return None
    rhs = rest.scale(-1 / coeff)
    rhs = _generalise_over_index(rhs, read.index)
    if atom.rel is Relation.EQ:
        return "eq", rhs
    if atom.rel in (Relation.LE, Relation.LT):
        # coeff > 0 : read <= rhs ; coeff < 0 : read >= rhs.  Strictness is
        # dropped (the candidate is weaker, hence more likely inductive).
        return ("le" if coeff > 0 else "ge"), rhs
    return None


def _add_body_candidate(fact: ArrayFacts, rel: str, rhs: LinExpr) -> None:
    if (rel, rhs) not in fact.body_candidates:
        fact.body_candidates.append((rel, rhs))


def quantified_candidates(
    program: Program, wide: bool = False, max_candidates: int = 400
) -> list[Formula]:
    """Universally quantified candidate assertions for every array."""
    facts = collect_array_facts(program)
    candidates: list[Formula] = []
    seen: set[Formula] = set()
    for name in sorted(facts):
        fact = facts[name]
        if not fact.body_candidates:
            continue
        index_vars = sorted(fact.write_index_vars | fact.read_index_vars)
        bound_vars = sorted(fact.bound_vars - set(index_vars))
        lowers, uppers = _bound_expressions(index_vars, bound_vars, wide)
        for rel, rhs in fact.body_candidates:
            body = _body_formula(name, rel, rhs)
            for lower in lowers:
                for upper in uppers:
                    if lower == upper + LinExpr.constant(1):
                        continue  # empty range
                    candidate = make_range_forall(_INDEX, lower, upper, body)
                    if candidate in seen:
                        continue
                    seen.add(candidate)
                    candidates.append(candidate)
                    if len(candidates) >= max_candidates:
                        return candidates
    return candidates


def _body_formula(array: str, rel: str, rhs: LinExpr) -> Formula:
    read = LinExpr.make({ArrayRead(array, LinExpr.make({_INDEX: 1})): 1})
    if rel == "eq":
        return eq(read, rhs)
    if rel == "le":
        return le(read, rhs)
    return ge(read, rhs)


def _bound_expressions(
    index_vars: Sequence[Var], bound_vars: Sequence[Var], wide: bool
) -> tuple[list[LinExpr], list[LinExpr]]:
    """Lower/upper bound expressions for the quantified index."""
    zero = LinExpr.constant(0)
    lowers: list[LinExpr] = [zero]
    uppers: list[LinExpr] = []
    for var in index_vars:
        expr = LinExpr.make({var: 1})
        lowers.append(expr)
        uppers.append(expr - LinExpr.constant(1))
    for var in bound_vars:
        expr = LinExpr.make({var: 1})
        uppers.append(expr - LinExpr.constant(1))
    if wide:
        for var in list(index_vars) + list(bound_vars):
            expr = LinExpr.make({var: 1})
            for offset in (-1, 0, 1):
                shifted = expr + LinExpr.constant(offset)
                if shifted not in lowers:
                    lowers.append(shifted)
                if shifted not in uppers:
                    uppers.append(shifted)
        if LinExpr.constant(1) not in lowers:
            lowers.append(LinExpr.constant(1))
    return lowers, uppers
