"""Constraint-based invariant synthesis for path programs."""

from .cutset import BasicPath, basic_paths, cutpoints
from .invariant_map import InvariantMap, MapCheckResult, check_invariant_map
from .candidates import (
    ArrayFacts,
    CandidatePool,
    collect_array_facts,
    mine_linear_candidates,
    quantified_candidates,
)
from .postcond import make_range_forall, strongest_post, strongest_post_path
from .templates import (
    LinearTemplate,
    ParamExpr,
    TemplateConjunction,
    equality_template,
    inequality_template,
)
from .farkas import FarkasEngine, FarkasResult
from .synthesize import PathInvariantSynthesizer, SynthesisOptions, SynthesisResult

__all__ = [
    "BasicPath",
    "basic_paths",
    "cutpoints",
    "InvariantMap",
    "MapCheckResult",
    "check_invariant_map",
    "ArrayFacts",
    "CandidatePool",
    "collect_array_facts",
    "mine_linear_candidates",
    "quantified_candidates",
    "make_range_forall",
    "strongest_post",
    "strongest_post_path",
    "LinearTemplate",
    "ParamExpr",
    "TemplateConjunction",
    "equality_template",
    "inequality_template",
    "FarkasEngine",
    "FarkasResult",
    "PathInvariantSynthesizer",
    "SynthesisOptions",
    "SynthesisResult",
]
