"""The path-invariant synthesizer.

Given a path program, the synthesizer produces an inductive, *safe* invariant
map (Section 3: I0/I1/I2) or reports failure.  It is the component the
CEGAR loop calls during abstraction refinement (Section 4.1).

The synthesizer works at the cut-point level:

1. propose candidate assertions for the cut-points — linear candidates mined
   from the path program plus the paper's assertion-parameterisation
   heuristic, universally quantified candidates following the Section 4.2
   template shape, and (optionally) instantiations produced by the Farkas
   template engine;
2. prune the candidates to their greatest inductive subset with a
   Houdini-style fixed point (every surviving assertion is established by
   every basic path into its cut-point, assuming the surviving assertions at
   the source cut-point) — this is the "sound and complete relative to the
   candidate space" counterpart of the paper's constraint solving;
3. check safety: every basic path into the error location must be refuted by
   the surviving assertions;
4. propagate the cut-point assertions to the remaining locations of the path
   program by strongest postconditions (as the paper's tool does), yielding
   the full path-invariant map.

Every reported map is re-validated with the exact VC checker; heuristic
failures can only lead to "no invariant found", never to unsoundness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..lang.cfg import Location, Program
from ..logic.formulas import FALSE, Formula, Relation, TRUE, conjoin, conjuncts
from ..logic.terms import Var
from ..smt.vcgen import VcChecker
from .candidates import mine_linear_candidates, quantified_candidates
from .cutset import BasicPath, basic_paths, cutpoints
from .farkas import FarkasEngine
from .invariant_map import InvariantMap
from .postcond import strongest_post_path
from .templates import TemplateConjunction, equality_template

__all__ = ["SynthesisResult", "PathInvariantSynthesizer", "SynthesisOptions"]


@dataclass
class SynthesisOptions:
    """Tuning knobs of the synthesizer."""

    #: Try the Farkas template engine for numeric (array-free) path programs.
    use_farkas: bool = True
    #: Try the wide quantified-candidate grid if the focused grid fails.
    allow_wide_quantified: bool = True
    #: Upper bound on Houdini candidates per cut-point (safety valve).
    max_candidates: int = 250


@dataclass
class SynthesisResult:
    """Outcome of path-invariant synthesis."""

    success: bool
    invariant_map: Optional[InvariantMap] = None
    cutpoint_assertions: dict[Location, Formula] = field(default_factory=dict)
    reason: str = ""
    candidates_proposed: int = 0
    candidates_surviving: int = 0
    houdini_iterations: int = 0
    farkas_used: bool = False
    time_seconds: float = 0.0


class PathInvariantSynthesizer:
    """Synthesizes inductive safe invariant maps for path programs."""

    def __init__(
        self,
        checker: Optional[VcChecker] = None,
        options: Optional[SynthesisOptions] = None,
    ) -> None:
        self.checker = checker or VcChecker()
        self.options = options or SynthesisOptions()
        self.farkas = FarkasEngine(self.checker)

    # ------------------------------------------------------------------
    def synthesize(self, program: Program) -> SynthesisResult:
        """Compute a safe invariant map of ``program`` (a path program)."""
        start = time.perf_counter()
        paths = basic_paths(program)
        cuts = sorted(cutpoints(program), key=lambda l: l.name)

        result = self._attempt(program, paths, cuts, wide=False)
        if not result.success and self.options.allow_wide_quantified and program.arrays:
            wide_result = self._attempt(program, paths, cuts, wide=True)
            if wide_result.success:
                result = wide_result
        result.time_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    def _attempt(
        self,
        program: Program,
        paths: Sequence[BasicPath],
        cuts: Sequence[Location],
        wide: bool,
    ) -> SynthesisResult:
        candidates = self._propose_candidates(program, cuts, wide)
        proposed = sum(len(v) for v in candidates.values())

        farkas_assertions, farkas_used = self._farkas_candidates(program, cuts)
        for location, formula in farkas_assertions.items():
            for part in conjuncts(formula):
                if part not in candidates.setdefault(location, []):
                    candidates[location].append(part)

        surviving, iterations = self._houdini(program, paths, candidates)
        assertions = {loc: conjoin(parts) for loc, parts in surviving.items()}

        if not self._safety_holds(program, paths, assertions):
            return SynthesisResult(
                False,
                cutpoint_assertions=assertions,
                reason="inductive candidates do not refute the error paths",
                candidates_proposed=proposed,
                candidates_surviving=sum(len(v) for v in surviving.values()),
                houdini_iterations=iterations,
                farkas_used=farkas_used,
            )

        invariant_map = self._fill_in(program, paths, assertions)
        return SynthesisResult(
            True,
            invariant_map=invariant_map,
            cutpoint_assertions=assertions,
            candidates_proposed=proposed,
            candidates_surviving=sum(len(v) for v in surviving.values()),
            houdini_iterations=iterations,
            farkas_used=farkas_used,
        )

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _propose_candidates(
        self, program: Program, cuts: Sequence[Location], wide: bool
    ) -> dict[Location, list[Formula]]:
        linear = mine_linear_candidates(program)
        quantified = quantified_candidates(program, wide=wide)
        pool = (linear + quantified)[: self.options.max_candidates]
        return {cut: list(pool) for cut in cuts}

    def _farkas_candidates(
        self, program: Program, cuts: Sequence[Location]
    ) -> tuple[dict[Location, Formula], bool]:
        """Equality invariants from the Farkas template engine (numeric only)."""
        if not self.options.use_farkas or program.arrays or not cuts:
            return {}, False
        variables = [Var(name) for name in program.variables if not name.startswith("__")]
        template_map = {cut: equality_template(variables) for cut in cuts}
        outcome = self.farkas.synthesize(program, template_map)
        if outcome.success:
            return outcome.assertions, True
        # Even a failed full synthesis may have produced useful equalities in
        # phase 1; re-run phase 1 only by requesting an equality template and
        # reading the partial result.  (The engine reports only full results,
        # so fall back to proposing nothing here.)
        return {}, False

    # ------------------------------------------------------------------
    # Houdini pruning
    # ------------------------------------------------------------------
    def _houdini(
        self,
        program: Program,
        paths: Sequence[BasicPath],
        candidates: dict[Location, list[Formula]],
    ) -> tuple[dict[Location, list[Formula]], int]:
        surviving = {loc: list(parts) for loc, parts in candidates.items()}
        iterations = 0
        relevant = [p for p in paths if p.target in surviving]
        # Locations whose assertion set shrank in the previous sweep; a path
        # only needs re-checking when its source shrank (its hypotheses got
        # weaker) — the first sweep checks everything.
        dirty: Optional[set[Location]] = None
        while True:
            iterations += 1
            changed_locations: set[Location] = set()
            for path in relevant:
                if dirty is not None and path.source not in dirty:
                    continue
                targets = surviving.get(path.target, [])
                if not targets:
                    continue
                pre = conjoin(surviving.get(path.source, [])) if path.source in surviving else TRUE
                kept: list[Formula] = []
                for candidate in targets:
                    if self.checker.check_triple(pre, path.commands, candidate):
                        kept.append(candidate)
                    else:
                        changed_locations.add(path.target)
                surviving[path.target] = kept
            if not changed_locations:
                break
            dirty = changed_locations
        return surviving, iterations

    def _safety_holds(
        self,
        program: Program,
        paths: Sequence[BasicPath],
        assertions: dict[Location, Formula],
    ) -> bool:
        for path in paths:
            if path.target != program.error:
                continue
            pre = assertions.get(path.source, TRUE)
            if not self.checker.check_triple(pre, path.commands, FALSE):
                return False
        return True

    # ------------------------------------------------------------------
    # Fill-in of non-cut-point locations
    # ------------------------------------------------------------------
    def _fill_in(
        self,
        program: Program,
        paths: Sequence[BasicPath],
        assertions: dict[Location, Formula],
    ) -> InvariantMap:
        invariant_map = InvariantMap(program)
        for location, formula in assertions.items():
            invariant_map.set(location, formula)
        invariant_map.set(program.initial, TRUE)

        # Propagate along every basic path, recording the strongest
        # postcondition at each intermediate location.
        intermediate: dict[Location, list[Formula]] = {}
        for path in paths:
            current = assertions.get(path.source, TRUE)
            for transition in path.transitions[:-1]:
                current = strongest_post_path(current, transition.commands)
                intermediate.setdefault(transition.target, []).append(current)
        for location, formulas in intermediate.items():
            if location in assertions or location == program.initial:
                continue
            if location == program.error:
                continue
            # Different basic paths may reach the same intermediate location;
            # the invariant is the disjunction, but for predicate extraction a
            # common-conjunct approximation is sufficient and keeps formulas
            # conjunctive.  (Locations of a path program have a single
            # incoming edge in almost all cases, so this rarely matters.)
            invariant_map.set(location, _common_conjuncts(formulas))
        return invariant_map


def _common_conjuncts(formulas: Sequence[Formula]) -> Formula:
    """Conjuncts shared by all formulas (an over-approximation of their disjunction)."""
    if not formulas:
        return TRUE
    common = set(conjuncts(formulas[0]))
    for formula in formulas[1:]:
        common &= set(conjuncts(formula))
    if not common:
        return TRUE
    return conjoin(sorted(common, key=str))
