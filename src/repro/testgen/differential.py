"""Differential fuzzing harness: paired engine configurations as oracles.

Each oracle runs one program through two configurations whose equivalence
an earlier PR established, and compares exactly what that PR guarantees:

``batched``
    Batched abstract-post oracle vs the scalar per-predicate baseline
    (PR 5): verdicts, precisions and post-decision counts must be
    **bit-identical** — the batching is a pure caching layer.
``parallel``
    ``jobs=2`` speculative exploration vs the sequential engine (PR 7):
    verdicts, precisions, post decisions and nodes created must be
    **bit-identical** — workers only pre-compute solver verdicts the
    sequential commit path consumes as cache hits.
``incremental``
    Persistent-ART engine vs the restart-the-world baseline (PR 2): the
    *verdicts* must agree whenever both runs decide.  One side exhausting
    its budget while the other decides is an **explained divergence**
    (restart re-pays abstract posts every round), recorded but not a
    mismatch; a safe-vs-unsafe conflict is always a mismatch.
``portfolio``
    Round-robin portfolio vs its winning arm run standalone under the
    same total budget (PR 3): verdicts must agree whenever both decide
    (the standalone arm may exhaust the budget the portfolio's shared
    checker saved it — explained divergence).
``serve``
    A live verification daemon vs an in-process engine (PR 9): verdicts,
    precisions, post decisions and nodes created must be **bit-identical**
    — the daemon builds a fresh checker per request and the fuzz options
    pin ``warm_start=False``, so the wire is the only difference.  The
    daemon is started once (in-process, on a background thread) and shared
    by every program in the run.

A program generated with a planted bug additionally checks the engine's
*soundness* directly: a ``safe`` verdict on a planted-bug program is
reported as a ``planted`` mismatch.

On any mismatch or crash, :func:`run_fuzz` re-runs the failing oracle
through the greedy shrinker and (optionally) writes a reproducer — the
seed plus the minimised source — into the regression corpus
``tests/corpus/``, which CI re-verifies on every push.

Budgets are **deterministic by construction**: :func:`fuzz_options`
refuses wall-clock budgets (``max_seconds``), because a comparison
against a nondeterministic cutoff would report phantom mismatches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from ..core.api import VerifierOptions
from ..core.engine import PortfolioEngine, Verdict, VerificationEngine
from ..core.verifier import make_refiner
from ..lang.ast import FunctionDef
from ..lang.cfg import build_program
from ..lang.parser import parse_function
from ..lang.source import format_function
from ..smt.vcgen import VcChecker
from .generator import GenConfig, GeneratedProgram, generate_corpus
from .shrink import shrink_function

__all__ = [
    "ORACLES",
    "Mismatch",
    "FuzzReport",
    "fuzz_options",
    "run_oracle",
    "run_fuzz",
    "shutdown_serve_oracle",
    "oracle_failure_predicate",
    "write_reproducer",
    "load_corpus",
    "CorpusEntry",
]

#: The paired-configuration oracles, in the order they run.
ORACLES = ("batched", "incremental", "parallel", "portfolio", "serve")

_DECIDED = (Verdict.SAFE, Verdict.UNSAFE)


def fuzz_options(
    max_refinements: int = 6,
    max_nodes: int = 300,
    max_solver_calls: int = 3000,
    **overrides,
) -> VerifierOptions:
    """Per-program options for differential runs: small and deterministic.

    Wall-clock budgets are rejected — the differential contracts compare
    deterministic counters, and a nondeterministic cutoff would fabricate
    mismatches that no engine bug caused.  ``max_solver_calls`` bounds the
    checker's Hoare-triple count instead: it is charged identically on both
    sides of every strict oracle (PR 5/PR 7 accounting guarantees), so a
    pathological generated program exhausts the budget at the same triple on
    each side and stays comparable.
    """
    options = VerifierOptions(
        max_refinements=max_refinements,
        max_nodes=max_nodes,
        max_solver_calls=max_solver_calls,
        warm_start=False,
        **overrides,
    )
    if options.max_seconds is not None:
        raise ValueError(
            "differential oracles need deterministic budgets; "
            "max_seconds would make comparisons racy"
        )
    return options


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclass
class Mismatch:
    """One oracle contract violation (or engine crash) on one program."""

    oracle: str
    #: ``verdict-conflict`` (safe vs unsafe), ``verdict`` (decided vs
    #: unknown where bit-identity is guaranteed), ``post-decisions``,
    #: ``precision``, ``nodes``, ``planted`` or ``crash``.
    kind: str
    detail: str
    seed: Optional[int] = None
    source: str = ""
    minimized_source: Optional[str] = None
    corpus_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "kind": self.kind,
            "detail": self.detail,
            "seed": self.seed,
            "source": self.source,
            "minimized_source": self.minimized_source,
            "corpus_path": self.corpus_path,
        }


# ----------------------------------------------------------------------
# Single-configuration engine runs
# ----------------------------------------------------------------------
def _render_precision(precision) -> dict[str, list[str]]:
    """A canonical, comparison-stable rendering of a precision."""
    if precision is None:
        return {}
    return {
        name: sorted(str(predicate) for predicate in predicates)
        for name, predicates in sorted(precision.by_location_name().items())
    }


def _engine_record(
    function: FunctionDef,
    options: VerifierOptions,
    batched: bool = True,
    incremental: bool = True,
    jobs: int = 1,
    refiner: Optional[str] = None,
) -> dict:
    """Run one engine configuration; a dict of everything the oracles compare."""
    checker = VcChecker(batched_posts=batched)
    engine = VerificationEngine(
        build_program(function),
        refiner=make_refiner(refiner or options.refiner, checker),
        checker=checker,
        strategy=options.strategy,
        budget=options.budget(),
        incremental=incremental,
        max_predicates_per_location=options.max_predicates_per_location,
        jobs=jobs,
    )
    result = engine.run()
    return {
        "verdict": result.verdict,
        "post_decisions": result.post_decisions(),
        "precision": _render_precision(result.precision),
        "nodes_created": (result.engine_stats or {}).get("nodes_created", 0),
        "refinements": result.num_refinements,
    }


def _compare_bit_identical(
    oracle: str, reference: dict, variant: dict, labels: tuple[str, str]
) -> list[Mismatch]:
    """The PR 5 / PR 7 contract: *everything* must match, including budget
    accounting — a decided-vs-unknown asymmetry is itself a mismatch."""
    ref_label, var_label = labels
    mismatches = []
    if reference["verdict"] != variant["verdict"]:
        conflict = (
            reference["verdict"] in _DECIDED and variant["verdict"] in _DECIDED
        )
        mismatches.append(
            Mismatch(
                oracle,
                "verdict-conflict" if conflict else "verdict",
                f"{ref_label}={reference['verdict']} "
                f"{var_label}={variant['verdict']}",
            )
        )
        return mismatches  # downstream counters are meaningless now
    if reference["post_decisions"] != variant["post_decisions"]:
        mismatches.append(
            Mismatch(
                oracle,
                "post-decisions",
                f"{ref_label}={reference['post_decisions']} "
                f"{var_label}={variant['post_decisions']}",
            )
        )
    if reference["precision"] != variant["precision"]:
        mismatches.append(
            Mismatch(oracle, "precision", "discovered precisions differ")
        )
    if reference["nodes_created"] != variant["nodes_created"]:
        mismatches.append(
            Mismatch(
                oracle,
                "nodes",
                f"{ref_label}={reference['nodes_created']} "
                f"{var_label}={variant['nodes_created']}",
            )
        )
    return mismatches


# ----------------------------------------------------------------------
# The oracles
# ----------------------------------------------------------------------
def _oracle_batched(function, options):
    reference = _engine_record(function, options, batched=True)
    variant = _engine_record(function, options, batched=False)
    record = {"batched": reference, "scalar": variant}
    return record, _compare_bit_identical(
        "batched", reference, variant, ("batched", "scalar")
    )


def _oracle_parallel(function, options):
    reference = _engine_record(function, options, jobs=1)
    variant = _engine_record(function, options, jobs=2)
    record = {"sequential": reference, "parallel": variant}
    return record, _compare_bit_identical(
        "parallel", reference, variant, ("jobs=1", "jobs=2")
    )


def _oracle_incremental(function, options):
    reference = _engine_record(function, options, incremental=True)
    variant = _engine_record(function, options, incremental=False)
    record = {"incremental": reference, "restart": variant}
    mismatches: list[Mismatch] = []
    ref_v, var_v = reference["verdict"], variant["verdict"]
    if ref_v in _DECIDED and var_v in _DECIDED and ref_v != var_v:
        mismatches.append(
            Mismatch(
                "incremental",
                "verdict-conflict",
                f"incremental={ref_v} restart={var_v}",
            )
        )
    elif ref_v != var_v:
        # One side exhausted its budget: restart re-pays abstract posts
        # every round, so asymmetric exhaustion is the expected shape.
        record["divergence"] = f"budget: incremental={ref_v} restart={var_v}"
    elif ref_v in _DECIDED and reference["precision"] != variant["precision"]:
        # Observed identical on the hand-written corpus, but not a
        # guaranteed contract — record, never fail.
        record["divergence"] = "precision-drift on decided verdicts"
    return record, mismatches


def _oracle_portfolio(function, options):
    checker = VcChecker()
    portfolio = PortfolioEngine(
        build_program(function),
        mode="round-robin",
        strategy=options.strategy,
        budget=options.budget(),
        checker=checker,
        max_predicates_per_location=options.max_predicates_per_location,
    ).run()
    record: dict = {
        "portfolio": {"verdict": portfolio.verdict, "winner": portfolio.winner}
    }
    mismatches: list[Mismatch] = []
    if portfolio.verdict in _DECIDED and portfolio.winner is not None:
        arm = _engine_record(function, options, refiner=portfolio.winner)
        record["winner_alone"] = arm
        if arm["verdict"] in _DECIDED and arm["verdict"] != portfolio.verdict:
            mismatches.append(
                Mismatch(
                    "portfolio",
                    "verdict-conflict",
                    f"portfolio={portfolio.verdict} "
                    f"winner {portfolio.winner} alone={arm['verdict']}",
                )
            )
        elif arm["verdict"] not in _DECIDED:
            # The portfolio's arms share one memoised checker; the lone arm
            # re-pays that work and may exhaust the same budget.
            record["divergence"] = (
                f"budget: winner {portfolio.winner} alone={arm['verdict']}"
            )
    return record, mismatches


# One lazily started in-process daemon shared by every serve-oracle run
# (per-program daemons would dominate fuzz wall-clock); reset by
# shutdown_serve_oracle().
_SERVE_ENDPOINT = None


def _serve_endpoint():
    global _SERVE_ENDPOINT
    if _SERVE_ENDPOINT is None:
        from ..serve.client import ServiceClient
        from ..serve.server import ServiceConfig, VerificationService

        service = VerificationService(ServiceConfig(port=0, workers=2)).start()
        client = ServiceClient("127.0.0.1", service.port)
        _SERVE_ENDPOINT = (service, client)
    return _SERVE_ENDPOINT


def shutdown_serve_oracle() -> None:
    """Stop the serve oracle's shared daemon (tests; otherwise it lives on a
    daemon thread until process exit)."""
    global _SERVE_ENDPOINT
    if _SERVE_ENDPOINT is not None:
        service, client = _SERVE_ENDPOINT
        _SERVE_ENDPOINT = None
        client.close()
        service.stop()


def _oracle_serve(function, options):
    """Daemon vs in-process: a live service must answer like a local engine.

    Valid as a *bit-identical* comparison because the daemon builds a fresh
    checker per request and :func:`fuzz_options` pins ``warm_start=False``
    (no store seeding) and rejects wall-clock budgets — both sides run the
    same deterministic engine, one of them behind the wire.
    """
    reference = _engine_record(function, options)
    _, client = _serve_endpoint()
    doc = client.verify(
        format_function(function), options=options, include_precision=True
    )
    variant = {
        "verdict": doc.get("verdict"),
        "post_decisions": doc.get("post_decisions", -1),
        "precision": doc.get("precision") or {},
        "nodes_created": (doc.get("engine") or {}).get("nodes_created", 0),
        "refinements": doc.get("refinements", -1),
    }
    if doc.get("verdict") not in _DECIDED and not variant["precision"]:
        # The daemon only ships banked precision, and only decided runs
        # bank (an undecided precision is dominated by whatever made the
        # run diverge) — so on matching undecided verdicts the precision
        # leg of the comparison is vacuous, not a mismatch.
        variant["precision"] = reference["precision"]
    record = {"in_process": reference, "daemon": variant}
    if doc.get("failure"):
        record["daemon_failure"] = doc["failure"]
    return record, _compare_bit_identical(
        "serve", reference, variant, ("in-process", "daemon")
    )


_ORACLE_FUNCS: dict[str, Callable] = {
    "batched": _oracle_batched,
    "incremental": _oracle_incremental,
    "parallel": _oracle_parallel,
    "portfolio": _oracle_portfolio,
    "serve": _oracle_serve,
}


def run_oracle(
    function: FunctionDef,
    oracle: str,
    options: Optional[VerifierOptions] = None,
) -> tuple[dict, list[Mismatch]]:
    """Run one differential oracle; ``(record, mismatches)``.

    An engine exception becomes a ``crash`` mismatch rather than
    propagating — a crash on a well-typed generated program is a finding,
    and the shrinker needs the predicate form, not the traceback.
    """
    if oracle not in _ORACLE_FUNCS:
        raise ValueError(f"unknown oracle {oracle!r}; expected one of {ORACLES}")
    options = options or fuzz_options()
    try:
        return _ORACLE_FUNCS[oracle](function, options)
    except Exception as error:  # noqa: BLE001 - crashes are findings
        return (
            {"crash": f"{type(error).__name__}: {error}"},
            [Mismatch(oracle, "crash", f"{type(error).__name__}: {error}")],
        )


def oracle_failure_predicate(
    oracle: str, options: VerifierOptions, reference: Mismatch
) -> Callable[[FunctionDef], bool]:
    """The shrinker predicate: does the candidate still fail this oracle?

    A crash reproduces when the same exception *type* is raised; a contract
    violation reproduces when the oracle reports any non-crash mismatch.
    """

    def predicate(candidate: FunctionDef) -> bool:
        _, mismatches = run_oracle(candidate, oracle, options)
        if reference.kind == "crash":
            wanted = reference.detail.split(":", 1)[0]
            return any(
                m.kind == "crash" and m.detail.split(":", 1)[0] == wanted
                for m in mismatches
            )
        return any(m.kind != "crash" for m in mismatches)

    return predicate


# ----------------------------------------------------------------------
# The regression corpus
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorpusEntry:
    """One committed reproducer: minimised source plus its fuzz recipe."""

    path: Path
    oracle: str
    seed: Optional[int]
    source: str


def write_reproducer(corpus_dir: Union[str, Path], mismatch: Mismatch) -> Path:
    """Write a mismatch's minimised program into the regression corpus."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{mismatch.oracle}-seed{mismatch.seed}"
    path = corpus_dir / f"{stem}.c"
    counter = 0
    while path.exists():
        counter += 1
        path = corpus_dir / f"{stem}-{counter}.c"
    detail = " ".join(mismatch.detail.split())[:200]
    body = mismatch.minimized_source or mismatch.source
    path.write_text(
        "// repro-fuzz reproducer (auto-minimised)\n"
        f"// oracle: {mismatch.oracle}\n"
        f"// seed: {mismatch.seed}\n"
        f"// kind: {mismatch.kind}\n"
        f"// detail: {detail}\n"
        + body
    )
    mismatch.corpus_path = str(path)
    return path


def load_corpus(corpus_dir: Union[str, Path]) -> list[CorpusEntry]:
    """Parse every committed reproducer's header and source."""
    entries = []
    for path in sorted(Path(corpus_dir).glob("*.c")):
        oracle, seed = None, None
        for line in path.read_text().splitlines():
            if line.startswith("// oracle:"):
                oracle = line.split(":", 1)[1].strip()
            elif line.startswith("// seed:"):
                text = line.split(":", 1)[1].strip()
                seed = int(text) if text.lstrip("-").isdigit() else None
        if oracle is None:
            raise ValueError(f"{path}: missing '// oracle:' header")
        entries.append(
            CorpusEntry(path=path, oracle=oracle, seed=seed, source=path.read_text())
        )
    return entries


def verify_corpus_entry(
    entry: CorpusEntry, options: Optional[VerifierOptions] = None
) -> list[Mismatch]:
    """Re-run a committed reproducer's oracle; empty = the bug stays fixed."""
    function = parse_function(entry.source)
    _, mismatches = run_oracle(function, entry.oracle, options)
    return mismatches


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Everything one fuzz batch produced, JSON-ready via :meth:`to_dict`."""

    seed: int
    count: int
    oracles: tuple[str, ...]
    programs: list[dict] = field(default_factory=list)
    mismatches: list[Mismatch] = field(default_factory=list)
    divergences: int = 0
    #: Reference-run verdict histogram (the batched/incremental baseline).
    verdicts: dict = field(default_factory=dict)
    #: Per-oracle aggregates: programs, total posts per side, wall seconds.
    oracle_totals: dict = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def mean_posts(self) -> float:
        posts = [p["post_decisions"] for p in self.programs if "post_decisions" in p]
        return round(sum(posts) / len(posts), 2) if posts else 0.0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "oracles": list(self.oracles),
            "programs_generated": len(self.programs),
            "mismatches": [m.to_dict() for m in self.mismatches],
            "divergences": self.divergences,
            "verdicts": dict(self.verdicts),
            "mean_posts": self.mean_posts(),
            "oracle_totals": self.oracle_totals,
            "seconds": round(self.seconds, 3),
            "programs": self.programs,
        }

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.mismatches)} MISMATCH(ES)"
        verdicts = ", ".join(
            f"{count} {verdict}" for verdict, count in sorted(self.verdicts.items())
        )
        return (
            f"fuzz: {len(self.programs)} programs x {len(self.oracles)} oracle(s) "
            f"-> {status} ({self.divergences} explained divergence(s); "
            f"{verdicts}; mean posts {self.mean_posts()}; "
            f"{self.seconds:.1f}s)"
        )


def run_fuzz(
    seed: int = 0,
    count: int = 25,
    oracles: Sequence[str] = ORACLES,
    options: Optional[VerifierOptions] = None,
    config: Optional[GenConfig] = None,
    plant_every: int = 3,
    shrink: bool = True,
    corpus_dir: Optional[Union[str, Path]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Generate ``count`` programs and run each through the paired oracles.

    Any mismatch is shrunk to a 1-minimal reproducer (``shrink=False``
    skips that, e.g. for quick triage) and, with ``corpus_dir`` set,
    written out as a committed regression corpus entry.
    """
    options = options or fuzz_options()
    for name in oracles:
        if name not in ORACLES:
            raise ValueError(f"unknown oracle {name!r}; expected one of {ORACLES}")
    started = time.perf_counter()
    report = FuzzReport(seed=seed, count=count, oracles=tuple(oracles))
    totals = {
        name: {"programs": 0, "reference_posts": 0, "variant_posts": 0, "seconds": 0.0}
        for name in oracles
    }
    for generated in generate_corpus(seed, count, config, plant_every):
        program_record: dict = {
            "seed": generated.seed,
            "planted": generated.expect_unsafe,
            "oracles": {},
        }
        reference_verdict: Optional[str] = None
        for oracle in oracles:
            oracle_started = time.perf_counter()
            record, mismatches = run_oracle(generated.function, oracle, options)
            elapsed = time.perf_counter() - oracle_started
            program_record["oracles"][oracle] = record
            sides = [v for v in record.values() if isinstance(v, dict) and "verdict" in v]
            if sides:
                totals[oracle]["programs"] += 1
                totals[oracle]["reference_posts"] += sides[0].get("post_decisions", 0)
                if len(sides) > 1:
                    totals[oracle]["variant_posts"] += sides[-1].get(
                        "post_decisions", 0
                    )
                if reference_verdict is None:
                    reference_verdict = sides[0]["verdict"]
                    program_record["post_decisions"] = sides[0].get(
                        "post_decisions", 0
                    )
            totals[oracle]["seconds"] += elapsed
            if "divergence" in record:
                report.divergences += 1
            for mismatch in mismatches:
                mismatch.seed = generated.seed
                mismatch.source = generated.source
                if log:
                    log(
                        f"MISMATCH seed={generated.seed} oracle={oracle} "
                        f"kind={mismatch.kind}: {mismatch.detail}"
                    )
                if shrink:
                    predicate = oracle_failure_predicate(oracle, options, mismatch)
                    try:
                        minimized = shrink_function(generated.function, predicate)
                        mismatch.minimized_source = format_function(minimized)
                    except ValueError:
                        # Flaky failure: it did not reproduce on the rerun.
                        mismatch.detail += " [did not reproduce under shrinking]"
                if corpus_dir is not None:
                    write_reproducer(corpus_dir, mismatch)
                report.mismatches.append(mismatch)
        # A planted bug the engine *proves safe* is an unsoundness finding
        # in its own right — no budget excuse applies to a SAFE verdict.
        if generated.expect_unsafe and reference_verdict == Verdict.SAFE:
            mismatch = Mismatch(
                "planted",
                "planted",
                "engine proved a planted-bug program safe",
                seed=generated.seed,
                source=generated.source,
            )
            if corpus_dir is not None:
                write_reproducer(corpus_dir, mismatch)
            report.mismatches.append(mismatch)
            if log:
                log(f"MISMATCH seed={generated.seed} planted bug proved safe")
        if reference_verdict is not None:
            report.verdicts[reference_verdict] = (
                report.verdicts.get(reference_verdict, 0) + 1
            )
        program_record["verdict"] = reference_verdict
        report.programs.append(program_record)
        if log and len(report.programs) % 25 == 0:
            log(
                f"{len(report.programs)}/{count} programs, "
                f"{len(report.mismatches)} mismatch(es)"
            )
    for name in oracles:
        totals[name]["seconds"] = round(totals[name]["seconds"], 3)
    report.oracle_totals = totals
    report.seconds = time.perf_counter() - started
    return report
