"""Seeded program generation, shrinking and differential fuzzing.

Three layers, each usable on its own:

* :mod:`repro.testgen.generator` — a deterministic, seeded generator of
  well-typed mini-C programs (:func:`generate` / :func:`generate_corpus`),
  with shape knobs (:class:`GenConfig`) and a plant-a-reachable-bug mode;
* :mod:`repro.testgen.shrink` — a greedy delta-debugging shrinker
  (:func:`shrink_function`) minimising a program against any predicate;
* :mod:`repro.testgen.differential` — paired-configuration oracles over
  the verification engine (:data:`ORACLES`, :func:`run_fuzz`) asserting
  the equivalence contracts established by earlier PRs, shrinking any
  failure into a committed reproducer.

CLI entry point: ``python -m repro fuzz --seed S --count N --oracle all``.
"""

from .generator import GenConfig, GeneratedProgram, generate, generate_corpus
from .shrink import shrink_function, shrinkable_variants
from .differential import (
    ORACLES,
    FuzzReport,
    Mismatch,
    fuzz_options,
    run_fuzz,
    run_oracle,
    shutdown_serve_oracle,
)

__all__ = [
    "GenConfig",
    "GeneratedProgram",
    "generate",
    "generate_corpus",
    "shrink_function",
    "shrinkable_variants",
    "ORACLES",
    "FuzzReport",
    "Mismatch",
    "fuzz_options",
    "run_fuzz",
    "run_oracle",
    "shutdown_serve_oracle",
]
