"""Greedy delta-debugging shrinker for mini-C functions.

:func:`shrink_function` minimises a failing program against an arbitrary
predicate: repeatedly try every one-edit-smaller variant (statement
deletion, branch/loop flattening, block splicing), keep the first variant
that is still *valid* (typechecks and builds a CFG) and still *fails*
(the predicate returns True), and restart; stop at a fixpoint.  The
result is therefore

* **sound** — the minimised program still satisfies the predicate (only
  passing candidates are ever accepted), and
* **1-minimal** — no single further edit from
  :func:`shrinkable_variants` yields a valid program that still fails.

The predicate sees a :class:`~repro.lang.ast.FunctionDef` and must be
deterministic (the differential harness re-runs the failing oracle).
Invalid candidates are filtered *before* the predicate runs, so oracle
predicates never see ill-typed programs.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..lang.ast import (
    Block,
    ForStmt,
    FunctionDef,
    IfStmt,
    Stmt,
    WhileStmt,
)
from ..lang.cfg import CfgBuildError, build_program
from ..lang.typecheck import TypeCheckError, check_function

__all__ = ["shrink_function", "shrinkable_variants", "is_valid_function"]


def is_valid_function(function: FunctionDef) -> bool:
    """True when the function typechecks and builds a transition system."""
    try:
        check_function(function)
        build_program(function, do_compact=True)
    except (TypeCheckError, CfgBuildError, ValueError):
        return False
    return True


# ----------------------------------------------------------------------
# One-edit variants
# ----------------------------------------------------------------------
def _stmt_variants(statement: Stmt) -> Iterator[Stmt]:
    """Variants of one statement with a single nested edit applied."""
    if isinstance(statement, Block):
        for variant in _block_variants(statement):
            yield variant
    elif isinstance(statement, IfStmt):
        for variant in _block_variants(statement.then_branch):
            yield IfStmt(
                statement.condition, variant, statement.else_branch,
                position=statement.position,
            )
        if statement.else_branch is not None:
            # Dropping the whole else-branch is an edit of its own.
            yield IfStmt(
                statement.condition, statement.then_branch, None,
                position=statement.position,
            )
            for variant in _block_variants(statement.else_branch):
                yield IfStmt(
                    statement.condition, statement.then_branch, variant,
                    position=statement.position,
                )
    elif isinstance(statement, WhileStmt):
        for variant in _block_variants(statement.body):
            yield WhileStmt(
                statement.condition, variant,
                label=statement.label, position=statement.position,
            )
    elif isinstance(statement, ForStmt):
        for variant in _block_variants(statement.body):
            yield ForStmt(
                statement.init, statement.condition, statement.update, variant,
                label=statement.label, position=statement.position,
            )


def _block_variants(block: Block) -> Iterator[Block]:
    """Every block with exactly one edit applied somewhere inside."""
    statements = block.statements
    for index, statement in enumerate(statements):
        rest = statements[index + 1 :]
        # 1. Delete the statement outright.
        yield Block(statements[:index] + rest)
        # 2. Flatten structured statements into their contents (keeps the
        #    failing payload when it lives inside the construct).
        if isinstance(statement, IfStmt):
            yield Block(
                statements[:index] + statement.then_branch.statements + rest
            )
            if statement.else_branch is not None:
                yield Block(
                    statements[:index] + statement.else_branch.statements + rest
                )
        elif isinstance(statement, (WhileStmt, ForStmt)):
            yield Block(statements[:index] + statement.body.statements + rest)
        elif isinstance(statement, Block):
            yield Block(statements[:index] + statement.statements + rest)
        # 3. Recurse into the statement's own blocks.
        for variant in _stmt_variants(statement):
            yield Block(statements[:index] + (variant,) + rest)


def shrinkable_variants(function: FunctionDef) -> Iterator[FunctionDef]:
    """Every function one edit smaller than ``function`` (may be invalid)."""
    for body in _block_variants(function.body):
        yield FunctionDef(function.name, function.params, body)


# ----------------------------------------------------------------------
# The greedy loop
# ----------------------------------------------------------------------
def shrink_function(
    function: FunctionDef,
    predicate: Callable[[FunctionDef], bool],
    max_steps: int = 5000,
) -> FunctionDef:
    """Greedily minimise ``function`` while ``predicate`` keeps failing it.

    ``predicate(candidate) is True`` means "still exhibits the failure".
    Raises ``ValueError`` if the original function does not satisfy the
    predicate (nothing to shrink).  ``max_steps`` bounds the total number
    of candidate evaluations (predicate calls); on exhaustion the best
    reduction so far is returned.
    """
    if not predicate(function):
        raise ValueError("shrink_function: the original program must fail the predicate")
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in shrinkable_variants(function):
            if steps >= max_steps:
                break
            if not is_valid_function(candidate):
                continue
            steps += 1
            if predicate(candidate):
                function = candidate
                progress = True
                break
    return function
