"""Seeded, deterministic generator of well-typed mini-C programs.

:func:`generate` maps ``(seed, GenConfig)`` to a :class:`GeneratedProgram`
— the same pair yields the *identical* AST and source text in every
process, on every platform, under every ``PYTHONHASHSEED``: the only
randomness source is one :class:`random.Random` instance, and generation
never iterates a set or dict.  That determinism is what makes a fuzz
failure a one-line reproducer (``repro fuzz --seed S``).

The generated fragment is exactly what the rest of the pipeline accepts:

* every program typechecks (:func:`repro.lang.typecheck.check_function`)
  and builds a CFG (:func:`repro.lang.cfg.build_program`);
* multiplication always has a constant factor (the typechecker rejects
  non-linear products);
* negative constants are ``UnaryOp('-', ...)``, never negative literals
  (the parser cannot produce those);
* a havoc is a :class:`~repro.lang.ast.HavocStmt`, never a bare
  ``AssignStmt(x, NondetExpr())`` (the parser reads ``x = nondet();`` as
  a havoc, which would break AST round-trips);
* loops are bounded counter loops (``int c = 0; while (c < K) {...}``
  with the counter never reassigned in the body) or ``while (*)`` loops
  — both keep every statement after them structurally reachable, which
  the plant-a-bug mode relies on.

**Plant-a-bug mode** (``GenConfig(plant_bug=True)``) inserts
``bug = nondet(); assert(bug != K);`` at a random top-level spine position
and suppresses ``assume`` statements everywhere (an assume could make the
spine unreachable).  Every other construct joins back to the spine, so the
planted assertion is reachable and the program is guaranteed UNSAFE —
exercising the error-path half of every differential oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from ..lang.ast import (
    ArrayAssignStmt,
    ArrayRef,
    AssertStmt,
    AssignStmt,
    AssumeStmt,
    BinaryOp,
    Block,
    BoolBinary,
    BoolExpr,
    BoolNondet,
    BoolNot,
    Comparison,
    DeclStmt,
    Expr,
    FunctionDef,
    HavocStmt,
    IfStmt,
    IntLiteral,
    NondetExpr,
    SkipStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from ..lang.source import format_function

__all__ = ["GenConfig", "GeneratedProgram", "generate", "generate_corpus"]

_COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class GenConfig:
    """Shape knobs of the generator (all sampled through one seeded RNG)."""

    #: Statement slots in the top-level body (loops/branches count as one).
    statements: int = 5
    #: Maximum nesting depth of branches and loops.
    max_depth: int = 2
    #: Scalar variables declared up front.
    scalars: int = 3
    #: Array variables declared up front (0 disables array constructs).
    arrays: int = 1
    #: Upper bound of counter-loop trip counts (1..loop_bound).
    loop_bound: int = 4
    #: Probability a statement slot becomes an ``if``.
    branch_density: float = 0.25
    #: Probability a statement slot becomes a loop (depth permitting).
    loop_density: float = 0.2
    #: Probability a slot becomes an array read/write (arrays permitting).
    array_density: float = 0.25
    #: Probability a slot becomes an ``assume`` (forced to 0 by plant_bug).
    assume_density: float = 0.12
    #: Probability a slot becomes an ``assert``.
    assert_density: float = 0.3
    #: Magnitude bound of generated integer constants.
    max_constant: int = 8
    #: Insert a reachable ``bug = nondet(); assert(bug != K);`` and drop
    #: every assume — the program is then guaranteed UNSAFE.
    plant_bug: bool = False

    def __post_init__(self) -> None:
        if self.statements < 1:
            raise ValueError(f"statements must be >= 1, got {self.statements}")
        if self.scalars < 1:
            raise ValueError(f"scalars must be >= 1, got {self.scalars}")
        if self.arrays < 0:
            raise ValueError(f"arrays must be >= 0, got {self.arrays}")
        if self.loop_bound < 1:
            raise ValueError(f"loop_bound must be >= 1, got {self.loop_bound}")
        if self.max_constant < 1:
            raise ValueError(f"max_constant must be >= 1, got {self.max_constant}")


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated program plus the recipe that reproduces it."""

    seed: int
    config: GenConfig
    function: FunctionDef
    source: str = field(repr=False)
    #: True when a bug was planted: the program is UNSAFE by construction.
    expect_unsafe: bool = False

    @property
    def name(self) -> str:
        return self.function.name


class _Generator:
    def __init__(self, seed: int, config: GenConfig) -> None:
        self.rng = random.Random(seed)
        self.config = config
        self.scalars = [f"x{i}" for i in range(config.scalars)]
        self.arrays = [f"a{i}" for i in range(config.arrays)]
        #: Scalars currently readable (loop counters join while in scope).
        self.readable = list(self.scalars)
        #: Scalars currently writable (loop counters are never writable).
        self.writable = list(self.scalars)
        self.counters = 0

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def constant(self, lo: int = 0) -> IntLiteral:
        return IntLiteral(self.rng.randint(lo, self.config.max_constant))

    def atom(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.45 and self.readable:
            return VarRef(self.rng.choice(self.readable))
        if roll < 0.55 and self.arrays and self.rng.random() < self.config.array_density:
            return ArrayRef(self.rng.choice(self.arrays), self.index_expr())
        return self.constant()

    def index_expr(self) -> Expr:
        """A shallow index expression (variable, constant, or var +/- const)."""
        roll = self.rng.random()
        if roll < 0.4 and self.readable:
            return VarRef(self.rng.choice(self.readable))
        if roll < 0.6 and self.readable:
            return BinaryOp(
                self.rng.choice(("+", "-")),
                VarRef(self.rng.choice(self.readable)),
                self.constant(),
            )
        return self.constant()

    def expr(self, depth: int = 0) -> Expr:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.35:
            return self.atom()
        if roll < 0.6:
            return BinaryOp(
                self.rng.choice(("+", "+", "-")),
                self.expr(depth + 1),
                self.expr(depth + 1),
            )
        if roll < 0.75:
            # Linear multiplication only: one factor must be constant.
            return BinaryOp("*", self.constant(lo=1), self.atom())
        if roll < 0.85:
            return UnaryOp("-", self.atom())
        if roll < 0.92:
            # nondet() is only legal as a *sole* right-hand side (the CFG
            # builder lowers it to a havoc), so compound expressions mix a
            # constant offset instead.
            return BinaryOp(
                self.rng.choice(("+", "-")), self.constant(), self.atom()
            )
        return self.atom()

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def comparison(self) -> Comparison:
        return Comparison(
            self.rng.choice(_COMPARE_OPS), self.expr(1), self.expr(1)
        )

    def condition(self, depth: int = 0) -> BoolExpr:
        roll = self.rng.random()
        if depth >= 1 or roll < 0.6:
            return self.comparison()
        if roll < 0.75:
            return BoolBinary(
                self.rng.choice(("&&", "||")),
                self.condition(depth + 1),
                self.condition(depth + 1),
            )
        if roll < 0.85:
            return BoolNot(self.condition(depth + 1))
        return BoolNondet()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def statement(self, depth: int) -> list[Stmt]:
        """One statement slot; loops expand to (decl, while) pairs."""
        cfg = self.config
        roll = self.rng.random()
        if depth < cfg.max_depth and roll < cfg.loop_density:
            return self.loop(depth)
        roll = self.rng.random()
        if depth < cfg.max_depth and roll < cfg.branch_density:
            return [self.branch(depth)]
        roll = self.rng.random()
        if not cfg.plant_bug and roll < cfg.assume_density:
            return [AssumeStmt(self.condition())]
        roll = self.rng.random()
        if roll < cfg.assert_density:
            return [self.assertion()]
        if self.arrays and self.rng.random() < cfg.array_density:
            return [
                ArrayAssignStmt(
                    self.rng.choice(self.arrays), self.index_expr(), self.expr()
                )
            ]
        target = self.rng.choice(self.writable)
        if self.rng.random() < 0.2:
            return [HavocStmt(target)]
        value = self.expr()
        if isinstance(value, NondetExpr):
            # A bare-nondet assignment parses back as a havoc: emit the
            # havoc form directly so ASTs round-trip.
            return [HavocStmt(target)]
        return [AssignStmt(target, value)]

    def assertion(self) -> AssertStmt:
        roll = self.rng.random()
        if roll < 0.55:
            # A structural tautology: always provable, biases toward SAFE.
            expr = self.expr(1)
            op = self.rng.choice(("<=", ">=", "=="))
            return AssertStmt(Comparison(op, expr, expr))
        return AssertStmt(self.comparison())

    def branch(self, depth: int) -> IfStmt:
        condition = self.condition()
        then_branch = self.block(depth + 1, self.rng.randint(1, 2))
        else_branch = None
        if self.rng.random() < 0.5:
            else_branch = self.block(depth + 1, self.rng.randint(1, 2))
        return IfStmt(condition, then_branch, else_branch)

    def loop(self, depth: int) -> list[Stmt]:
        if self.rng.random() < 0.25:
            # ``while (*)``: the abstraction decides both branches, so the
            # loop always admits immediate exit — spine stays reachable.
            body = self.block(depth + 1, self.rng.randint(1, 2))
            if not body.statements:
                body = Block((SkipStmt(),))
            return [WhileStmt(BoolNondet(), body)]
        counter = f"c{self.counters}"
        self.counters += 1
        bound = self.rng.randint(1, self.config.loop_bound)
        self.readable.append(counter)
        body = self.block(depth + 1, self.rng.randint(1, 2))
        self.readable.pop()
        increment = AssignStmt(
            counter, BinaryOp("+", VarRef(counter), IntLiteral(1))
        )
        loop = WhileStmt(
            Comparison("<", VarRef(counter), IntLiteral(bound)),
            Block(body.statements + (increment,)),
        )
        return [DeclStmt(counter, initializer=IntLiteral(0)), loop]

    def block(self, depth: int, slots: int) -> Block:
        statements: list[Stmt] = []
        for _ in range(slots):
            statements.extend(self.statement(depth))
        return Block(tuple(statements))

    # ------------------------------------------------------------------
    def function(self, seed: int) -> tuple[FunctionDef, bool]:
        cfg = self.config
        decls: list[Stmt] = []
        for name in self.scalars:
            if self.rng.random() < 0.5:
                decls.append(DeclStmt(name, initializer=self.constant()))
            else:
                decls.append(DeclStmt(name))
                decls.append(HavocStmt(name))
        for name in self.arrays:
            decls.append(
                DeclStmt(
                    name,
                    is_array=True,
                    size=IntLiteral(self.rng.randint(2, cfg.max_constant)),
                )
            )
        body: list[Stmt] = []
        for _ in range(cfg.statements):
            body.extend(self.statement(0))
        planted = False
        if cfg.plant_bug:
            target = self.rng.randint(0, cfg.max_constant)
            trap = [
                DeclStmt("bug"),
                HavocStmt("bug"),
                AssertStmt(Comparison("!=", VarRef("bug"), IntLiteral(target))),
            ]
            at = self.rng.randint(0, len(body))
            body[at:at] = trap
            planted = True
        return (
            FunctionDef(f"gen{seed}", (), Block(tuple(decls) + tuple(body))),
            planted,
        )


def generate(seed: int, config: Optional[GenConfig] = None) -> GeneratedProgram:
    """Generate one well-typed program; deterministic in ``(seed, config)``."""
    config = config or GenConfig()
    function, planted = _Generator(seed, config).function(seed)
    return GeneratedProgram(
        seed=seed,
        config=config,
        function=function,
        source=format_function(function),
        expect_unsafe=planted,
    )


def generate_corpus(
    seed: int,
    count: int,
    config: Optional[GenConfig] = None,
    plant_every: int = 3,
) -> list[GeneratedProgram]:
    """``count`` programs with derived seeds; every ``plant_every``-th has a
    planted bug (``plant_every=0`` disables planting)."""
    config = config or GenConfig()
    programs = []
    for index in range(count):
        derived = seed * 1_000_003 + index
        plant = bool(plant_every) and index % plant_every == plant_every - 1
        programs.append(
            generate(derived, replace(config, plant_bug=plant or config.plant_bug))
        )
    return programs
