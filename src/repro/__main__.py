"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Three subcommands drive the verification engine:

``repro verify FILE|NAME``
    Verify one program — a mini-C source file or the name of a built-in
    benchmark — and print a human-readable summary (or ``--json``).
    Exit code: 0 safe, 1 unsafe, 2 unknown, 3 usage/input error.

``repro batch FILE|NAME ... [--suite]``
    Verify a corpus concurrently on a process pool with per-task budgets and
    print one machine-readable JSON document for the whole batch.
    Exit code: 0 when every task verified (safe or unsafe — a *verdict* is a
    success), 2 when any task came back unknown or errored.

``repro list``
    List the built-in benchmark programs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional

from .core.engine import (
    PORTFOLIO_MODES,
    Budget,
    PortfolioEngine,
    PortfolioResult,
    VerificationEngine,
    Verdict,
    result_to_dict,
    verify_many,
)
from .core.predabs import FRONTIER_NAMES
from .core.verifier import ENGINE_REFINER_NAMES, make_refiner
from .lang.programs import PROGRAMS

EXIT_SAFE = 0
EXIT_UNSAFE = 1
EXIT_UNKNOWN = 2
EXIT_ERROR = 3


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--refiner", choices=ENGINE_REFINER_NAMES, default="path-invariant",
        help="refinement strategy (default: the paper's path-invariant refiner; "
        "'portfolio' races all refiners with divergence detection)",
    )
    parser.add_argument(
        "--portfolio-mode", choices=PORTFOLIO_MODES, default="auto",
        help="with --refiner portfolio: race in worker processes, share budget "
        "slices in-process round-robin, or pick automatically (default: auto)",
    )
    parser.add_argument(
        "--strategy", choices=FRONTIER_NAMES, default="bfs",
        help="ART exploration order (default: bfs)",
    )
    parser.add_argument(
        "--max-refinements", type=int, default=25, metavar="N",
        help="CEGAR iteration budget (default: 25)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=4000, metavar="N",
        help="cumulative ART node budget (default: 4000)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget per task (default: none)",
    )
    parser.add_argument(
        "--restart", action="store_true",
        help="rebuild the ART from scratch after every refinement "
        "(the baseline the incremental engine is benchmarked against)",
    )


def _load_source(target: str) -> tuple[str, str]:
    """Resolve a CLI target to ``(name, source)``: builtin name or file path."""
    if target in PROGRAMS:
        return target, PROGRAMS[target].source
    path = Path(target)
    if path.exists():
        return path.stem, path.read_text()
    raise FileNotFoundError(
        f"{target!r} is neither a built-in program nor an existing file; "
        f"see 'repro list' for the built-ins"
    )


def _budget(args: argparse.Namespace) -> Budget:
    return Budget(
        max_refinements=args.max_refinements,
        max_nodes=args.max_nodes,
        max_seconds=args.max_seconds,
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    try:
        name, source = _load_source(args.target)
    except (FileNotFoundError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.refiner == "portfolio":
        engine: Any = PortfolioEngine(
            source,
            strategy=args.strategy,
            budget=_budget(args),
            incremental=not args.restart,
            mode=args.portfolio_mode,
        )
        result = engine.run()
    else:
        engine = VerificationEngine(
            source,
            strategy=args.strategy,
            budget=_budget(args),
            incremental=not args.restart,
        )
        engine.refiner = make_refiner(args.refiner, engine.checker)
        result = engine.run()
    if args.json:
        json.dump(result_to_dict(result, name=name), sys.stdout, indent=2)
        print()
    else:
        print(result.summary())
        if result.is_unsafe:
            if result.counterexample is not None:
                witness = result.counterexample.witness_inputs(engine.program.variables)
            elif isinstance(result, PortfolioResult):
                # Process mode: the witness crossed the pool as strings.
                witness = result.winner_witness_inputs()
            else:
                witness = {}
            if witness:
                rendered = ", ".join(f"{k} = {v}" for k, v in sorted(witness.items()))
                print(f"witness:      {rendered}")
        if result.precision is not None and args.show_precision:
            print("precision:")
            print(str(result.precision))
    return {
        Verdict.SAFE: EXIT_SAFE,
        Verdict.UNSAFE: EXIT_UNSAFE,
    }.get(result.verdict, EXIT_UNKNOWN)


def _cmd_batch(args: argparse.Namespace) -> int:
    targets = list(args.targets)
    if args.suite:
        targets.extend(sorted(PROGRAMS))
    if not targets:
        print("error: no targets (pass files/names or --suite)", file=sys.stderr)
        return EXIT_ERROR
    tasks = []
    for target in targets:
        try:
            name, source = _load_source(target)
        except (FileNotFoundError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_ERROR
        tasks.append({"name": name, "source": source})
    results = verify_many(
        tasks,
        refiner=args.refiner,
        strategy=args.strategy,
        budget=_budget(args),
        incremental=not args.restart,
        jobs=args.jobs,
    )
    payload = {
        "tasks": len(results),
        "verdicts": {
            verdict: sum(1 for r in results if r["verdict"] == verdict)
            for verdict in sorted({r["verdict"] for r in results})
        },
        "results": results,
    }
    output = json.dumps(payload, indent=2)
    if args.output:
        Path(args.output).write_text(output + "\n")
        print(f"wrote {args.output} ({len(results)} results)")
    else:
        print(output)
    decided = all(r["verdict"] in (Verdict.SAFE, Verdict.UNSAFE) for r in results)
    return EXIT_SAFE if decided else EXIT_UNKNOWN


def _cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(PROGRAMS):
        program = PROGRAMS[name]
        expected = "safe" if program.expected_safe else "unsafe"
        print(f"{name:20s} {expected:7s} {program.description}")
    return EXIT_SAFE


_EPILOG = """\
examples:
  repro verify forward                          the paper's FORWARD example
  repro verify forward --refiner portfolio      race path-invariant against
                                                path-formula; a diverging
                                                refiner is demoted and its
                                                budget handed to the others
  repro verify forward --refiner portfolio --portfolio-mode round-robin --json
                                                deterministic in-process
                                                portfolio with a per-refiner
                                                JSON breakdown
  repro batch --suite --jobs 4 -o results.json  the whole built-in corpus
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path-invariant CEGAR verifier (PLDI 2007 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify_parser = subparsers.add_parser(
        "verify", help="verify one mini-C file or built-in program",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    verify_parser.add_argument("target", help="source file path or built-in program name")
    _add_engine_options(verify_parser)
    verify_parser.add_argument("--json", action="store_true", help="machine-readable output")
    verify_parser.add_argument(
        "--show-precision", action="store_true",
        help="print the discovered predicates per location",
    )
    verify_parser.set_defaults(func=_cmd_verify)

    batch_parser = subparsers.add_parser(
        "batch", help="verify a corpus concurrently (JSON results)"
    )
    batch_parser.add_argument("targets", nargs="*", help="source files and/or built-in names")
    batch_parser.add_argument("--suite", action="store_true", help="include every built-in program")
    _add_engine_options(batch_parser)
    batch_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="process-pool width (default: min(tasks, cpus); 1 = sequential)",
    )
    batch_parser.add_argument(
        "--output", "-o", metavar="FILE", help="write the JSON document to FILE"
    )
    batch_parser.set_defaults(func=_cmd_batch)

    list_parser = subparsers.add_parser("list", help="list built-in benchmark programs")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
