"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Three subcommands drive the verification session API:

``repro verify FILE|NAME``
    Verify one program — a mini-C source file or the name of a built-in
    benchmark — and print a human-readable summary (or ``--json``, the
    versioned result schema).
    Exit code: 0 safe, 1 unsafe, 2 unknown, 3 usage/input error.

``repro batch FILE|NAME ... [--suite]``
    Verify a corpus through **one reusable session**.  With ``--jobs 1``
    tasks run sequentially and repeated programs warm-start from precisions
    discovered earlier in the batch; on a process pool, seeds are fixed at
    submission time (concurrent repeats run cold), but every worker still
    ships its discovered precision back into the session's store.  Prints
    one machine-readable JSON document for the whole batch.
    Exit code: 0 when every task verified (safe or unsafe — a *verdict* is a
    success), 2 when any task came back unknown or errored.

``repro fuzz``
    Differential fuzzing: generate a seeded corpus of well-typed programs
    and run each through paired engine configurations (batched vs scalar
    posts, incremental vs restart, parallel vs sequential, portfolio vs
    winning arm), asserting the equivalence contracts the engine
    guarantees.  Any violation is shrunk to a 1-minimal reproducer.
    Exit code: 0 clean, 1 mismatches found, 3 usage error.

``repro serve``
    Run the verification daemon (see :mod:`repro.serve`): an asyncio
    JSON-over-TCP front over a supervised worker pool with request
    coalescing, bounded admission, and cross-request warm-starting through
    a shared precision store.  Drains gracefully on SIGTERM/SIGINT.

``repro submit FILE|NAME ... [--suite]``
    Send a corpus to a running daemon and print the batch JSON document
    (same shape as ``repro batch``).  Transport failures come back as
    structured result docs, never tracebacks.
    Exit code: 0 when every task verified, 2 when any came back unknown or
    errored, 3 when the daemon is unreachable.

``repro list``
    List the built-in benchmark programs.

Every tuning knob can come from an options file (``--options opts.toml`` or
``.json``, the :meth:`~repro.core.api.VerifierOptions.to_dict` key set);
explicit command-line flags override file values.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Optional

from .core.api import Session, VerifierOptions
from .core.engine import (
    PORTFOLIO_MODES,
    RESULT_SCHEMA_VERSION,
    PortfolioResult,
    Verdict,
)
from .core.predabs import FRONTIER_NAMES
from .core.verifier import ENGINE_REFINER_NAMES
from .lang.programs import PROGRAMS
from .serve.client import DEFAULT_PORT as _DEFAULT_SERVE_PORT
from .testgen.differential import ORACLES as _ORACLE_NAMES

EXIT_SAFE = 0
EXIT_UNSAFE = 1
EXIT_UNKNOWN = 2
EXIT_ERROR = 3


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--options", metavar="FILE", default=None,
        help="load a VerifierOptions table from a .toml or .json file "
        "(explicit flags below override file values)",
    )
    parser.add_argument(
        "--refiner", choices=ENGINE_REFINER_NAMES, default=None,
        help="refinement strategy (default: the paper's path-invariant refiner; "
        "'portfolio' races all refiners with divergence detection)",
    )
    parser.add_argument(
        "--portfolio-mode", choices=PORTFOLIO_MODES, default=None,
        help="with --refiner portfolio: race in worker processes, share budget "
        "slices in-process round-robin, or pick automatically (default: auto)",
    )
    parser.add_argument(
        "--strategy", choices=FRONTIER_NAMES, default=None,
        help="ART exploration order (default: bfs)",
    )
    parser.add_argument(
        "--max-refinements", type=int, default=None, metavar="N",
        help="CEGAR iteration budget (default: 25)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="cumulative ART node budget (default: 4000)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget per task (default: none)",
    )
    parser.add_argument(
        "--max-predicates-per-location", type=int, default=None, metavar="N",
        help="cap the predicates tracked per location (bounds the "
        "path-formula refiner's array-predicate flood; default: unbounded)",
    )
    parser.add_argument(
        "--restart", action="store_true",
        help="rebuild the ART from scratch after every refinement "
        "(the baseline the incremental engine is benchmarked against)",
    )
    parser.add_argument(
        "--no-warm-start", action="store_true",
        help="do not seed repeated programs from previously discovered "
        "precisions (batch mode runs every task cold)",
    )
    parser.add_argument(
        "--precision-store", metavar="PATH", default=None,
        help="disk-backed precision bank: load discovered predicates from "
        "PATH at startup and save new ones back (locked, journalled, "
        "crash-safe), so warm starts survive across invocations — even "
        "concurrent ones",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="supervised batch pools: per-task wall-clock bound — a worker "
        "exceeding it is killed and the task retried (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="supervised batch pools: retries granted per task after a "
        "worker crash/hang/error before it settles as a structured "
        "failure record (default: 2)",
    )
    parser.add_argument(
        "--degrade-on-retry", action="store_true",
        help="supervised batch pools: halve a task's resource budgets on "
        "each retry (a degraded retry may return a weaker verdict)",
    )


#: CLI flag attribute -> VerifierOptions field, for value-bearing flags.
_FLAG_FIELDS = {
    "refiner": "refiner",
    "portfolio_mode": "portfolio_mode",
    "strategy": "strategy",
    "max_refinements": "max_refinements",
    "max_nodes": "max_nodes",
    "max_seconds": "max_seconds",
    "max_predicates_per_location": "max_predicates_per_location",
    "task_timeout": "task_timeout",
    "retries": "task_retries",
}


def _resolve_options(args: argparse.Namespace) -> VerifierOptions:
    """Options file (if any) -> defaults, then explicit flags override."""
    if args.options:
        options = VerifierOptions.from_file(args.options)
    else:
        options = VerifierOptions()
    overrides: dict[str, Any] = {
        field: getattr(args, flag)
        for flag, field in _FLAG_FIELDS.items()
        if getattr(args, flag) is not None
    }
    if args.restart:
        overrides["incremental"] = False
    if args.no_warm_start:
        overrides["warm_start"] = False
    if args.degrade_on_retry:
        overrides["degrade_on_retry"] = True
    # Verify-only: intra-run exploration workers.  (batch's --jobs is the
    # task-pool width, a different knob, so this is not in _FLAG_FIELDS.)
    if getattr(args, "engine_jobs", None) is not None:
        overrides["jobs"] = args.engine_jobs
    return options.replace(**overrides) if overrides else options


def _load_source(target: str) -> tuple[str, str]:
    """Resolve a CLI target to ``(name, source)``: builtin name or file path."""
    if target in PROGRAMS:
        return target, PROGRAMS[target].source
    path = Path(target)
    if path.exists():
        return path.stem, path.read_text()
    raise FileNotFoundError(
        f"{target!r} is neither a built-in program nor an existing file; "
        f"see 'repro list' for the built-ins"
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    try:
        name, source = _load_source(args.target)
        options = _resolve_options(args)
        session = Session(options, store_path=args.precision_store)
        task = session.task(source, name=name)
        # Parse eagerly inside the handler: a malformed file (ParseError is
        # a ValueError) and a wrong-typed --options value (TypeError) are
        # usage errors — exit 3, never code 1 ("verified unsafe").  The run
        # itself stays outside, so a genuine engine crash keeps its
        # traceback instead of masquerading as bad input.
        task.resolved()
    except (FileNotFoundError, OSError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    result = session.run(task)
    if args.json:
        json.dump(result.to_json(name=name), sys.stdout, indent=2)
        print()
    else:
        print(result.summary())
        if result.is_unsafe:
            if result.counterexample is not None:
                witness = result.counterexample.witness_inputs(result.program.variables)
            elif isinstance(result, PortfolioResult):
                # Process mode: the witness crossed the pool as strings.
                witness = result.winner_witness_inputs()
            else:
                witness = {}
            if witness:
                rendered = ", ".join(f"{k} = {v}" for k, v in sorted(witness.items()))
                print(f"witness:      {rendered}")
        if result.precision is not None and args.show_precision:
            print("precision:")
            print(str(result.precision))
    return {
        Verdict.SAFE: EXIT_SAFE,
        Verdict.UNSAFE: EXIT_UNSAFE,
    }.get(result.verdict, EXIT_UNKNOWN)


def _cmd_batch(args: argparse.Namespace) -> int:
    targets = list(args.targets)
    if args.suite:
        targets.extend(sorted(PROGRAMS))
    if not targets:
        print("error: no targets (pass files/names or --suite)", file=sys.stderr)
        return EXIT_ERROR
    tasks = []
    try:
        options = _resolve_options(args)
        for target in targets:
            name, source = _load_source(target)
            tasks.append({"name": name, "source": source})
    except (FileNotFoundError, OSError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    # One session for the whole batch: shared checker memo, and repeated
    # targets warm-start from the precisions earlier tasks discovered (and,
    # with --precision-store, from what previous invocations discovered).
    try:
        session = Session(options, store_path=args.precision_store)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    results = session.run_many(tasks, jobs=args.jobs)
    payload = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "tasks": len(results),
        "verdicts": {
            verdict: sum(1 for r in results if r["verdict"] == verdict)
            for verdict in sorted({r["verdict"] for r in results})
        },
        "session": {
            key: value
            for key, value in session.statistics().items()
            if key != "checker"
        },
        "results": results,
    }
    output = json.dumps(payload, indent=2)
    if args.output:
        Path(args.output).write_text(output + "\n")
        print(f"wrote {args.output} ({len(results)} results)")
    else:
        print(output)
    decided = all(r["verdict"] in (Verdict.SAFE, Verdict.UNSAFE) for r in results)
    return EXIT_SAFE if decided else EXIT_UNKNOWN


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .testgen import run_fuzz
    from .testgen.differential import fuzz_options
    from .testgen.generator import GenConfig

    oracles = _ORACLE_NAMES if args.oracle == "all" else (args.oracle,)
    try:
        options = fuzz_options(
            max_refinements=args.max_refinements,
            max_nodes=args.max_nodes,
            max_solver_calls=args.max_solver_calls,
        )
        config = GenConfig(statements=args.statements, max_depth=args.max_depth)
        report = run_fuzz(
            seed=args.seed,
            count=args.count,
            oracles=oracles,
            options=options,
            config=config,
            plant_every=args.plant_every,
            shrink=not args.no_shrink,
            corpus_dir=args.corpus_dir,
            log=None if args.json else lambda line: print(line, file=sys.stderr),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(report.summary())
        for mismatch in report.mismatches:
            print(
                f"  seed {mismatch.seed}: {mismatch.oracle}/{mismatch.kind} "
                f"- {mismatch.detail}"
                + (f" -> {mismatch.corpus_path}" if mismatch.corpus_path else "")
            )
    return EXIT_SAFE if report.clean else EXIT_UNSAFE


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServiceConfig, VerificationService

    try:
        options = _resolve_options(args)
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queue=args.max_queue,
            request_timeout=args.request_timeout,
            store_path=args.precision_store,
            options=options,
            worker_backend=args.worker_backend,
            journal_path=args.request_journal,
            recover=args.recover,
            quota_rate=args.quota_rate,
            quota_burst=args.quota_burst,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
        )
        service = VerificationService(config)
    except (OSError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    def _announce(ready: VerificationService) -> None:
        # The ready line stays first on stdout (scripts parse it for the
        # port); the journal recovery report follows it.
        print(
            f"repro-serve listening on {config.host}:{ready.port} "
            f"(pid {os.getpid()}, {config.workers} {config.worker_backend} "
            f"workers, queue {config.max_queue}); SIGTERM drains gracefully",
            flush=True,
        )
        journal = ready.journal
        if journal is not None and journal.recovered:
            names = ", ".join(
                str(record.get("name") or f"seq{record.get('seq')}")
                for record in journal.recovered[:8]
            )
            if len(journal.recovered) > 8:
                names += ", ..."
            action = "re-executing" if config.recover else "not re-executed (pass --recover)"
            print(
                f"repro-serve journal: {len(journal.recovered)} accepted-but-"
                f"unanswered request(s) recovered from {journal.path} "
                f"({names}); {action}",
                flush=True,
            )

    try:
        service.serve_forever(on_ready=_announce)
    except OSError as error:  # e.g. port already in use
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    print("repro-serve drained; store flushed", flush=True)
    return EXIT_SAFE


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServiceClient, ServiceError

    targets = list(args.targets)
    if args.suite:
        targets.extend(sorted(PROGRAMS))
    if not targets and not args.shutdown:
        print("error: no targets (pass files/names or --suite)", file=sys.stderr)
        return EXIT_ERROR
    tasks = []
    try:
        # Ship options only when the caller configured any: the daemon's own
        # defaults apply otherwise (and coalesce with other clients' work).
        options = _resolve_options(args)
        options_doc = options.to_dict() if options != VerifierOptions() else None
        for target in targets:
            name, source = _load_source(target)
            tasks.append({"name": name, "source": source})
    except (FileNotFoundError, OSError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    client = ServiceClient(
        args.host,
        args.port,
        timeout=args.timeout,
        retries=args.transport_retries,
        client_id=args.client_id,
    )
    try:
        try:
            client.connect()
        except (ConnectionError, OSError) as error:
            print(
                f"error: cannot reach daemon at {args.host}:{args.port}: {error}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        results = client.submit_many(
            tasks, options=options_doc, include_precision=args.include_precision
        )
        payload: dict[str, Any] = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "tasks": len(results),
            "verdicts": {
                verdict: sum(1 for r in results if r["verdict"] == verdict)
                for verdict in sorted({r["verdict"] for r in results})
            },
            "results": results,
        }
        if args.show_stats:
            try:
                payload["daemon"] = client.stats()
            except ServiceError as error:
                payload["daemon"] = {"error": str(error)}
        if args.shutdown:
            try:
                client.shutdown()
                payload["shutdown"] = "draining"
            except ServiceError as error:
                payload["shutdown"] = f"failed: {error}"
        output = json.dumps(payload, indent=2)
        if args.output:
            Path(args.output).write_text(output + "\n")
            print(f"wrote {args.output} ({len(results)} results)")
        else:
            print(output)
    finally:
        client.close()
    if not results and args.shutdown:
        return EXIT_SAFE
    decided = all(r["verdict"] in (Verdict.SAFE, Verdict.UNSAFE) for r in results)
    return EXIT_SAFE if decided else EXIT_UNKNOWN


def _cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(PROGRAMS):
        program = PROGRAMS[name]
        expected = "safe" if program.expected_safe else "unsafe"
        print(f"{name:20s} {expected:7s} {program.description}")
    return EXIT_SAFE


_EPILOG = """\
examples:
  repro verify forward                          the paper's FORWARD example
  repro verify forward --refiner portfolio      race path-invariant against
                                                path-formula; a diverging
                                                refiner is demoted and its
                                                budget handed to the others
  repro verify forward --options opts.toml      load every knob from a TOML
                                                (or JSON) options file;
                                                explicit flags still win
  repro verify forward --refiner portfolio --portfolio-mode round-robin --json
                                                deterministic in-process
                                                portfolio with a per-refiner
                                                JSON breakdown
  repro batch --suite --jobs 4 -o results.json  the whole built-in corpus
                                                through one warm-starting
                                                session

options file (TOML):
  refiner = "portfolio"
  max_refinements = 12
  strategy = "bfs"
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path-invariant CEGAR verifier (PLDI 2007 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify_parser = subparsers.add_parser(
        "verify", help="verify one mini-C file or built-in program",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    verify_parser.add_argument("target", help="source file path or built-in program name")
    _add_engine_options(verify_parser)
    verify_parser.add_argument(
        "--jobs", dest="engine_jobs", type=int, default=None, metavar="N",
        help="worker threads for intra-run parallel ART exploration "
        "(default: 1 = sequential; results are bit-identical either way)",
    )
    verify_parser.add_argument("--json", action="store_true", help="machine-readable output")
    verify_parser.add_argument(
        "--show-precision", action="store_true",
        help="print the discovered predicates per location",
    )
    verify_parser.set_defaults(func=_cmd_verify)

    batch_parser = subparsers.add_parser(
        "batch", help="verify a corpus through one session (JSON results)"
    )
    batch_parser.add_argument("targets", nargs="*", help="source files and/or built-in names")
    batch_parser.add_argument("--suite", action="store_true", help="include every built-in program")
    _add_engine_options(batch_parser)
    batch_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="process-pool width (default: min(tasks, cpus); 1 = sequential)",
    )
    batch_parser.add_argument(
        "--output", "-o", metavar="FILE", help="write the JSON document to FILE"
    )
    batch_parser.set_defaults(func=_cmd_batch)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing of paired engine configurations",
        description="Generate a seeded corpus of well-typed programs and "
        "check engine equivalence contracts (batched vs scalar posts, "
        "incremental vs restart, parallel vs sequential, portfolio vs "
        "winning arm).  Mismatches are shrunk to 1-minimal reproducers.",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="corpus seed; the same seed reproduces the same programs "
        "bit-for-bit, across processes and hash seeds (default: 0)",
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=25, metavar="N",
        help="number of programs to generate (default: 25)",
    )
    fuzz_parser.add_argument(
        "--oracle", choices=("all",) + tuple(_ORACLE_NAMES), default="all",
        help="which paired-configuration oracle to run (default: all)",
    )
    fuzz_parser.add_argument(
        "--plant-every", type=int, default=3, metavar="K",
        help="plant a reachable bug in every K-th program so unsafe "
        "verdicts are exercised (default: 3)",
    )
    fuzz_parser.add_argument(
        "--statements", type=int, default=5, metavar="N",
        help="top-level statement slots per generated program (default: 5)",
    )
    fuzz_parser.add_argument(
        "--max-depth", type=int, default=2, metavar="D",
        help="maximum loop/branch nesting depth (default: 2)",
    )
    fuzz_parser.add_argument(
        "--max-refinements", type=int, default=6, metavar="N",
        help="per-configuration CEGAR budget; deterministic, so both sides "
        "of every comparison see the same cutoff (default: 6)",
    )
    fuzz_parser.add_argument(
        "--max-nodes", type=int, default=300, metavar="N",
        help="per-configuration ART node budget (default: 300)",
    )
    fuzz_parser.add_argument(
        "--max-solver-calls", type=int, default=3000, metavar="N",
        help="per-configuration Hoare-triple budget; charged identically on "
        "both sides of a strict oracle, so pathological programs stay "
        "comparable instead of running for minutes (default: 3000)",
    )
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true",
        help="report mismatches without minimising them (faster triage)",
    )
    fuzz_parser.add_argument(
        "--corpus-dir", metavar="DIR", default=None,
        help="write shrunk reproducers into DIR (the committed regression "
        "corpus lives in tests/corpus/)",
    )
    fuzz_parser.add_argument("--json", action="store_true", help="machine-readable output")
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the verification daemon (JSON over TCP)",
        description="A long-lived verification service: asyncio front, "
        "bounded request queue over a supervised worker pool, request "
        "coalescing by program fingerprint + options, and cross-request "
        "warm-starting through a shared precision store.  SIGTERM/SIGINT "
        "drain gracefully: stop accepting, finish in-flight work, flush "
        "the store.",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=_DEFAULT_SERVE_PORT, metavar="N",
        help=f"TCP port; 0 picks a free one (default: {_DEFAULT_SERVE_PORT})",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent engine runs (default: 2)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="admitted-but-waiting verify jobs beyond the workers; further "
        "new work is rejected with a 429-style 'overloaded' doc "
        "(default: 16)",
    )
    serve_parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="S",
        help="per-request isolation wall: clamps each request's max_seconds "
        "budget and arms the supervisor's task timeout (default: none)",
    )
    serve_parser.add_argument(
        "--worker-backend", choices=("thread", "process"), default="thread",
        help="where engine runs execute: 'thread' shares the daemon's "
        "address space; 'process' gives each request an isolated worker "
        "process, so a segfault/OOM/kill -9 of a worker becomes a "
        "structured failure doc instead of daemon death (default: thread)",
    )
    serve_parser.add_argument(
        "--request-journal", metavar="PATH", default=None,
        help="durable request journal (write-ahead log): accepted requests "
        "are fsync'd to PATH before execution and marked on response; on "
        "restart, accepted-but-unanswered work is reported (default: off)",
    )
    serve_parser.add_argument(
        "--recover", action="store_true",
        help="re-execute journal-recovered unanswered requests on startup "
        "(needs --request-journal); resubmitting clients coalesce onto the "
        "recovery runs",
    )
    serve_parser.add_argument(
        "--quota-rate", type=float, default=None, metavar="R",
        help="per-client token-bucket rate (verify requests/second, keyed "
        "by the request's client_id); over-rate requests get a 429 "
        "'quota-exceeded' doc with retry_after (default: no quotas)",
    )
    serve_parser.add_argument(
        "--quota-burst", type=int, default=20, metavar="N",
        help="per-client bucket capacity (default: 20; only with --quota-rate)",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive worker crashes on one (fingerprint, options) key "
        "before its circuit trips and submissions short-circuit with a "
        "503 'circuit-open' doc; 0 disables (default: 3)",
    )
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="S",
        help="seconds an open circuit rejects before allowing one "
        "half-open probe (default: 30)",
    )
    _add_engine_options(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit",
        help="send programs to a running daemon (JSON results)",
        description="Verify a corpus through a running `repro serve` daemon. "
        "Requests pipeline over one connection, so identical programs "
        "coalesce server-side; transport failures come back as structured "
        "result docs.",
    )
    submit_parser.add_argument(
        "targets", nargs="*", help="source files and/or built-in names"
    )
    submit_parser.add_argument(
        "--suite", action="store_true", help="include every built-in program"
    )
    submit_parser.add_argument(
        "--host", default="127.0.0.1", help="daemon address (default: 127.0.0.1)"
    )
    submit_parser.add_argument(
        "--port", type=int, default=_DEFAULT_SERVE_PORT, metavar="N",
        help=f"daemon port (default: {_DEFAULT_SERVE_PORT})",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="socket timeout per response (default: 600)",
    )
    submit_parser.add_argument(
        "--client-id", default=None, metavar="ID",
        help="identify this client for the daemon's per-client quotas",
    )
    submit_parser.add_argument(
        "--transport-retries", type=int, default=0, metavar="N",
        help="reconnect-and-resubmit a lost connection up to N times with "
        "capped exponential backoff (safe: identical resubmissions "
        "coalesce / warm-start server-side; default: 0)",
    )
    _add_engine_options(submit_parser)
    submit_parser.add_argument(
        "--include-precision", action="store_true",
        help="ship each task's final predicate bank back in the result doc",
    )
    submit_parser.add_argument(
        "--show-stats", action="store_true",
        help="append the daemon's stats document to the output",
    )
    submit_parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to drain gracefully after the batch",
    )
    submit_parser.add_argument(
        "--output", "-o", metavar="FILE", help="write the JSON document to FILE"
    )
    submit_parser.set_defaults(func=_cmd_submit)

    list_parser = subparsers.add_parser("list", help="list built-in benchmark programs")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
