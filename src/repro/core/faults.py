"""Deterministic, seedable fault injection for the supervised execution layer.

Every failure path the :class:`~repro.core.supervision.Supervisor` and the
crash-safe :class:`~repro.core.api.PrecisionStore` claim to survive is
exercised through this module rather than through ad-hoc monkeypatching:
a :class:`FaultPlan` names *exactly* which fault fires where (keyed by task
name / program fingerprint / store path **and attempt number**), so a test
can say "the worker running ``forward`` crashes on its first attempt and
only then" and get the same execution every time.

The harness is inert unless a plan is explicitly installed::

    from repro.core.faults import FaultPlan, FaultSpec, installed

    plan = FaultPlan([FaultSpec(kind="crash", key="forward", attempts=(0,))])
    with installed(plan):
        docs = session.run_many(["forward", "lock_step"], jobs=2)

Plans serialise to a JSON-safe payload (:meth:`FaultPlan.to_payload`) so the
supervisor can ship them into pool workers — the worker re-installs the plan
before running its task, which is how an injected ``crash`` actually kills a
*worker process* (``os._exit``) rather than raising a tidy exception in the
parent.

Fault kinds
-----------

==================  =====================  ==================================
kind                site                   effect when fired
==================  =====================  ==================================
``crash``           ``task``               worker: ``os._exit`` (hard death,
                                           no exception, no cleanup);
                                           in-process: raises
                                           :class:`InjectedCrash`
``hang``            ``task``               worker: sleeps ``seconds``
                                           (default far past any timeout);
                                           in-process: raises
                                           :class:`InjectedHang` (a real
                                           in-process sleep would block the
                                           caller forever)
``slow``            ``task``               sleeps ``seconds`` then proceeds
                                           normally (exercises near-timeout
                                           behaviour)
``error``           ``task``               raises :class:`InjectedError`
                                           (an infrastructure-level worker
                                           exception, retryable)
``corrupt-store``   ``store-load``         truncates the store snapshot on
                                           disk before it is read (a torn
                                           write; the load path must
                                           quarantine and start cold)
``flaky-pickle``    ``store-load``         the snapshot read raises a
                                           transient unpickling error (the
                                           load path retries, then
                                           quarantines)
``slow-post``       ``post``               sleeps ``seconds`` per undecided
                                           predicate of a batched
                                           abstract-post then proceeds
                                           normally (one straggling solver
                                           query each; under
                                           parallel exploration this models
                                           a slow worker that the merge
                                           barrier must wait out)
``drop-connection`` ``serve-response``     the daemon closes the client's
                                           TCP connection instead of writing
                                           the response (a network drop
                                           mid-response; the client must
                                           turn the EOF into a structured
                                           failure doc, and the server-side
                                           result must still be banked)
``slow-client``     ``client-send``        the client splits its request
                                           bytes and sleeps ``seconds``
                                           between the halves (a slow/
                                           trickling sender; the daemon's
                                           per-connection reader must not
                                           stall other connections)
``kill-worker``     ``task``               worker: ``SIGKILL`` of the worker
                                           process itself — a genuine
                                           ``kill -9`` mid-request, not a
                                           tidy exit (exercises the
                                           process-backend daemon's crash
                                           isolation); in-process: raises
                                           :class:`InjectedCrash`
``journal-torn-write``  ``journal-append``  the request journal writes only a
                                           partial record (a torn write from
                                           a crash mid-``write``); recovery
                                           must detect the framing violation
                                           and drop the tail
==================  =====================  ==================================

Determinism: a spec with ``probability < 1`` gates on a SHA-256 of
``(seed, site, key, attempt)`` — the same plan, seed and schedule always
fire the same faults, with no global random state involved.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "CRASH_EXIT_CODE",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
    "InjectedError",
    "install",
    "uninstall",
    "installed",
    "active_plan",
    "fire",
]

#: Every fault kind a spec may name.
FAULT_KINDS = (
    "crash", "hang", "slow", "error", "corrupt-store", "flaky-pickle", "slow-post",
    "drop-connection", "slow-client", "kill-worker", "journal-torn-write",
)

#: Instrumented sites and the kinds that fire there.
FAULT_SITES = {
    "task": ("crash", "hang", "slow", "error", "kill-worker"),
    "store-load": ("corrupt-store", "flaky-pickle"),
    "post": ("slow-post",),
    "serve-response": ("drop-connection",),
    "client-send": ("slow-client",),
    "journal-append": ("journal-torn-write",),
}

#: Exit status of an injected worker crash — distinctive enough that a test
#: reading a dead worker's status can tell an injected death from a real one.
CRASH_EXIT_CODE = 73


class InjectedFault(RuntimeError):
    """Base class of every exception the harness raises."""


class InjectedCrash(InjectedFault):
    """An injected worker death, surfaced as an exception when there is no
    worker process to kill (the supervisor's in-process sequential path)."""


class InjectedHang(InjectedFault):
    """An injected hang, surfaced as an exception in-process (actually
    sleeping would block the caller forever with nobody left to kill it)."""


class InjectedError(InjectedFault):
    """An injected infrastructure-level worker exception (retryable)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what fires, where, and on which attempts.

    ``key`` matches a task name, a program fingerprint or a store path
    (``"*"`` matches anything).  ``attempts`` is the set of attempt numbers
    (0-based) the fault fires on — the empty tuple means *every* attempt,
    which is how a test builds a task that never succeeds.  ``max_fires``
    bounds total firings of this spec within one installed plan (in-process
    only: a plan shipped to a pool worker is re-installed per task, so
    cross-process firing counts are deliberately not shared — key on
    ``attempts`` instead for cross-process determinism).
    """

    kind: str
    key: str = "*"
    attempts: tuple[int, ...] = (0,)
    seconds: float = 3600.0
    probability: float = 1.0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not isinstance(self.attempts, tuple):
            object.__setattr__(self, "attempts", tuple(self.attempts))
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1 or None, got {self.max_fires}")

    @property
    def site(self) -> str:
        """The instrumented site this fault kind belongs to."""
        for site, kinds in FAULT_SITES.items():
            if self.kind in kinds:
                return site
        raise AssertionError(f"kind {self.kind!r} has no site")  # pragma: no cover

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "attempts": list(self.attempts),
            "seconds": self.seconds,
            "probability": self.probability,
            "max_fires": self.max_fires,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            key=data.get("key", "*"),
            attempts=tuple(data.get("attempts", (0,))),
            seconds=data.get("seconds", 3600.0),
            probability=data.get("probability", 1.0),
            max_fires=data.get("max_fires"),
        )


@dataclass
class FaultPlan:
    """An ordered set of :class:`FaultSpec` plus the determinism seed.

    The first spec matching ``(site, key, attempt)`` wins.  ``fired`` records
    every firing (spec index, site, key, attempt) for test assertions.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0
    fired: list[tuple[int, str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.specs = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in self.specs
        )

    # ------------------------------------------------------------------
    def match(
        self, site: str, keys: Sequence[str], attempt: int
    ) -> Optional[FaultSpec]:
        """The first spec that fires at ``site`` for any of ``keys``."""
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.key != "*" and spec.key not in keys:
                continue
            if spec.attempts and attempt not in spec.attempts:
                continue
            if spec.max_fires is not None:
                fires = sum(1 for record in self.fired if record[0] == index)
                if fires >= spec.max_fires:
                    continue
            matched_key = spec.key if spec.key != "*" else (keys[0] if keys else "*")
            if spec.probability < 1.0 and not self._gate(
                site, matched_key, attempt, spec.probability
            ):
                continue
            self.fired.append((index, site, matched_key, attempt))
            return spec
        return None

    def _gate(self, site: str, key: str, attempt: int, probability: float) -> bool:
        """Deterministic pseudo-random gate keyed by the plan seed."""
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{key}|{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return fraction < probability

    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """A JSON-safe form that crosses process pools losslessly."""
        return {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec.from_dict(spec) for spec in payload.get("specs", ())
            ),
            seed=payload.get("seed", 0),
        )


# ----------------------------------------------------------------------
# The process-global installed plan (None = harness inert)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide; returns it for chaining."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection (the default state)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None`` when the harness is inert."""
    return _ACTIVE


@contextlib.contextmanager
def installed(plan: FaultPlan):
    """Install ``plan`` for the duration of the block (exception-safe)."""
    previous = active_plan()
    install(plan)
    try:
        yield plan
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)


# ----------------------------------------------------------------------
# Firing
# ----------------------------------------------------------------------
def fire(
    site: str,
    keys: Union[str, Sequence[str]],
    attempt: int = 0,
    in_worker: bool = False,
) -> Optional[FaultSpec]:
    """Fire the installed plan's matching fault at ``site``, if any.

    ``task``-site faults act here: ``crash`` kills the worker process
    outright (or raises :class:`InjectedCrash` in-process), ``hang`` sleeps
    past any reasonable timeout (or raises :class:`InjectedHang` in-process),
    ``slow`` sleeps and returns, ``error`` raises :class:`InjectedError`.

    ``post``-site ``slow-post`` sleeps once per undecided predicate of an
    abstract-post batch and returns — a straggling solver query (fires in
    whichever thread runs the decision, so a parallel worker shard can be
    made the straggler by key).

    ``store-load``-site faults are *returned* instead — the store owns the
    file being corrupted, so it applies the effect itself.  The server-path
    faults (``drop-connection``, ``slow-client``) are likewise returned: the
    daemon owns the transport it is about to drop, and the client owns the
    socket it is about to trickle bytes into.  So is the ``journal-append``
    site's ``journal-torn-write``: the request journal owns the file whose
    write it is about to tear.

    With no plan installed this is a no-op returning ``None`` (the production
    fast path: one global read).
    """
    plan = _ACTIVE
    if plan is None:
        return None
    if isinstance(keys, str):
        keys = (keys,)
    spec = plan.match(site, tuple(keys), attempt)
    if spec is None:
        return None
    if spec.kind == "crash":
        if in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected crash (key={spec.key!r}, attempt {attempt})"
        )
    if spec.kind == "kill-worker":
        if in_worker:
            # A genuine `kill -9` of the worker process: uncatchable, no
            # exit handlers, no status byte of our choosing — exactly what
            # an OOM killer or an operator's kill does to a pool worker.
            import signal as _signal

            os.kill(os.getpid(), _signal.SIGKILL)
        raise InjectedCrash(
            f"injected worker kill (key={spec.key!r}, attempt {attempt})"
        )
    if spec.kind == "hang":
        if in_worker:
            time.sleep(spec.seconds)
            os._exit(CRASH_EXIT_CODE)  # a "hang" never returns a result
        raise InjectedHang(f"injected hang (key={spec.key!r}, attempt {attempt})")
    if spec.kind in ("slow", "slow-post"):
        time.sleep(spec.seconds)
        return spec
    if spec.kind == "error":
        raise InjectedError(
            f"injected worker error (key={spec.key!r}, attempt {attempt})"
        )
    return spec  # corrupt-store / flaky-pickle: the caller applies the effect


def corrupt_file(path: Union[str, os.PathLike], keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to a fraction of its size (a simulated torn write).

    Returns the new size.  Used by the ``corrupt-store`` fault and directly
    by tests that build deliberately truncated pickles.
    """
    size = os.path.getsize(path)
    new_size = max(1, int(size * keep_fraction)) if size else 0
    with open(path, "rb+") as handle:
        handle.truncate(new_size)
    return new_size
