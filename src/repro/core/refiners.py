"""Abstraction refinement strategies.

Two refiners are provided:

* :class:`PathFormulaRefiner` — the baseline the paper argues against.  It
  derives new predicates from the infeasible path itself: atoms of the guards
  along the path plus the constant valuations obtained by propagating the
  assignments of the path ("a possible set of such predicates is
  ``{i=0, i=1, a=0, a=1, b=0, b=2}``", Section 2.1).  Each refinement
  eliminates the current counterexample, but loops are unrolled one
  counterexample at a time, so the loop diverges on FORWARD/INITCHECK.

* :class:`PathInvariantRefiner` — the paper's contribution.  The infeasible
  path is generalised to its path program, the path-invariant synthesizer
  computes an inductive safe invariant map for it, and the per-location
  assertions of the map become the new predicates.  One refinement removes
  every counterexample that stays within the path program (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..lang.cfg import Location, Program, Transition
from ..lang.commands import ArrayAssign, Assign, Assume, Command, Havoc, Skip
from ..logic.formulas import Atom, Formula, Relation, conjuncts, eq
from ..logic.terms import LinExpr, Var
from ..invgen.synthesize import PathInvariantSynthesizer, SynthesisOptions, SynthesisResult
from ..smt.vcgen import VcChecker
from .pathprogram import PathProgram, build_path_program
from .predabs import Precision

__all__ = [
    "RefinementOutcome",
    "Refiner",
    "PathFormulaRefiner",
    "PathInvariantRefiner",
    "DivergenceVerdict",
    "DivergenceMonitor",
]


@dataclass
class RefinementOutcome:
    """New predicates discovered by a refinement step."""

    progress: bool
    new_predicates: int = 0
    description: str = ""
    path_program: Optional[PathProgram] = None
    synthesis: Optional[SynthesisResult] = None
    #: Locations that actually gained a predicate (the pivots of the repair);
    #: the divergence monitor watches whether these keep repeating.
    pivot_locations: frozenset[Location] = frozenset()


class Refiner:
    """Interface of refinement strategies."""

    name = "abstract"

    def refine(
        self, program: Program, path: Sequence[Transition], precision: Precision
    ) -> RefinementOutcome:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Baseline: predicates from the finite path
# ----------------------------------------------------------------------
class PathFormulaRefiner(Refiner):
    """Classic CEGAR refinement from the path formula of the counterexample."""

    name = "path-formula"

    def refine(
        self, program: Program, path: Sequence[Transition], precision: Precision
    ) -> RefinementOutcome:
        # Collect predicates from the path formula: constant valuations
        # obtained by propagating the assignments of the path, guard atoms
        # with the known constants substituted in (the atoms of the
        # unsatisfiability proof of the path formula), and the assertion
        # atoms.  As in BLAST, the predicates are tracked at every location
        # touched by the path rather than point-wise.
        predicates: list[Formula] = []
        constants: dict[str, Fraction] = {}
        for transition in path:
            for command in transition.commands:
                if isinstance(command, Assume):
                    substitution = {
                        Var(name): LinExpr.constant(value)
                        for name, value in constants.items()
                    }
                    for atom in command.cond.atoms():
                        if atom.rel is Relation.NE:
                            atom = Atom(atom.expr, Relation.EQ)
                        specialised = atom.substitute(substitution)
                        if isinstance(specialised, Atom) and not specialised.is_trivially_true():
                            predicates.append(specialised)
                        predicates.append(atom)
                constants = _propagate_constants(constants, command)
            for name, value in constants.items():
                if not name.startswith("__"):
                    predicates.append(eq(LinExpr.variable(name), LinExpr.constant(value)))

        locations = {transition.source for transition in path} | {
            transition.target for transition in path
        }
        locations.discard(program.error)
        added = 0
        pivots: set[Location] = set()
        for location in locations:
            for predicate in predicates:
                if precision.add(location, predicate):
                    added += 1
                    pivots.add(location)
        return RefinementOutcome(
            progress=added > 0,
            new_predicates=added,
            description=f"{added} predicates from the path formula",
            pivot_locations=frozenset(pivots),
        )


def _propagate_constants(
    constants: dict[str, Fraction], command: Command
) -> dict[str, Fraction]:
    result = dict(constants)
    if isinstance(command, Assign):
        value = _evaluate_constant(command.expr, constants)
        if value is None:
            result.pop(command.var, None)
        else:
            result[command.var] = value
    elif isinstance(command, Havoc):
        for name in command.vars:
            result.pop(name, None)
    return result


def _evaluate_constant(expr: LinExpr, constants: dict[str, Fraction]) -> Optional[Fraction]:
    if expr.array_reads():
        return None
    total = expr.const
    for atom, coeff in expr.terms:
        assert isinstance(atom, Var)
        if atom.name not in constants:
            return None
        total += coeff * constants[atom.name]
    return total


# ----------------------------------------------------------------------
# The paper's refiner: path programs + path invariants
# ----------------------------------------------------------------------
class PathInvariantRefiner(Refiner):
    """Refinement through path programs and path-invariant synthesis."""

    name = "path-invariant"

    def __init__(
        self,
        checker: Optional[VcChecker] = None,
        options: Optional[SynthesisOptions] = None,
        fallback: bool = True,
    ) -> None:
        self.checker = checker or VcChecker()
        self.synthesizer = PathInvariantSynthesizer(self.checker, options)
        #: When synthesis fails, fall back to path-formula predicates so that
        #: the CEGAR loop still makes progress on the current counterexample.
        self.fallback = PathFormulaRefiner() if fallback else None
        self.synthesis_results: list[SynthesisResult] = []

    def refine(
        self, program: Program, path: Sequence[Transition], precision: Precision
    ) -> RefinementOutcome:
        path_program = build_path_program(program, path)
        synthesis = self.synthesizer.synthesize(path_program.program)
        self.synthesis_results.append(synthesis)

        if not synthesis.success or synthesis.invariant_map is None:
            if self.fallback is not None:
                outcome = self.fallback.refine(program, path, precision)
                outcome.description = (
                    "path-invariant synthesis failed "
                    f"({synthesis.reason}); fell back to path-formula predicates"
                )
                outcome.path_program = path_program
                outcome.synthesis = synthesis
                return outcome
            return RefinementOutcome(
                False,
                description=f"path-invariant synthesis failed: {synthesis.reason}",
                path_program=path_program,
                synthesis=synthesis,
            )

        added = 0
        pivots: set[Location] = set()
        invariant_map = synthesis.invariant_map
        for pp_location, original in path_program.origin.items():
            if original in (program.error,):
                continue
            formula = invariant_map.get(pp_location)
            for predicate in conjuncts(formula):
                if precision.add(original, predicate):
                    added += 1
                    pivots.add(original)
        return RefinementOutcome(
            progress=added > 0,
            new_predicates=added,
            description=f"{added} predicates from the path invariant",
            path_program=path_program,
            synthesis=synthesis,
            pivot_locations=frozenset(pivots),
        )


# ----------------------------------------------------------------------
# Divergence detection
# ----------------------------------------------------------------------
@dataclass
class DivergenceVerdict:
    """The monitor's classification of a refinement loop's trajectory."""

    diverging: bool
    reason: str = ""
    #: The raw signals behind the verdict (``stale_pivots``, ``unrolling``,
    #: ``frontier_growth``, ``refinements_observed``, ...), for reporting.
    signals: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "diverging": self.diverging,
            "reason": self.reason,
            "signals": dict(self.signals),
        }


class DivergenceMonitor:
    """Per-refiner progress monitor for the portfolio engine.

    The classic path-formula refiner *diverges* on programs whose proofs need
    genuine loop invariants: every refinement refutes only the current loop
    unrolling, so counterexamples keep getting longer, the same pivot
    locations gain ever more constant predicates, and the abstract frontier
    never shrinks.  The monitor watches exactly those three signatures over a
    sliding window of ``window`` refinements:

    * **stale pivots** — no refinement in the window added a predicate at a
      location that had not been refined before (new pivots mean the refiner
      is still opening new proof territory, e.g. a second loop);
    * **unrolling** — the counterexample length reached a new record inside
      the window and grew within it (the one-more-iteration signature);
    * **no frontier shrinkage** — predicates grew every round while the
      tree's pending-obligation frontier did not shrink across the window.

    Divergence is reported only when all three hold, so a refiner that proves
    its program within ``window`` refinements can never be demoted, and one
    that keeps discovering new pivot locations (multi-loop proofs) is left
    alone.  Demotion is a *scheduling* decision, never a soundness one: a
    demoted refiner's remaining budget is handed to the other portfolio arms.

    ``observe`` digests the engine's per-iteration records (duck-typed:
    ``refinement`` with ``progress``/``pivot_locations``,
    ``counterexample_length``, ``predicates_total``, ``frontier_size``);
    ``verdict`` classifies the trajectory so far, and
    :meth:`classify_budget_trip` labels an exhausted budget as ``diverging``
    versus ``under-resourced``.
    """

    def __init__(self, window: int = 3) -> None:
        if window < 2:
            raise ValueError(f"divergence window must be at least 2, got {window}")
        self.window = window
        self.cex_lengths: list[int] = []
        self.predicate_totals: list[int] = []
        self.frontier_sizes: list[int] = []
        self.new_pivot_flags: list[bool] = []
        self._seen_pivots: set = set()

    # ------------------------------------------------------------------
    @property
    def refinements_observed(self) -> int:
        return len(self.cex_lengths)

    def observe(self, record) -> None:
        """Digest one engine iteration record that ended in a refinement."""
        refinement = getattr(record, "refinement", None)
        if refinement is None or not refinement.progress:
            return
        self.cex_lengths.append(record.counterexample_length)
        self.predicate_totals.append(record.predicates_total)
        self.frontier_sizes.append(record.frontier_size)
        pivots = set(getattr(refinement, "pivot_locations", ()) or ())
        self.new_pivot_flags.append(bool(pivots - self._seen_pivots))
        self._seen_pivots |= pivots

    def verdict(self) -> DivergenceVerdict:
        """Classify the trajectory observed so far."""
        observed = self.refinements_observed
        window = self.window
        if observed < window:
            return DivergenceVerdict(
                False,
                f"only {observed} refinements observed (window is {window})",
                signals={"refinements_observed": observed},
            )
        stale_pivots = not any(self.new_pivot_flags[-window:])
        recent = self.cex_lengths[-window:]
        unrolling = (
            max(recent) > max(self.cex_lengths[:-window], default=0)
            and max(recent) > min(recent)
        )
        # Predicate totals need no signal of their own: every observed
        # refinement made progress, so they grow strictly by construction.
        frontier_growth = self.frontier_sizes[-1] >= self.frontier_sizes[-window]
        signals = {
            "refinements_observed": observed,
            "stale_pivots": stale_pivots,
            "unrolling": unrolling,
            "frontier_growth": frontier_growth,
            "recent_counterexample_lengths": list(recent),
            "predicates_total": self.predicate_totals[-1],
        }
        diverging = stale_pivots and unrolling and frontier_growth
        if diverging:
            reason = (
                f"no new pivot location in {window} refinements while "
                f"counterexamples grew to length {max(recent)} and the frontier "
                "did not shrink (loop-unrolling signature)"
            )
        else:
            holding = [name for name in ("stale_pivots", "unrolling", "frontier_growth")
                       if not signals[name]]
            reason = f"progressing ({', '.join(holding) or 'window'} signal absent)"
        return DivergenceVerdict(diverging, reason, signals)

    def classify_budget_trip(self) -> str:
        """Label an exhausted budget: was the refiner stalling or starved?"""
        return "diverging" if self.verdict().diverging else "under-resourced"

    @classmethod
    def analyze(cls, iterations, window: int = 3) -> DivergenceVerdict:
        """One-shot classification of a finished run's iteration records."""
        monitor = cls(window)
        for record in iterations:
            monitor.observe(record)
        return monitor.verdict()
