"""Abstraction refinement strategies.

Two refiners are provided:

* :class:`PathFormulaRefiner` — the baseline the paper argues against.  It
  derives new predicates from the infeasible path itself: atoms of the guards
  along the path plus the constant valuations obtained by propagating the
  assignments of the path ("a possible set of such predicates is
  ``{i=0, i=1, a=0, a=1, b=0, b=2}``", Section 2.1).  Each refinement
  eliminates the current counterexample, but loops are unrolled one
  counterexample at a time, so the loop diverges on FORWARD/INITCHECK.

* :class:`PathInvariantRefiner` — the paper's contribution.  The infeasible
  path is generalised to its path program, the path-invariant synthesizer
  computes an inductive safe invariant map for it, and the per-location
  assertions of the map become the new predicates.  One refinement removes
  every counterexample that stays within the path program (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..lang.cfg import Location, Program, Transition
from ..lang.commands import ArrayAssign, Assign, Assume, Command, Havoc, Skip
from ..logic.formulas import Atom, Formula, Relation, conjuncts, eq
from ..logic.terms import LinExpr, Var
from ..invgen.synthesize import PathInvariantSynthesizer, SynthesisOptions, SynthesisResult
from ..smt.vcgen import VcChecker
from .pathprogram import PathProgram, build_path_program
from .predabs import Precision

__all__ = [
    "RefinementOutcome",
    "Refiner",
    "PathFormulaRefiner",
    "PathInvariantRefiner",
]


@dataclass
class RefinementOutcome:
    """New predicates discovered by a refinement step."""

    progress: bool
    new_predicates: int = 0
    description: str = ""
    path_program: Optional[PathProgram] = None
    synthesis: Optional[SynthesisResult] = None


class Refiner:
    """Interface of refinement strategies."""

    name = "abstract"

    def refine(
        self, program: Program, path: Sequence[Transition], precision: Precision
    ) -> RefinementOutcome:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Baseline: predicates from the finite path
# ----------------------------------------------------------------------
class PathFormulaRefiner(Refiner):
    """Classic CEGAR refinement from the path formula of the counterexample."""

    name = "path-formula"

    def refine(
        self, program: Program, path: Sequence[Transition], precision: Precision
    ) -> RefinementOutcome:
        # Collect predicates from the path formula: constant valuations
        # obtained by propagating the assignments of the path, guard atoms
        # with the known constants substituted in (the atoms of the
        # unsatisfiability proof of the path formula), and the assertion
        # atoms.  As in BLAST, the predicates are tracked at every location
        # touched by the path rather than point-wise.
        predicates: list[Formula] = []
        constants: dict[str, Fraction] = {}
        for transition in path:
            for command in transition.commands:
                if isinstance(command, Assume):
                    substitution = {
                        Var(name): LinExpr.constant(value)
                        for name, value in constants.items()
                    }
                    for atom in command.cond.atoms():
                        if atom.rel is Relation.NE:
                            atom = Atom(atom.expr, Relation.EQ)
                        specialised = atom.substitute(substitution)
                        if isinstance(specialised, Atom) and not specialised.is_trivially_true():
                            predicates.append(specialised)
                        predicates.append(atom)
                constants = _propagate_constants(constants, command)
            for name, value in constants.items():
                if not name.startswith("__"):
                    predicates.append(eq(LinExpr.variable(name), LinExpr.constant(value)))

        locations = {transition.source for transition in path} | {
            transition.target for transition in path
        }
        locations.discard(program.error)
        added = 0
        for location in locations:
            for predicate in predicates:
                added += precision.add(location, predicate)
        return RefinementOutcome(
            progress=added > 0,
            new_predicates=added,
            description=f"{added} predicates from the path formula",
        )


def _propagate_constants(
    constants: dict[str, Fraction], command: Command
) -> dict[str, Fraction]:
    result = dict(constants)
    if isinstance(command, Assign):
        value = _evaluate_constant(command.expr, constants)
        if value is None:
            result.pop(command.var, None)
        else:
            result[command.var] = value
    elif isinstance(command, Havoc):
        for name in command.vars:
            result.pop(name, None)
    return result


def _evaluate_constant(expr: LinExpr, constants: dict[str, Fraction]) -> Optional[Fraction]:
    if expr.array_reads():
        return None
    total = expr.const
    for atom, coeff in expr.terms:
        assert isinstance(atom, Var)
        if atom.name not in constants:
            return None
        total += coeff * constants[atom.name]
    return total


# ----------------------------------------------------------------------
# The paper's refiner: path programs + path invariants
# ----------------------------------------------------------------------
class PathInvariantRefiner(Refiner):
    """Refinement through path programs and path-invariant synthesis."""

    name = "path-invariant"

    def __init__(
        self,
        checker: Optional[VcChecker] = None,
        options: Optional[SynthesisOptions] = None,
        fallback: bool = True,
    ) -> None:
        self.checker = checker or VcChecker()
        self.synthesizer = PathInvariantSynthesizer(self.checker, options)
        #: When synthesis fails, fall back to path-formula predicates so that
        #: the CEGAR loop still makes progress on the current counterexample.
        self.fallback = PathFormulaRefiner() if fallback else None
        self.synthesis_results: list[SynthesisResult] = []

    def refine(
        self, program: Program, path: Sequence[Transition], precision: Precision
    ) -> RefinementOutcome:
        path_program = build_path_program(program, path)
        synthesis = self.synthesizer.synthesize(path_program.program)
        self.synthesis_results.append(synthesis)

        if not synthesis.success or synthesis.invariant_map is None:
            if self.fallback is not None:
                outcome = self.fallback.refine(program, path, precision)
                outcome.description = (
                    "path-invariant synthesis failed "
                    f"({synthesis.reason}); fell back to path-formula predicates"
                )
                outcome.path_program = path_program
                outcome.synthesis = synthesis
                return outcome
            return RefinementOutcome(
                False,
                description=f"path-invariant synthesis failed: {synthesis.reason}",
                path_program=path_program,
                synthesis=synthesis,
            )

        added = 0
        invariant_map = synthesis.invariant_map
        for pp_location, original in path_program.origin.items():
            if original in (program.error,):
                continue
            formula = invariant_map.get(pp_location)
            for predicate in conjuncts(formula):
                added += precision.add(original, predicate)
        return RefinementOutcome(
            progress=added > 0,
            new_predicates=added,
            description=f"{added} predicates from the path invariant",
            path_program=path_program,
            synthesis=synthesis,
        )
