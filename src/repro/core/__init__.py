"""The paper's contribution: path programs, path invariants, CEGAR."""

from .pathprogram import Block, PathProgram, build_path_program, nested_blocks
from .predabs import (
    FRONTIER_NAMES,
    AbstractReachability,
    Art,
    ArtNode,
    BfsFrontier,
    DfsFrontier,
    ErrorDistanceFrontier,
    ExploreLimits,
    Frontier,
    Precision,
    ReachabilityOutcome,
    make_frontier,
)
from .cex import CounterexampleAnalysis, analyze_counterexample, path_commands
from .refiners import (
    PathFormulaRefiner,
    PathInvariantRefiner,
    RefinementOutcome,
    Refiner,
)
from .engine import (
    STRATEGY_NAMES,
    Budget,
    CegarResult,
    IterationRecord,
    Verdict,
    VerificationEngine,
    result_to_dict,
    verify_many,
)
from .cegar import CegarLoop
from .verifier import REFINER_NAMES, make_refiner, verify

__all__ = [
    "Block",
    "PathProgram",
    "build_path_program",
    "nested_blocks",
    "AbstractReachability",
    "Art",
    "ArtNode",
    "BfsFrontier",
    "DfsFrontier",
    "ErrorDistanceFrontier",
    "ExploreLimits",
    "Frontier",
    "FRONTIER_NAMES",
    "make_frontier",
    "Precision",
    "ReachabilityOutcome",
    "STRATEGY_NAMES",
    "Budget",
    "VerificationEngine",
    "result_to_dict",
    "verify_many",
    "CounterexampleAnalysis",
    "analyze_counterexample",
    "path_commands",
    "PathFormulaRefiner",
    "PathInvariantRefiner",
    "RefinementOutcome",
    "Refiner",
    "CegarLoop",
    "CegarResult",
    "IterationRecord",
    "Verdict",
    "REFINER_NAMES",
    "make_refiner",
    "verify",
]
