"""The paper's contribution: path programs, path invariants, CEGAR."""

from .pathprogram import Block, PathProgram, build_path_program, nested_blocks
from .predabs import AbstractReachability, ArtNode, Precision, ReachabilityOutcome
from .cex import CounterexampleAnalysis, analyze_counterexample, path_commands
from .refiners import (
    PathFormulaRefiner,
    PathInvariantRefiner,
    RefinementOutcome,
    Refiner,
)
from .cegar import CegarLoop, CegarResult, IterationRecord, Verdict
from .verifier import REFINER_NAMES, make_refiner, verify

__all__ = [
    "Block",
    "PathProgram",
    "build_path_program",
    "nested_blocks",
    "AbstractReachability",
    "ArtNode",
    "Precision",
    "ReachabilityOutcome",
    "CounterexampleAnalysis",
    "analyze_counterexample",
    "path_commands",
    "PathFormulaRefiner",
    "PathInvariantRefiner",
    "RefinementOutcome",
    "Refiner",
    "CegarLoop",
    "CegarResult",
    "IterationRecord",
    "Verdict",
    "REFINER_NAMES",
    "make_refiner",
    "verify",
]
