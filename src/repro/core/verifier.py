"""The public verification API.

``verify()`` is the one-call entry point a downstream user needs: it accepts
mini-C source text, a parsed function, or an already-built transition system,
runs CEGAR with the requested refinement strategy, and returns the
:class:`~repro.core.engine.Result`.

It is a thin compatibility wrapper over the typed task/session API
(:mod:`repro.core.api`): the historical keyword knobs are translated into a
:class:`~repro.core.api.VerifierOptions` and executed through an ephemeral
:class:`~repro.core.api.Session`.  New code should construct the options (or
a session, to get cross-task memoisation and warm-starting) directly::

    from repro import Session, VerifierOptions

    options = VerifierOptions(refiner="portfolio", max_refinements=12)
    result = Session(options).run(source)

Passing the superseded tuning kwargs still works but emits a
``DeprecationWarning``.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..lang.ast import FunctionDef
from ..lang.cfg import Program
from ..smt.vcgen import VcChecker
from .engine import Result
from .predabs import Precision
from .refiners import PathFormulaRefiner, PathInvariantRefiner, Refiner

__all__ = ["verify", "make_refiner", "REFINER_NAMES", "ENGINE_REFINER_NAMES"]

REFINER_NAMES = ("path-invariant", "path-formula")

#: What ``verify()`` and the CLI accept: the concrete refiners plus the
#: portfolio meta-strategy (which is engine-level, not a :class:`Refiner`).
ENGINE_REFINER_NAMES = REFINER_NAMES + ("portfolio",)


def make_refiner(name: str, checker: Optional[VcChecker] = None) -> Refiner:
    """Construct a refiner by name (``path-invariant`` or ``path-formula``)."""
    if name == "path-invariant":
        return PathInvariantRefiner(checker)
    if name == "path-formula":
        return PathFormulaRefiner()
    if name == "portfolio":
        raise ValueError(
            "'portfolio' is an engine-level strategy, not a refiner; use "
            "verify(..., refiner='portfolio') or PortfolioEngine directly"
        )
    raise ValueError(f"unknown refiner {name!r}; expected one of {REFINER_NAMES}")


#: Sentinel distinguishing "kwarg not passed" from an explicit default value.
_UNSET: Any = object()

#: verify() kwarg -> VerifierOptions field for the superseded tuning knobs.
_LEGACY_FIELDS = {
    "max_refinements": "max_refinements",
    "max_art_nodes": "max_nodes",
    "strategy": "strategy",
    "max_seconds": "max_seconds",
    "incremental": "incremental",
    "portfolio_mode": "portfolio_mode",
    "max_predicates_per_location": "max_predicates_per_location",
}


def verify(
    program: Union[str, FunctionDef, Program],
    refiner: Union[str, Refiner] = _UNSET,
    max_refinements: int = _UNSET,
    max_art_nodes: int = _UNSET,
    checker: Optional[VcChecker] = None,
    strategy: str = _UNSET,
    max_seconds: Optional[float] = _UNSET,
    incremental: bool = _UNSET,
    portfolio_mode: str = _UNSET,
    max_predicates_per_location: Optional[int] = _UNSET,
    options: Optional["VerifierOptions"] = None,
    initial_precision: Optional[Precision] = None,
) -> Result:
    """Verify the assertions of a program.

    Parameters
    ----------
    program:
        Mini-C source text, a parsed :class:`FunctionDef`, or a
        :class:`Program` transition system.
    options:
        A :class:`~repro.core.api.VerifierOptions` carrying every tuning
        knob — the preferred interface.  Mutually exclusive with the
        deprecated individual kwargs below.
    refiner:
        ``"path-invariant"`` (the paper's refinement through path programs,
        the default), ``"path-formula"`` (the classic CEGAR baseline),
        ``"portfolio"`` (race both with divergence detection; returns a
        :class:`~repro.core.engine.PortfolioResult`), or a custom
        :class:`Refiner` instance.
    initial_precision:
        Optional seed precision (warm start); a seed never changes a
        decided verdict, it only removes refinement work.
    checker:
        A shared :class:`VcChecker` (its memo caches carry across calls).

    The remaining keyword arguments (``max_refinements``, ``max_art_nodes``,
    ``strategy``, ``max_seconds``, ``incremental``, ``portfolio_mode``,
    ``max_predicates_per_location``) mirror the corresponding
    ``VerifierOptions`` fields and are **deprecated** in favour of
    ``options=``; ``refiner`` itself remains supported (it is the documented
    second positional) but is mutually exclusive with ``options=``.
    """
    from .api import (
        Session,
        VerificationTask,
        VerifierOptions,
        resolve_legacy_options,
    )

    legacy = {
        name: value
        for name, value in (
            ("max_refinements", max_refinements),
            ("max_art_nodes", max_art_nodes),
            ("strategy", strategy),
            ("max_seconds", max_seconds),
            ("incremental", incremental),
            ("portfolio_mode", portfolio_mode),
            ("max_predicates_per_location", max_predicates_per_location),
        )
        if value is not _UNSET
    }
    refiner_instance: Optional[Refiner] = None
    refiner_name: Optional[str] = None
    if isinstance(refiner, Refiner):
        refiner_instance = refiner
    elif refiner is not _UNSET:
        refiner_name = refiner
    # ``refiner`` stays a first-class convenience (the documented second
    # positional), so it does not trigger the deprecation warning — but it
    # still conflicts with options=, which carries its own refiner field.
    if options is not None and refiner_name is not None:
        raise ValueError(
            "pass either options= (which has a refiner field) or refiner=, "
            "not both"
        )

    def build() -> VerifierOptions:
        translated = {
            _LEGACY_FIELDS.get(name, name): value for name, value in legacy.items()
        }
        if refiner_name is not None:
            translated["refiner"] = refiner_name
        return VerifierOptions(**translated)

    options = resolve_legacy_options("verify", options, legacy, build)
    session = Session(options, checker=checker)
    # A direct VerificationTask (not session.task): verify() historically
    # treats a string as source text, never as a built-in program name.
    return session.run(
        VerificationTask(
            program, refiner=refiner_instance, initial_precision=initial_precision
        )
    )
