"""The public verification API.

``verify()`` is the one-call entry point a downstream user needs: it accepts
mini-C source text, a parsed function, or an already-built transition system,
runs CEGAR with the requested refinement strategy, and returns the
:class:`~repro.core.cegar.CegarResult`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..lang.ast import FunctionDef
from ..lang.cfg import Program, build_program, program_from_source
from ..smt.vcgen import VcChecker
from .engine import Budget, CegarResult, PortfolioEngine, VerificationEngine
from .refiners import PathFormulaRefiner, PathInvariantRefiner, Refiner

__all__ = ["verify", "make_refiner", "REFINER_NAMES", "ENGINE_REFINER_NAMES"]

REFINER_NAMES = ("path-invariant", "path-formula")

#: What ``verify()`` and the CLI accept: the concrete refiners plus the
#: portfolio meta-strategy (which is engine-level, not a :class:`Refiner`).
ENGINE_REFINER_NAMES = REFINER_NAMES + ("portfolio",)


def make_refiner(name: str, checker: Optional[VcChecker] = None) -> Refiner:
    """Construct a refiner by name (``path-invariant`` or ``path-formula``)."""
    if name == "path-invariant":
        return PathInvariantRefiner(checker)
    if name == "path-formula":
        return PathFormulaRefiner()
    if name == "portfolio":
        raise ValueError(
            "'portfolio' is an engine-level strategy, not a refiner; use "
            "verify(..., refiner='portfolio') or PortfolioEngine directly"
        )
    raise ValueError(f"unknown refiner {name!r}; expected one of {REFINER_NAMES}")


def verify(
    program: Union[str, FunctionDef, Program],
    refiner: Union[str, Refiner] = "path-invariant",
    max_refinements: int = 25,
    max_art_nodes: int = 4000,
    checker: Optional[VcChecker] = None,
    strategy: str = "bfs",
    max_seconds: Optional[float] = None,
    incremental: bool = True,
    portfolio_mode: str = "auto",
) -> CegarResult:
    """Verify the assertions of a program.

    A compatibility wrapper around :class:`VerificationEngine` — the original
    signature is preserved; the engine's knobs are exposed as optional
    keyword arguments.

    Parameters
    ----------
    program:
        Mini-C source text, a parsed :class:`FunctionDef`, or a
        :class:`Program` transition system.
    refiner:
        ``"path-invariant"`` (the paper's refinement through path programs,
        the default), ``"path-formula"`` (the classic CEGAR baseline),
        ``"portfolio"`` (race both with divergence detection; returns a
        :class:`~repro.core.engine.PortfolioResult`), or a custom
        :class:`Refiner` instance.
    max_refinements:
        Budget on CEGAR iterations; the baseline refiner needs this on
        programs whose proofs require loop invariants.
    strategy:
        Exploration order of the abstract reachability tree: ``"bfs"`` (the
        default), ``"dfs"``, or ``"error-distance"``.
    max_seconds:
        Optional wall-clock budget for the whole run.
    incremental:
        Keep one persistent ART across refinements (default).  ``False``
        rebuilds the tree from scratch after every refinement — the
        restart-the-world baseline the benchmarks compare against.
    portfolio_mode:
        Only with ``refiner="portfolio"``: ``"auto"`` (race in worker
        processes when possible, else round-robin), ``"process"``, or
        ``"round-robin"``.
    """
    budget = Budget(
        max_refinements=max_refinements,
        max_nodes=max_art_nodes,
        max_seconds=max_seconds,
    )
    if refiner == "portfolio":
        portfolio = PortfolioEngine(
            program,
            strategy=strategy,
            budget=budget,
            incremental=incremental,
            checker=checker,
            mode=portfolio_mode,
        )
        return portfolio.run()
    if isinstance(program, str):
        program = program_from_source(program)
    elif isinstance(program, FunctionDef):
        program = build_program(program)

    checker = checker or VcChecker()
    refiner_obj = refiner if isinstance(refiner, Refiner) else make_refiner(refiner, checker)
    engine = VerificationEngine(
        program,
        refiner=refiner_obj,
        checker=checker,
        strategy=strategy,
        budget=budget,
        incremental=incremental,
    )
    return engine.run()
