"""The CEGAR driver (Section 4.1) — a thin client of the session API.

The loop itself (abstract reachability, counterexample analysis, abstraction
refinement, with budgets and incremental ART repair) lives in
:class:`~repro.core.engine.VerificationEngine`; option handling and engine
construction live in :mod:`repro.core.api`.  This module keeps the
historical :class:`CegarLoop` entry point and re-exports the result types so
existing imports keep working.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from ..lang.cfg import Program
from ..smt.vcgen import VcChecker
from .engine import (
    CegarResult,
    IterationRecord,
    PortfolioEngine,
    PortfolioResult,
    Result,
    Verdict,
    VerificationEngine,
)
from .predabs import Frontier, Precision
from .refiners import Refiner

__all__ = [
    "Verdict",
    "IterationRecord",
    "Result",
    "CegarResult",
    "PortfolioResult",
    "CegarLoop",
]


class CegarLoop:
    """Counterexample-guided abstraction refinement with pluggable refiners.

    A compatibility facade, now deprecated in favour of
    :class:`~repro.core.api.Session` (or :class:`VerificationEngine`
    directly); the keyword arguments mirror the pre-engine constructor, plus
    the engine's ``strategy`` and ``incremental`` knobs.  ``refiner`` also
    accepts a name (``"path-invariant"``, ``"path-formula"``, or
    ``"portfolio"`` — the latter delegating to :class:`PortfolioEngine`'s
    in-process round-robin).
    """

    def __init__(
        self,
        program: Program,
        refiner: Optional[Union[Refiner, str]] = None,
        checker: Optional[VcChecker] = None,
        max_refinements: int = 25,
        max_art_nodes: int = 4000,
        strategy: Union[str, Frontier] = "bfs",
        incremental: bool = True,
        max_seconds: Optional[float] = None,
        max_solver_calls: Optional[int] = None,
        max_predicates_per_location: Optional[int] = None,
    ) -> None:
        from .api import Session, VerifierOptions

        warnings.warn(
            "CegarLoop is deprecated; use repro.Session (or VerificationEngine "
            "directly) with VerifierOptions",
            DeprecationWarning,
            stacklevel=2,
        )
        options = VerifierOptions(
            refiner=refiner if isinstance(refiner, str) else "path-invariant",
            # A Frontier instance bypasses options validation; the engine
            # accepts it natively below.
            strategy=strategy if isinstance(strategy, str) else "bfs",
            max_refinements=max_refinements,
            max_nodes=max_art_nodes,
            max_seconds=max_seconds,
            max_solver_calls=max_solver_calls,
            incremental=incremental,
            portfolio_mode="round-robin",
            max_predicates_per_location=max_predicates_per_location,
        )
        self.session = Session(options, checker=checker)
        self.checker = self.session.checker
        if refiner == "portfolio":
            if isinstance(strategy, Frontier):
                raise ValueError(
                    "the portfolio runs several trees; pass the strategy by name"
                )
            self.engine: Union[VerificationEngine, PortfolioEngine] = PortfolioEngine(
                program,
                strategy=options.strategy,
                budget=options.budget(),
                incremental=incremental,
                checker=self.checker,
                mode="round-robin",
                max_predicates_per_location=max_predicates_per_location,
            )
            self.program = self.engine.program
            self.refiner = None
            return
        self.engine = self.session._make_engine(
            program,
            options,
            refiner=refiner if isinstance(refiner, Refiner) else None,
            strategy=strategy if isinstance(strategy, Frontier) else None,
        )
        self.program = self.engine.program
        self.refiner = self.engine.refiner

    def run(self, initial_precision: Optional[Precision] = None) -> Result:
        if isinstance(self.engine, PortfolioEngine):
            if initial_precision is not None:
                raise ValueError(
                    "the portfolio grows one precision per refiner; "
                    "an initial precision is not supported here — use "
                    "Session/PortfolioEngine(initial_precision=...) instead"
                )
            return self.engine.run()
        return self.engine.run(initial_precision)
