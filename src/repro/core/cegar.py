"""The CEGAR driver (Section 4.1).

The loop alternates the three classic phases — abstract reachability,
counterexample analysis, abstraction refinement — until a safety proof or a
feasible counterexample is found, a refinement step fails to make progress,
or the iteration budget is exhausted (the problem is undecidable, so a budget
is required; the baseline refiner in particular diverges by design on the
paper's examples).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..lang.cfg import Program, Transition
from ..smt.vcgen import VcChecker
from .cex import CounterexampleAnalysis, analyze_counterexample
from .predabs import AbstractReachability, Precision, ReachabilityOutcome
from .refiners import PathInvariantRefiner, Refiner, RefinementOutcome

__all__ = ["Verdict", "IterationRecord", "CegarResult", "CegarLoop"]


class Verdict:
    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"


@dataclass
class IterationRecord:
    """Statistics of one CEGAR iteration."""

    iteration: int
    reachability: ReachabilityOutcome
    counterexample_length: int = 0
    counterexample_feasible: Optional[bool] = None
    refinement: Optional[RefinementOutcome] = None
    seconds: float = 0.0
    #: Cumulative checker/solver counters at the end of the iteration (the
    #: shared VcChecker memoises queries across iterations, so deltas between
    #: consecutive records show what each round actually cost).
    solver_stats: Optional[dict[str, int]] = None


@dataclass
class CegarResult:
    """Final outcome of a CEGAR run."""

    verdict: str
    program: Program
    iterations: list[IterationRecord] = field(default_factory=list)
    precision: Optional[Precision] = None
    counterexample: Optional[CounterexampleAnalysis] = None
    reason: str = ""
    total_seconds: float = 0.0

    @property
    def is_safe(self) -> bool:
        return self.verdict == Verdict.SAFE

    @property
    def is_unsafe(self) -> bool:
        return self.verdict == Verdict.UNSAFE

    @property
    def num_refinements(self) -> int:
        return sum(1 for record in self.iterations if record.refinement is not None)

    def total_predicates(self) -> int:
        return self.precision.total_predicates() if self.precision else 0

    def summary(self) -> str:
        lines = [
            f"program:      {self.program.name}",
            f"verdict:      {self.verdict}",
            f"iterations:   {len(self.iterations)}",
            f"refinements:  {self.num_refinements}",
            f"predicates:   {self.total_predicates()}",
            f"time:         {self.total_seconds:.2f}s",
        ]
        if self.iterations and self.iterations[-1].solver_stats:
            stats = self.iterations[-1].solver_stats
            lines.append(
                "solver:       "
                f"{stats.get('sat_queries', 0)} sat queries, "
                f"{stats.get('cache_hits', 0)} cache hits, "
                f"{stats.get('splits', 0)} splits, "
                f"{stats.get('triple_cache_hits', 0)} triple cache hits"
            )
        if self.reason:
            lines.append(f"reason:       {self.reason}")
        return "\n".join(lines)


class CegarLoop:
    """Counterexample-guided abstraction refinement with pluggable refiners."""

    def __init__(
        self,
        program: Program,
        refiner: Optional[Refiner] = None,
        checker: Optional[VcChecker] = None,
        max_refinements: int = 25,
        max_art_nodes: int = 4000,
    ) -> None:
        self.program = program
        self.checker = checker or VcChecker()
        self.refiner = refiner if refiner is not None else PathInvariantRefiner(self.checker)
        self.max_refinements = max_refinements
        self.reachability = AbstractReachability(program, self.checker, max_art_nodes)

    # ------------------------------------------------------------------
    def run(self, initial_precision: Optional[Precision] = None) -> CegarResult:
        start = time.perf_counter()
        precision = initial_precision.copy() if initial_precision else Precision()
        iterations: list[IterationRecord] = []

        for iteration in range(self.max_refinements + 1):
            iteration_start = time.perf_counter()
            outcome = self.reachability.run(precision)
            record = IterationRecord(iteration, outcome)
            iterations.append(record)

            def seal(record: IterationRecord = record, started: float = iteration_start) -> None:
                record.seconds = time.perf_counter() - started
                record.solver_stats = self.checker.statistics()

            if outcome.exhausted:
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason="abstract reachability exceeded its node budget",
                )
            if outcome.counterexample is None:
                seal()
                return self._finish(Verdict.SAFE, precision, iterations, start)

            path = outcome.counterexample
            record.counterexample_length = len(path)
            analysis = analyze_counterexample(path, self.checker)
            record.counterexample_feasible = analysis.feasible
            if analysis.feasible:
                seal()
                result = self._finish(Verdict.UNSAFE, precision, iterations, start)
                result.counterexample = analysis
                if analysis.approximate:
                    result.reason = "feasibility decided with an approximate integer check"
                return result

            if iteration == self.max_refinements:
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"refinement budget of {self.max_refinements} exhausted",
                )

            refinement = self.refiner.refine(self.program, path, precision)
            record.refinement = refinement
            seal()
            if not refinement.progress:
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"refinement made no progress: {refinement.description}",
                )
        return self._finish(
            Verdict.UNKNOWN, precision, iterations, start, reason="iteration budget exhausted"
        )

    # ------------------------------------------------------------------
    def _finish(
        self,
        verdict: str,
        precision: Precision,
        iterations: list[IterationRecord],
        start: float,
        reason: str = "",
    ) -> CegarResult:
        return CegarResult(
            verdict=verdict,
            program=self.program,
            iterations=iterations,
            precision=precision,
            reason=reason,
            total_seconds=time.perf_counter() - start,
        )
