"""The CEGAR driver (Section 4.1) — a thin client of the engine.

The loop itself (abstract reachability, counterexample analysis, abstraction
refinement, with budgets and incremental ART repair) lives in
:class:`~repro.core.engine.VerificationEngine`.  This module keeps the
historical :class:`CegarLoop` entry point and re-exports the result types so
existing imports keep working.
"""

from __future__ import annotations

from typing import Optional, Union

from ..lang.cfg import Program
from ..smt.vcgen import VcChecker
from .engine import (
    Budget,
    CegarResult,
    IterationRecord,
    PortfolioEngine,
    PortfolioResult,
    Verdict,
    VerificationEngine,
)
from .predabs import Frontier, Precision
from .refiners import Refiner

__all__ = [
    "Verdict",
    "IterationRecord",
    "CegarResult",
    "PortfolioResult",
    "CegarLoop",
]


class CegarLoop:
    """Counterexample-guided abstraction refinement with pluggable refiners.

    A compatibility facade over :class:`VerificationEngine`; the keyword
    arguments mirror the pre-engine constructor, plus the engine's
    ``strategy`` and ``incremental`` knobs.  ``refiner`` also accepts a name
    (``"path-invariant"``, ``"path-formula"``, or ``"portfolio"`` — the
    latter delegating to :class:`PortfolioEngine`'s in-process round-robin).
    """

    def __init__(
        self,
        program: Program,
        refiner: Optional[Union[Refiner, str]] = None,
        checker: Optional[VcChecker] = None,
        max_refinements: int = 25,
        max_art_nodes: int = 4000,
        strategy: Union[str, Frontier] = "bfs",
        incremental: bool = True,
        max_seconds: Optional[float] = None,
        max_solver_calls: Optional[int] = None,
    ) -> None:
        budget = Budget(
            max_refinements=max_refinements,
            max_nodes=max_art_nodes,
            max_seconds=max_seconds,
            max_solver_calls=max_solver_calls,
        )
        if refiner == "portfolio":
            if isinstance(strategy, Frontier):
                raise ValueError(
                    "the portfolio runs several trees; pass the strategy by name"
                )
            self.engine: Union[VerificationEngine, PortfolioEngine] = PortfolioEngine(
                program,
                strategy=strategy,
                budget=budget,
                incremental=incremental,
                checker=checker,
                mode="round-robin",
            )
            self.program = self.engine.program
            self.checker = self.engine.checker
            self.refiner = None
            return
        if isinstance(refiner, str):
            from .verifier import make_refiner

            checker = checker or VcChecker()
            refiner = make_refiner(refiner, checker)
        self.engine = VerificationEngine(
            program,
            refiner=refiner,
            checker=checker,
            strategy=strategy,
            budget=budget,
            incremental=incremental,
        )
        self.program = self.engine.program
        self.checker = self.engine.checker
        self.refiner = self.engine.refiner

    def run(self, initial_precision: Optional[Precision] = None) -> CegarResult:
        if isinstance(self.engine, PortfolioEngine):
            if initial_precision is not None:
                raise ValueError(
                    "the portfolio grows one precision per refiner; "
                    "an initial precision is not supported"
                )
            return self.engine.run()
        return self.engine.run(initial_precision)
