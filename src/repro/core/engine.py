"""The incremental lazy-abstraction verification engine.

:class:`VerificationEngine` owns everything one verification task needs — the
program, the growing precision, the persistent abstract reachability tree,
the refiner, the exploration strategy and the budgets — and drives the CEGAR
loop through them:

1. *Explore*: advance the persistent ART's frontier under the current
   precision (:meth:`~repro.core.predabs.Art.explore`).
2. *Analyse*: decide feasibility of the abstract counterexample.
3. *Refine*: ask the refiner for new predicates, then *repair* the ART with
   :meth:`~repro.core.predabs.Art.apply_refinement` instead of discarding it
   (pass ``incremental=False`` for the restart-the-world baseline).

Per-iteration statistics record how much work was reused versus recomputed
(`nodes reused`, `post decisions`, repair counters), which is what the
``bench_e8`` benchmark tracks over time.

The module also hosts the batch layer: :func:`verify_many` runs a corpus of
programs concurrently on a process pool with per-task budgets and returns
machine-readable results (wired to the ``python -m repro`` CLI).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from ..lang.ast import FunctionDef
from ..lang.cfg import Program, build_program, program_from_source
from ..smt.vcgen import VcChecker
from .cex import CounterexampleAnalysis, analyze_counterexample
from .parallel import PARALLEL_BACKENDS, SpeculativePool
from .predabs import (
    FRONTIER_NAMES,
    Art,
    ExploreLimits,
    Frontier,
    Precision,
    ReachabilityOutcome,
    make_frontier,
)
from .refiners import PathInvariantRefiner, Refiner, RefinementOutcome

__all__ = [
    "Verdict",
    "Budget",
    "IterationRecord",
    "Result",
    "CegarResult",
    "RESULT_SCHEMA_VERSION",
    "VerificationEngine",
    "PortfolioEngine",
    "PortfolioResult",
    "PORTFOLIO_REFINERS",
    "PORTFOLIO_MODES",
    "STRATEGY_NAMES",
    "verify_many",
    "result_to_dict",
]

#: The exploration strategies the engine accepts by name.
STRATEGY_NAMES = FRONTIER_NAMES

#: Version of the JSON document produced by :meth:`Result.to_json`.  Bump on
#: any breaking change to the key set or value semantics; additive keys keep
#: the version.  The schema itself is documented on :meth:`Result.to_json`.
#: Version 2 adds the optional supervision keys: ``attempts`` (supervised
#: execution count when > 1), ``failure`` (terminal structured failure of a
#: task that exhausted its retries) and ``failures`` (per-attempt history).
RESULT_SCHEMA_VERSION = 2


class Verdict:
    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"


@dataclass
class Budget:
    """Resource limits of one verification task.

    ``max_refinements`` bounds CEGAR iterations (the problem is undecidable,
    so a bound is required; the baseline refiner in particular diverges by
    design on the paper's examples).  ``max_nodes`` bounds cumulative ART
    nodes, ``max_seconds`` the wall clock, and ``max_solver_calls`` the
    checker's Hoare-triple count.
    """

    max_refinements: int = 25
    max_nodes: Optional[int] = 4000
    max_seconds: Optional[float] = None
    max_solver_calls: Optional[int] = None


@dataclass
class IterationRecord:
    """Statistics of one CEGAR iteration."""

    iteration: int
    reachability: ReachabilityOutcome
    counterexample_length: int = 0
    counterexample_feasible: Optional[bool] = None
    refinement: Optional[RefinementOutcome] = None
    seconds: float = 0.0
    #: Cumulative checker/solver counters at the end of the iteration (the
    #: shared VcChecker memoises queries across iterations, so deltas between
    #: consecutive records show what each round actually cost).
    solver_stats: Optional[dict[str, int]] = None
    #: Abstract-post decisions requested by reachability this iteration.
    post_decisions: int = 0
    #: ART nodes created this iteration.
    nodes_created: int = 0
    #: Repair counters of the refinement closing this iteration
    #: (``rechecked`` / ``reused`` / ``strengthened`` / ``invalidated``);
    #: None on the restart baseline and on iterations without a refinement.
    repair: Optional[dict[str, int]] = None
    #: Pending frontier obligations when the iteration was sealed — the
    #: divergence monitor's "is the abstract frontier shrinking?" signal.
    frontier_size: int = 0
    #: Total predicates tracked across all locations at the end of the
    #: iteration (cumulative precision size).
    predicates_total: int = 0


@dataclass
class Result:
    """Final outcome of a verification run (the unified result type).

    Every entry point — :func:`repro.verify`, :class:`VerificationEngine`,
    :class:`PortfolioEngine`, :class:`repro.core.api.Session` — produces a
    ``Result`` (or its :class:`PortfolioResult` subclass); the historical
    name ``CegarResult`` is an alias.  :meth:`to_json` renders the versioned
    machine-readable document shared by the CLI, ``verify_many`` and the
    benchmark harness.
    """

    verdict: str
    program: Program
    iterations: list[IterationRecord] = field(default_factory=list)
    precision: Optional[Precision] = None
    counterexample: Optional[CounterexampleAnalysis] = None
    reason: str = ""
    total_seconds: float = 0.0
    #: Engine-level reuse counters (strategy, incremental flag, cumulative
    #: ART statistics); None for results not produced by the engine.
    engine_stats: Optional[dict[str, Any]] = None
    #: Supervised execution count (1 = first attempt succeeded; > 1 means
    #: the task was retried after worker crashes/hangs).
    attempts: int = 1
    #: Terminal structured failure record of a supervised task that
    #: exhausted its retries (see :func:`repro.core.supervision.failure_doc`).
    failure: Optional[dict[str, Any]] = None

    @property
    def is_safe(self) -> bool:
        return self.verdict == Verdict.SAFE

    @property
    def is_unsafe(self) -> bool:
        return self.verdict == Verdict.UNSAFE

    @property
    def num_refinements(self) -> int:
        return sum(1 for record in self.iterations if record.refinement is not None)

    def total_predicates(self) -> int:
        return self.precision.total_predicates() if self.precision else 0

    def post_decisions(self) -> int:
        """Abstract-post decisions requested across the whole run."""
        return sum(record.post_decisions for record in self.iterations)

    def nodes_reused(self) -> int:
        """ART nodes that survived a repair (work a restart would redo).

        Summed over all repairs: a node retained across ``k`` refinements
        counts ``k`` times, because a restart engine would re-derive it
        ``k`` times.
        """
        return sum(
            record.repair.get("retained", 0)
            for record in self.iterations
            if record.repair is not None
        )

    def summary(self) -> str:
        lines = [
            f"program:      {self.program.name}",
            f"verdict:      {self.verdict}",
            f"iterations:   {len(self.iterations)}",
            f"refinements:  {self.num_refinements}",
            f"predicates:   {self.total_predicates()}",
            f"time:         {self.total_seconds:.2f}s",
        ]
        if self.engine_stats:
            lines.append(
                "art:          "
                f"{self.engine_stats.get('nodes_created', 0)} nodes created, "
                f"{self.engine_stats.get('nodes_reused', 0)} reused, "
                f"{self.engine_stats.get('nodes_invalidated', 0)} invalidated, "
                f"{self.post_decisions()} post decisions "
                f"({self.engine_stats.get('strategy', '?')}, "
                f"{'incremental' if self.engine_stats.get('incremental') else 'restart'})"
            )
        if self.iterations and self.iterations[-1].solver_stats:
            stats = self.iterations[-1].solver_stats
            lines.append(
                "solver:       "
                f"{stats.get('sat_queries', 0)} sat queries, "
                f"{stats.get('cache_hits', 0)} cache hits, "
                f"{stats.get('splits', 0)} splits, "
                f"{stats.get('triple_cache_hits', 0)} triple cache hits"
            )
            if stats.get("prepare_calls") or stats.get("context_checks"):
                lines.append(
                    "post oracle:  "
                    f"{stats.get('prepare_calls', 0)} edges prepared, "
                    f"{stats.get('context_reuses', 0)} context reuses, "
                    f"{stats.get('batched_posts', 0)} batched checks, "
                    f"{stats.get('scalar_fallbacks', 0)} scalar fallbacks"
                )
        if self.reason:
            lines.append(f"reason:       {self.reason}")
        return "\n".join(lines)

    def to_json(self, name: Optional[str] = None) -> dict[str, Any]:
        """The versioned JSON-serialisable view of this result.

        Schema (version ``RESULT_SCHEMA_VERSION``):

        ======================  ================================================
        key                     value
        ======================  ================================================
        ``schema_version``      integer schema version (currently 2)
        ``name``                task name (defaults to the program name)
        ``verdict``             ``safe`` / ``unsafe`` / ``unknown`` / ``error``
        ``reason``              human-readable reason for non-decided verdicts
        ``iterations``          number of CEGAR iterations
        ``refinements``         iterations that ended in a refinement
        ``predicates``          total predicates in the final precision
        ``seconds``             wall-clock time of the run
        ``post_decisions``      abstract-post decisions requested
        ``nodes_reused``        ART nodes retained across refinement repairs
        ``engine``              engine counters (strategy, incremental, ART
                                statistics, warm-start provenance when run
                                through a :class:`~repro.core.api.Session`)
        ``per_iteration``       one record per iteration (nodes, posts,
                                counterexample length/feasibility, repair)
        ``witness``             (unsafe only) input valuation as strings
        ``solver``              final cumulative solver/checker counters
        ``portfolio``           (portfolio only) mode, winner, per-arm reports
        ``attempts``            (supervised, optional) execution count when
                                the task was retried (> 1)
        ``failure``             (supervised, optional) terminal structured
                                failure record of a task that exhausted its
                                retries: kind / message / attempt / elapsed
        ``failures``            (supervised, optional) per-attempt failure
                                history of a retried task
        ======================  ================================================
        """
        payload: dict[str, Any] = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "name": name or self.program.name,
            "verdict": self.verdict,
            "reason": self.reason,
            "iterations": len(self.iterations),
            "refinements": self.num_refinements,
            "predicates": self.total_predicates(),
            "seconds": round(self.total_seconds, 6),
            "post_decisions": self.post_decisions(),
            "nodes_reused": self.nodes_reused(),
            "engine": self.engine_stats,
            "per_iteration": [
                {
                    "iteration": record.iteration,
                    "nodes_created": record.nodes_created,
                    "post_decisions": record.post_decisions,
                    "counterexample_length": record.counterexample_length,
                    "counterexample_feasible": record.counterexample_feasible,
                    "new_predicates": (
                        record.refinement.new_predicates if record.refinement else 0
                    ),
                    "repair": record.repair,
                    "seconds": round(record.seconds, 6),
                }
                for record in self.iterations
            ],
        }
        if self.attempts != 1:
            payload["attempts"] = self.attempts
        if self.failure is not None:
            payload["failure"] = self.failure
        if self.counterexample is not None and self.counterexample.model:
            payload["witness"] = {
                str(var): str(value) for var, value in self.counterexample.model.items()
            }
        if self.iterations and self.iterations[-1].solver_stats:
            payload["solver"] = self.iterations[-1].solver_stats
        if isinstance(self, PortfolioResult):
            payload["portfolio"] = {
                "mode": self.mode,
                "winner": self.winner,
                "arms": self.arms,
            }
            if "witness" not in payload:
                # In process mode the winner's witness only exists in its arm doc.
                for arm in self.arms:
                    if arm["refiner"] == self.winner and "witness" in arm:
                        payload["witness"] = arm["witness"]
        return payload


#: Historical name of :class:`Result`, kept for compatibility.
CegarResult = Result


class VerificationEngine:
    """Counterexample-guided abstraction refinement over a persistent ART."""

    def __init__(
        self,
        program: Union[str, FunctionDef, Program],
        refiner: Optional[Refiner] = None,
        checker: Optional[VcChecker] = None,
        strategy: Union[str, Frontier] = "bfs",
        budget: Optional[Budget] = None,
        incremental: bool = True,
        max_predicates_per_location: Optional[int] = None,
        jobs: int = 1,
        parallel_backend: str = "thread",
    ) -> None:
        if isinstance(program, str):
            program = program_from_source(program)
        elif isinstance(program, FunctionDef):
            program = build_program(program)
        self.program = program
        self.checker = checker or VcChecker()
        self.refiner = refiner if refiner is not None else PathInvariantRefiner(self.checker)
        self.budget = budget or Budget()
        self.incremental = incremental
        #: Optional per-location predicate cap enforced by the precision
        #: (``None`` = unbounded); bounds the path-formula refiner's array
        #: predicate flood at the cost of refinement completeness.
        self.max_predicates_per_location = max_predicates_per_location
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if parallel_backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"unknown parallel backend {parallel_backend!r}; expected one of "
                f"{PARALLEL_BACKENDS}"
            )
        #: Worker count for intra-run parallel exploration; ``1`` keeps the
        #: engine strictly sequential (no pool, no threads).  Results are
        #: bit-identical either way — see :mod:`repro.core.parallel`.
        self.jobs = jobs
        self.parallel_backend = parallel_backend
        self._pool: Optional[SpeculativePool] = None
        if isinstance(strategy, Frontier):
            # A frontier instance is consumed by the first tree only; later
            # fresh trees (restart mode, repeated run()) get a new frontier —
            # sharing one would leak obligations of a discarded tree.
            self.strategy_name = strategy.name
            self._given_frontier: Optional[Frontier] = strategy
        else:
            self.strategy_name = strategy
            self._given_frontier = None
            make_frontier(strategy, self.program)  # fail fast on unknown names
        self.art: Optional[Art] = None
        self._precision: Optional[Precision] = None
        self._iterations: list[IterationRecord] = []
        self._elapsed = 0.0
        self._last_result: Optional[CegarResult] = None

    # ------------------------------------------------------------------
    @property
    def refinements_done(self) -> int:
        """Refinements performed so far (across resumed runs)."""
        return sum(1 for record in self._iterations if record.refinement is not None)

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock time consumed so far (across resumed runs)."""
        return self._elapsed

    def run(
        self, initial_precision: Optional[Precision] = None, resume: bool = False
    ) -> CegarResult:
        """Drive the CEGAR loop to a verdict (or a tripped budget).

        With ``resume=True`` the engine continues from its previous state —
        the persistent ART, the grown precision and the iteration history all
        carry over, and the budget counts *cumulative* consumption (raise a
        budget field between calls to grant more).  This is how the portfolio
        layer runs each refiner in time slices.  Without prior state (or with
        ``resume=False``, the default) a fresh run starts.
        """
        start = time.perf_counter()
        if resume and self._last_result is not None and self._last_result.verdict in (
            Verdict.SAFE,
            Verdict.UNSAFE,
        ):
            return self._last_result  # the verdict is final; nothing to resume
        if not (resume and self.art is not None):
            cap = self.max_predicates_per_location
            if initial_precision is None:
                self._precision = Precision(cap)
            elif cap is None:
                self._precision = initial_precision.copy()
            else:
                # Re-add the seed under the cap (deterministic order, like
                # Precision.from_location_names) so a seed larger than the
                # cap is truncated instead of silently exceeding it.
                capped = Precision(cap)
                for location, predicates in initial_precision.snapshot().items():
                    for predicate in sorted(predicates, key=str):
                        capped.add(location, predicate)
                self._precision = capped
            self._iterations = []
            self._elapsed = 0.0
            self.art = self._fresh_art()
        precision = self._precision
        iterations = self._iterations
        deadline = None
        if self.budget.max_seconds is not None:
            deadline = start + max(self.budget.max_seconds - self._elapsed, 0.0)
        limits = ExploreLimits(
            max_nodes=self.budget.max_nodes,
            deadline=deadline,
            max_solver_calls=self.budget.max_solver_calls,
        )

        pool: Optional[SpeculativePool] = None
        if self.jobs > 1:
            # Intra-run parallel exploration: workers pre-decide frontier
            # obligations on private checker shards while this thread runs
            # the unchanged sequential commit loop below.  set_precision
            # stores the live Precision object, so offers made after a
            # refinement automatically see the grown predicate sets.
            pool = self._pool = SpeculativePool(
                self.jobs, self.checker, backend=self.parallel_backend
            )
            pool.set_precision(precision)
            self.art.speculator = pool
            pool.prime(self.art)
        try:
            return self._run_loop(
                pool, precision, iterations, limits, start
            )
        finally:
            if pool is not None:
                pool.shutdown()
                if self.art is not None:
                    self.art.speculator = None
                self._pool = None

    def _run_loop(
        self,
        pool: Optional[SpeculativePool],
        precision: Precision,
        iterations: list[IterationRecord],
        limits: ExploreLimits,
        start: float,
    ) -> CegarResult:
        while True:
            iteration_start = time.perf_counter()
            posts_before = self.art.post_decisions
            created_before = self.art.nodes_created
            outcome = self.art.explore(precision, limits)
            record = IterationRecord(len(iterations), outcome)
            iterations.append(record)

            def seal(
                record: IterationRecord = record,
                started: float = iteration_start,
                art: Art = self.art,
                posts_before: int = posts_before,
                created_before: int = created_before,
            ) -> None:
                record.seconds = time.perf_counter() - started
                record.solver_stats = self.checker.statistics()
                record.post_decisions = art.post_decisions - posts_before
                record.nodes_created = art.nodes_created - created_before
                record.frontier_size = len(art.frontier)
                record.predicates_total = precision.total_predicates()

            if outcome.exhausted:
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"abstract reachability stopped: {outcome.exhausted_reason}",
                )
            if outcome.counterexample is None:
                seal()
                return self._finish(Verdict.SAFE, precision, iterations, start)

            path = outcome.counterexample
            record.counterexample_length = len(path)
            if pool is not None:
                # Counterexample barrier: wait out in-flight workers before
                # the sequential analysis/refinement phase (their results
                # are discarded — see SpeculativePool.drain).
                pool.drain()
            analysis = analyze_counterexample(path, self.checker)
            record.counterexample_feasible = analysis.feasible
            if analysis.feasible:
                seal()
                result = self._finish(Verdict.UNSAFE, precision, iterations, start)
                result.counterexample = analysis
                if analysis.approximate:
                    result.reason = "feasibility decided with an approximate integer check"
                return result

            if self.refinements_done >= self.budget.max_refinements:
                # Returning with an analysed-but-unrefined counterexample:
                # put its obligation back so a resumed run re-derives and
                # refines it (leaving the error node would let coverage
                # drain the frontier around it, which is unsound).
                self.art.drop_error_node()
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"refinement budget of {self.budget.max_refinements} exhausted",
                )

            mark = precision.mark()
            refinement = self.refiner.refine(self.program, path, precision)
            record.refinement = refinement
            if not refinement.progress:
                self.art.drop_error_node()
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"refinement made no progress: {refinement.description}",
                )
            if self.incremental:
                record.repair = self.art.apply_refinement(
                    precision, precision.added_since(mark)
                )
            else:
                self.art = self._fresh_art()
                if pool is not None:
                    self.art.speculator = pool
            if pool is not None:
                # Resume parallel expansion: re-offer the repaired frontier
                # under the grown precision.
                pool.prime(self.art)
            seal()

    # ------------------------------------------------------------------
    def _fresh_art(self) -> Art:
        frontier, self._given_frontier = self._given_frontier, None
        if frontier is None:
            try:
                frontier = make_frontier(self.strategy_name, self.program)
            except ValueError:
                raise ValueError(
                    f"cannot build a fresh {self.strategy_name!r} frontier for a new "
                    "tree; custom Frontier instances support a single tree only"
                ) from None
        return Art(self.program, self.checker, frontier)

    def _finish(
        self,
        verdict: str,
        precision: Precision,
        iterations: list[IterationRecord],
        start: float,
        reason: str = "",
    ) -> CegarResult:
        engine_stats: dict[str, Any] = {
            "strategy": self.strategy_name,
            "incremental": self.incremental,
            "jobs": self.jobs,
        }
        if self._pool is not None:
            # Settle in-flight speculation before reading its counters (the
            # pool itself is shut down by run()'s finally clause).
            self._pool.drain()
            engine_stats["parallel"] = self._pool.statistics()
        if precision.max_per_location is not None:
            engine_stats["max_predicates_per_location"] = precision.max_per_location
            engine_stats["predicates_dropped"] = precision.predicates_dropped
        if self.art is not None:
            art_stats = self.art.statistics()
            engine_stats.update(art_stats)
            # Normalise reuse to the result-level definition: nodes retained
            # across repairs (each retention is work a restart would redo).
            engine_stats["nodes_reused"] = sum(
                r.repair.get("retained", 0) for r in iterations if r.repair is not None
            )
            if not self.incremental:
                # The restart baseline discards trees; report run-wide totals
                # instead of the last tree's counters.
                engine_stats["nodes_created"] = sum(r.nodes_created for r in iterations)
                engine_stats["post_decisions"] = sum(r.post_decisions for r in iterations)
        self._elapsed += time.perf_counter() - start
        result = CegarResult(
            verdict=verdict,
            program=self.program,
            iterations=iterations,
            precision=precision,
            reason=reason,
            total_seconds=self._elapsed,
            engine_stats=engine_stats,
        )
        self._last_result = result
        return result


# ----------------------------------------------------------------------
# The portfolio layer: racing refiners with divergence detection
# ----------------------------------------------------------------------
#: The refiners the portfolio runs by default: the paper's path-invariant
#: refinement first, the classic path-formula baseline as the complement.
PORTFOLIO_REFINERS = ("path-invariant", "path-formula")

#: Execution modes of :class:`PortfolioEngine`.
PORTFOLIO_MODES = ("auto", "process", "round-robin")


@dataclass
class PortfolioResult(Result):
    """A :class:`Result` plus the portfolio's per-refiner breakdown.

    The base fields describe the *winning* arm (in process mode its summary
    counters and discovered *precision* survive the process boundary —
    predicates are picklable and re-keyed by location name — but
    ``iterations`` stays empty there).  ``arms`` holds one report per
    refiner: verdict, resource consumption, divergence verdict and the
    scheduling status (``won`` / ``lost`` / ``demoted`` / ``no-progress`` /
    ``exhausted`` / ``cancelled`` / ``error``).
    """

    winner: Optional[str] = None
    mode: str = "round-robin"
    arms: list[dict[str, Any]] = field(default_factory=list)

    def divergence_verdicts(self) -> dict[str, Any]:
        """Per-refiner divergence classification (``refiner -> verdict dict``)."""
        return {arm["refiner"]: arm.get("divergence") for arm in self.arms}

    def winner_witness_inputs(self) -> dict[str, str]:
        """The winning arm's concrete input witness, if it reported one.

        In process mode the full counterexample stays in the worker, but the
        winner ships its input valuation back as strings; empty when safe,
        undecided, or run in-process (use ``counterexample`` there).
        """
        for arm in self.arms:
            if arm["refiner"] == self.winner:
                return dict(arm.get("witness_inputs", {}))
        return {}

    def summary(self) -> str:
        lines = [super().summary(), f"portfolio:    mode={self.mode}, winner={self.winner or '-'}"]
        for arm in self.arms:
            divergence = arm.get("divergence") or {}
            marker = "diverging" if divergence.get("diverging") else arm.get("budget_class", "")
            lines.append(
                f"  {arm['refiner']:15s} {arm.get('status', '?'):11s} "
                f"{arm.get('verdict', '?'):8s} {arm.get('refinements', 0):2d} refinements "
                f"{arm.get('seconds', 0.0):6.2f}s"
                + (f"  [{marker}]" if marker else "")
            )
        return "\n".join(lines)


class _PortfolioArm:
    """Round-robin bookkeeping for one refiner's engine."""

    def __init__(self, name: str, engine: VerificationEngine, monitor) -> None:
        self.name = name
        self.engine = engine
        self.monitor = monitor
        self.status = "active"
        self.result: Optional[CegarResult] = None
        self._observed = 0

    def feed_monitor(self) -> None:
        """Digest iteration records produced since the last slice."""
        records = self.engine._iterations
        for record in records[self._observed:]:
            self.monitor.observe(record)
        self._observed = len(records)


class PortfolioEngine:
    """Races several refiners over the same program and reports honestly.

    The portfolio exploits refiner *complementarity*: path-invariant
    refinement succeeds exactly where path-formula refinement diverges (and
    the cheap path-formula refiner wins on programs whose proofs need no loop
    invariant), so running both under one budget removes the need for the
    user to pick a ``--refiner`` flag.

    Two execution modes:

    * ``process`` — every refiner races at full speed in its own worker
      process (the :func:`verify_many` machinery); the first *decided*
      verdict (safe/unsafe) wins and the stragglers are cancelled after a
      short grace period.  Requires the program's source text (workers
      rebuild everything from primitives) and a working process pool.
    * ``round-robin`` — the in-process fallback: each refiner keeps a
      resumable :class:`VerificationEngine` (all sharing one memoised
      checker, so arms reuse each other's abstract-post verdicts) and
      receives budget slices in turn.  A per-arm
      :class:`~repro.core.refiners.DivergenceMonitor` watches refinement
      trajectories; a stalling arm is *demoted* and its remaining budget
      flows to the surviving arms.

    ``auto`` (the default) tries ``process`` and silently degrades to
    ``round-robin`` when no source text is available or the platform refuses
    to spawn a pool.  In round-robin mode the budget is a *total* across
    arms (``max_refinements``, ``max_seconds`` and ``max_solver_calls`` are
    shared pools; ``max_nodes`` bounds each arm's own tree); in process mode
    each racer gets the full budget and wall-clock decides.
    """

    #: Wall cap applied to each race arm when the budget has none, so that
    #: abandoned losers terminate on their own.
    default_race_seconds = 60.0
    #: How long the race waits for undecided arms after a winner, to collect
    #: their divergence classifications.
    race_grace_seconds = 1.0

    def __init__(
        self,
        program: Union[str, FunctionDef, Program],
        refiners: Sequence[Union[str, Refiner]] = PORTFOLIO_REFINERS,
        strategy: str = "bfs",
        budget: Optional[Budget] = None,
        incremental: bool = True,
        checker: Optional[VcChecker] = None,
        mode: str = "auto",
        slice_refinements: int = 2,
        slice_seconds: Optional[float] = None,
        monitor_window: int = 3,
        initial_precision: Optional[Precision] = None,
        max_predicates_per_location: Optional[int] = None,
    ) -> None:
        self.source = program if isinstance(program, str) else None
        if isinstance(program, str):
            program = program_from_source(program)
        elif isinstance(program, FunctionDef):
            program = build_program(program)
        self.program = program
        if not refiners:
            raise ValueError("a portfolio needs at least one refiner")
        from .verifier import make_refiner

        for entry in refiners:  # fail fast on unknown refiner names
            if isinstance(entry, str):
                make_refiner(entry)
        self.refiners = tuple(refiners)
        self.refiner_names = tuple(
            entry if isinstance(entry, str) else entry.name for entry in refiners
        )
        if mode not in PORTFOLIO_MODES:
            raise ValueError(
                f"unknown portfolio mode {mode!r}; expected one of {PORTFOLIO_MODES}"
            )
        self.mode = mode
        self.strategy_name = strategy
        make_frontier(strategy, self.program)  # fail fast on unknown names
        self.budget = budget or Budget()
        self.incremental = incremental
        self.checker = checker or VcChecker()
        self.slice_refinements = max(1, slice_refinements)
        #: Optional wall-clock cap per round-robin slice, so one slow arm
        #: (e.g. path-formula flooding an array program with predicates)
        #: cannot starve its rivals even without a total ``max_seconds``.
        self.slice_seconds = slice_seconds
        self.monitor_window = monitor_window
        #: Optional seed precision every arm warm-starts from (each arm still
        #: grows its own copy).  Seeding never changes a decided verdict —
        #: predicates only refine the abstraction — it just lets an arm skip
        #: refinement rounds a previous run already paid for.
        self.initial_precision = initial_precision
        self.max_predicates_per_location = max_predicates_per_location

    # ------------------------------------------------------------------
    def run(self) -> PortfolioResult:
        raceable = (
            self.mode in ("auto", "process")
            and self.source is not None
            and len(self.refiners) > 1
            # Refiner instances do not cross process boundaries, and racing
            # identifies arms by name.
            and all(isinstance(entry, str) for entry in self.refiners)
            and len(set(self.refiner_names)) == len(self.refiner_names)
        )
        race_fallback = None
        if raceable:
            try:
                return self._run_race()
            except (OSError, PermissionError, ImportError, RuntimeError) as error:
                # Sandboxes without semaphores / broken pools: racing is an
                # optimisation, the in-process fallback is always safe —
                # but record why it was taken rather than hiding it.
                race_fallback = repr(error)
        result = self._run_round_robin()
        if race_fallback is not None and result.engine_stats is not None:
            result.engine_stats["race_fallback"] = race_fallback
        return result

    # ------------------------------------------------------------------
    # In-process round-robin with divergence-driven demotion
    # ------------------------------------------------------------------
    def _run_round_robin(self) -> PortfolioResult:
        from .refiners import DivergenceMonitor
        from .verifier import make_refiner

        start = time.perf_counter()
        deadline = (
            start + self.budget.max_seconds if self.budget.max_seconds is not None else None
        )
        arms = []
        for name, entry in zip(self.refiner_names, self.refiners):
            engine = VerificationEngine(
                self.program,
                refiner=entry if isinstance(entry, Refiner) else make_refiner(entry, self.checker),
                checker=self.checker,
                strategy=self.strategy_name,
                budget=Budget(
                    max_refinements=0,  # granted slice by slice below
                    max_nodes=self.budget.max_nodes,
                    max_seconds=None,
                    # The checker is shared, so this is a portfolio-total pool.
                    max_solver_calls=self.budget.max_solver_calls,
                ),
                incremental=self.incremental,
                max_predicates_per_location=self.max_predicates_per_location,
            )
            arms.append(_PortfolioArm(name, engine, DivergenceMonitor(self.monitor_window)))

        winner: Optional[_PortfolioArm] = None
        while winner is None:
            active = [arm for arm in arms if arm.status == "active"]
            if not active:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                break
            progressed = False
            for arm in active:
                if arm.status != "active":
                    continue
                rivals = any(a is not arm and a.status == "active" for a in arms)
                remaining = max(
                    self.budget.max_refinements
                    - sum(a.engine.refinements_done for a in arms),
                    0,
                )
                slice_r = remaining if not rivals else min(self.slice_refinements, remaining)
                arm.engine.budget.max_refinements = (
                    arm.engine.refinements_done + slice_r
                )
                slice_wall: Optional[float] = None
                if deadline is not None:
                    remaining_wall = max(deadline - time.perf_counter(), 0.0)
                    slice_wall = (
                        remaining_wall if not rivals else remaining_wall / len(active)
                    )
                if self.slice_seconds is not None and rivals:
                    slice_wall = (
                        self.slice_seconds
                        if slice_wall is None
                        else min(slice_wall, self.slice_seconds)
                    )
                if slice_wall is not None:
                    arm.engine.budget.max_seconds = (
                        arm.engine.elapsed_seconds + slice_wall
                    )
                before = arm.engine.refinements_done
                work_before = self.checker.num_triple_checks
                # initial_precision only takes effect on the arm's first
                # slice (before its tree exists); resumed slices ignore it.
                arm.result = arm.engine.run(
                    initial_precision=self.initial_precision, resume=True
                )
                arm.feed_monitor()
                # Progress is either a refinement or genuine new solver work
                # (a wall-sliced arm mid-exploration).  Cache-hit-only sweeps
                # (re-deriving the same counterexample against drained
                # budgets) count as no progress, which terminates the loop.
                if (
                    arm.engine.refinements_done > before
                    or self.checker.num_triple_checks > work_before
                ):
                    progressed = True
                if arm.result.verdict in (Verdict.SAFE, Verdict.UNSAFE):
                    arm.status = "won"
                    winner = arm
                    break
                if "no progress" in arm.result.reason:
                    arm.status = "no-progress"
                    progressed = True
                    continue
                # A tripped budget: demote a diverging arm (its remaining
                # budget flows to the rivals via the shared pools), retire an
                # arm whose non-replenishable budget (nodes, solver) is gone.
                if arm.monitor.verdict().diverging and rivals:
                    arm.status = "demoted"
                    progressed = True
                elif "node budget" in arm.result.reason or "solver budget" in arm.result.reason:
                    arm.status = "exhausted"
                    progressed = True
            if winner is None and not progressed:
                break

        total_seconds = time.perf_counter() - start
        for arm in arms:
            if arm.status != "active":
                continue
            # The loop ended with this arm intact: it never got a slice, a
            # rival won first, or the shared pools drained.
            if arm.result is None:
                arm.status = "idle"
            elif winner is not None:
                arm.status = "lost"
            else:
                arm.status = "exhausted"
        reports = [self._arm_report(arm) for arm in arms]
        if winner is not None:
            base = winner.result
            result = PortfolioResult(
                verdict=base.verdict,
                program=self.program,
                iterations=base.iterations,
                precision=base.precision,
                counterexample=base.counterexample,
                reason=base.reason,
                total_seconds=total_seconds,
                engine_stats=dict(base.engine_stats or {}),
                winner=winner.name,
                mode="round-robin",
                arms=reports,
            )
        else:
            result = PortfolioResult(
                verdict=Verdict.UNKNOWN,
                program=self.program,
                total_seconds=total_seconds,
                reason="portfolio exhausted: " + "; ".join(
                    f"{report['refiner']}: {report.get('reason') or report['status']}"
                    f" [{report['budget_class']}]"
                    for report in reports
                ),
                engine_stats={"strategy": self.strategy_name, "incremental": self.incremental},
                winner=None,
                mode="round-robin",
                arms=reports,
            )
        result.engine_stats["portfolio_mode"] = "round-robin"
        result.engine_stats["winner"] = result.winner
        return result

    def _arm_report(self, arm: _PortfolioArm) -> dict[str, Any]:
        engine = arm.engine
        divergence = arm.monitor.verdict()
        decided = arm.result is not None and arm.result.verdict in (
            Verdict.SAFE,
            Verdict.UNSAFE,
        )
        report = {
            "refiner": arm.name,
            "status": arm.status,
            "verdict": arm.result.verdict if arm.result is not None else Verdict.UNKNOWN,
            "reason": arm.result.reason if arm.result is not None else "never scheduled",
            "seconds": round(engine.elapsed_seconds, 6),
            "iterations": len(engine._iterations),
            "refinements": engine.refinements_done,
            "predicates": (
                engine._precision.total_predicates() if engine._precision else 0
            ),
            "post_decisions": (
                arm.result.post_decisions() if arm.result is not None else 0
            ),
            "divergence": divergence.to_dict(),
            "budget_class": "decided" if decided else arm.monitor.classify_budget_trip(),
        }
        return report

    # ------------------------------------------------------------------
    # Process-pool racing
    # ------------------------------------------------------------------
    def _run_race(self) -> PortfolioResult:
        # multiprocessing.Pool rather than ProcessPoolExecutor: its public
        # terminate() actually kills running workers, so a diverging loser
        # cannot keep the parent (or interpreter exit) hostage after the
        # race is decided.
        import multiprocessing

        start = time.perf_counter()
        budget = vars(self.budget).copy()
        if budget["max_seconds"] is None:
            budget["max_seconds"] = self.default_race_seconds
        seed = (
            self.initial_precision.by_location_name()
            if self.initial_precision is not None
            else None
        )
        payloads = [
            {
                "name": self.program.name,
                "source": self.source,
                "refiner": name,
                "strategy": self.strategy_name,
                "budget": budget,
                "incremental": self.incremental,
                "window": self.monitor_window,
                # Formulas pickle (re-interning on load), so the seed crosses
                # the pool as real predicates keyed by location name.
                "seed": seed,
                "max_predicates_per_location": self.max_predicates_per_location,
            }
            for name in self.refiner_names
        ]
        arm_docs: dict[str, dict[str, Any]] = {}
        winner_doc: Optional[dict[str, Any]] = None
        # Workers self-terminate on their wall budget; the extra slack only
        # guards against a wedged worker before the terminate() below.
        hard_deadline = start + budget["max_seconds"] + 10.0
        pool = multiprocessing.get_context().Pool(processes=len(payloads))
        try:
            pending = {
                payload["refiner"]: pool.apply_async(_run_portfolio_arm, (payload,))
                for payload in payloads
            }

            def drain() -> None:
                nonlocal winner_doc
                for name, handle in list(pending.items()):
                    if not handle.ready():
                        continue
                    del pending[name]
                    try:
                        doc = handle.get()
                    except Exception as error:
                        # The arm's worker raised (or died mid-transfer): one
                        # broken arm must not abort the race — the surviving
                        # arms can still decide the program.
                        doc = {
                            "refiner": name,
                            "verdict": Verdict.UNKNOWN,
                            "reason": f"portfolio arm failed: {error!r}",
                            "status": "crashed",
                        }
                    arm_docs[name] = doc
                    if winner_doc is None and doc["verdict"] in (
                        Verdict.SAFE,
                        Verdict.UNSAFE,
                    ):
                        doc["status"] = "won"
                        winner_doc = doc

            while pending and winner_doc is None and time.perf_counter() < hard_deadline:
                drain()
                if pending and winner_doc is None:
                    time.sleep(0.02)
            # Give the losers a moment to report their divergence stats.
            grace_end = time.perf_counter() + self.race_grace_seconds
            while pending and time.perf_counter() < grace_end:
                drain()
                if pending:
                    time.sleep(0.02)
            for name in pending:
                arm_docs[name] = {
                    "refiner": name,
                    "verdict": Verdict.UNKNOWN,
                    "reason": "cancelled after the portfolio decided",
                    "status": "cancelled",
                }
        finally:
            pool.terminate()
            pool.join()

        total_seconds = time.perf_counter() - start
        reports = []
        winner_precision: Optional[Precision] = None
        for name in self.refiner_names:
            doc = arm_docs.get(
                name,
                {"refiner": name, "verdict": Verdict.UNKNOWN,
                 "reason": "never scheduled", "status": "cancelled"},
            )
            doc.setdefault("status", "lost")
            # The discovered precision crosses the pool as pickled formulas;
            # pop it before the doc joins the JSON-serialisable reports and
            # rebind the winner's onto this process's program.
            precision_payload = doc.pop("_precision", None)
            if winner_doc is not None and doc is winner_doc and precision_payload:
                winner_precision = Precision.from_location_names(
                    self.program, precision_payload, self.max_predicates_per_location
                )
            reports.append(
                {
                    "refiner": name,
                    "status": doc["status"],
                    "verdict": doc.get("verdict", Verdict.UNKNOWN),
                    "reason": doc.get("reason", ""),
                    "seconds": doc.get("seconds", 0.0),
                    "iterations": doc.get("iterations", 0),
                    "refinements": doc.get("refinements", 0),
                    "predicates": doc.get("predicates", 0),
                    "post_decisions": doc.get("post_decisions", 0),
                    "divergence": doc.get("divergence"),
                    "budget_class": doc.get("budget_class", "cancelled"),
                    **({"witness": doc["witness"]} if "witness" in doc else {}),
                    **(
                        {"witness_inputs": doc["witness_inputs"]}
                        if "witness_inputs" in doc
                        else {}
                    ),
                }
            )
        if winner_doc is not None:
            verdict = winner_doc["verdict"]
            reason = winner_doc.get("reason", "")
        else:
            verdict = Verdict.UNKNOWN
            reason = "portfolio exhausted: " + "; ".join(
                f"{r['refiner']}: {r.get('reason') or r['status']} [{r['budget_class']}]"
                for r in reports
            )
        decided = {r["refiner"]: r["verdict"] for r in reports
                   if r["verdict"] in (Verdict.SAFE, Verdict.UNSAFE)}
        if len(set(decided.values())) > 1:  # pragma: no cover - soundness bug guard
            reason = f"portfolio arms disagree ({decided}); kept the first verdict. {reason}"
        return PortfolioResult(
            verdict=verdict,
            program=self.program,
            precision=winner_precision,
            reason=reason,
            total_seconds=total_seconds,
            engine_stats={
                "strategy": self.strategy_name,
                "incremental": self.incremental,
                "portfolio_mode": "process",
                "winner": winner_doc["refiner"] if winner_doc else None,
            },
            winner=winner_doc["refiner"] if winner_doc else None,
            mode="process",
            arms=reports,
        )


def _run_portfolio_arm(payload: dict[str, Any]) -> dict[str, Any]:
    """Race worker: run one refiner at full speed and classify its trajectory.

    Module-level so it pickles; returns a JSON-serialisable document (the
    full :class:`CegarResult` stays in this process).
    """
    from .refiners import DivergenceMonitor
    from .verifier import make_refiner

    try:
        engine = VerificationEngine(
            payload["source"],
            strategy=payload["strategy"],
            budget=Budget(**payload["budget"]),
            incremental=payload["incremental"],
            max_predicates_per_location=payload.get("max_predicates_per_location"),
        )
        engine.refiner = make_refiner(payload["refiner"], engine.checker)
        seed = None
        if payload.get("seed"):
            seed = Precision.from_location_names(
                engine.program,
                payload["seed"],
                payload.get("max_predicates_per_location"),
            )
        result = engine.run(initial_precision=seed)
        doc = result_to_dict(result, name=payload["name"])
        doc["refiner"] = payload["refiner"]
        if result.precision is not None and result.verdict in (
            Verdict.SAFE,
            Verdict.UNSAFE,
        ):
            # Ship the discovered precision home (the ROADMAP's process-race
            # fidelity item): the parent re-keys it onto its own program and
            # later runs warm-start from it.  Not JSON — the parent pops it.
            # Decided runs only: an undecided run's precision is dominated by
            # whatever made it diverge, and the receiver discards it anyway.
            doc["_precision"] = result.precision.by_location_name()
        if result.counterexample is not None:
            inputs = result.counterexample.witness_inputs(engine.program.variables)
            if inputs:
                doc["witness_inputs"] = {
                    str(var): str(value) for var, value in sorted(inputs.items())
                }
        divergence = DivergenceMonitor.analyze(result.iterations, payload["window"])
        doc["divergence"] = divergence.to_dict()
        if result.verdict in (Verdict.SAFE, Verdict.UNSAFE):
            doc["budget_class"] = "decided"
        else:
            doc["budget_class"] = "diverging" if divergence.diverging else "under-resourced"
        return doc
    except Exception as error:  # pragma: no cover - defensive per-arm isolation
        return {
            "refiner": payload["refiner"],
            "name": payload["name"],
            "verdict": "error",
            "reason": repr(error),
            "status": "error",
        }


# ----------------------------------------------------------------------
# Batch verification
# ----------------------------------------------------------------------
def result_to_dict(result: Result, name: Optional[str] = None) -> dict[str, Any]:
    """A JSON-serialisable view of a :class:`Result` (see :meth:`Result.to_json`)."""
    return result.to_json(name=name)


def error_doc(name: str, error: Exception) -> dict[str, Any]:
    """A schema-conformant error document for a task that never produced a
    :class:`Result` (parse failure, worker crash); keeps ``schema_version``
    uniform across every doc a batch returns."""
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "name": name,
        "verdict": "error",
        "reason": repr(error),
    }


def _run_batch_task(payload: dict[str, Any]) -> dict[str, Any]:
    """Process-pool worker: verify one source text and return a result dict.

    Module-level so it pickles; builds everything from primitives because
    Program/VcChecker instances do not cross process boundaries.
    """
    try:
        cap = payload.get("max_predicates_per_location")
        if payload["refiner"] == "portfolio":
            # Already inside a worker: run the in-process round-robin rather
            # than nesting a second process pool.
            portfolio = PortfolioEngine(
                payload["source"],
                refiners=tuple(payload.get("portfolio_refiners") or PORTFOLIO_REFINERS),
                strategy=payload["strategy"],
                budget=Budget(**payload["budget"]),
                incremental=payload["incremental"],
                mode="round-robin",
                slice_refinements=payload.get("slice_refinements", 2),
                slice_seconds=payload.get("slice_seconds"),
                monitor_window=payload.get("monitor_window", 3),
                max_predicates_per_location=cap,
            )
            if payload.get("seed"):
                portfolio.initial_precision = Precision.from_location_names(
                    portfolio.program, payload["seed"], cap
                )
            portfolio.checker.max_cache_entries = payload.get("max_cache_entries")
            result = portfolio.run()
        else:
            engine = VerificationEngine(
                payload["source"],
                strategy=payload["strategy"],
                budget=Budget(**payload["budget"]),
                incremental=payload["incremental"],
                max_predicates_per_location=cap,
                jobs=payload.get("jobs", 1),
            )
            engine.checker.max_cache_entries = payload.get("max_cache_entries")
            # The refiner needs the engine's checker; build it here rather
            # than shipping one over.
            from .verifier import make_refiner

            engine.refiner = make_refiner(payload["refiner"], engine.checker)
            seed = None
            if payload.get("seed"):
                # Apply the cap while rebinding, like PrecisionStore.seed_for
                # does in-process — a banked precision may exceed it.
                seed = Precision.from_location_names(
                    engine.program, payload["seed"], cap
                )
            result = engine.run(initial_precision=seed)
        doc = result_to_dict(result, name=payload["name"])
        if (
            payload.get("ship_precision")
            and result.precision is not None
            and result.verdict in (Verdict.SAFE, Verdict.UNSAFE)
        ):
            # Pickled formulas, not JSON: the session pops this key, merges
            # it into its PrecisionStore, and never lets it reach json.dumps.
            # Undecided precisions stay in the worker — the session would
            # only drop them, so serialising the flood would be pure waste.
            doc["_precision"] = result.precision.by_location_name()
        return doc
    except Exception as error:  # pragma: no cover - defensive per-task isolation
        return error_doc(payload["name"], error)


def _normalise_tasks(
    tasks: Sequence[Union[str, tuple[str, str], dict[str, str]]]
) -> list[dict[str, str]]:
    """Accept builtin names, raw sources, (name, source) pairs or dicts."""
    from ..lang.programs import PROGRAMS

    normalised = []
    for index, task in enumerate(tasks):
        if isinstance(task, dict):
            normalised.append({"name": task["name"], "source": task["source"]})
        elif isinstance(task, tuple):
            name, source = task
            normalised.append({"name": name, "source": source})
        elif task in PROGRAMS:
            normalised.append({"name": task, "source": PROGRAMS[task].source})
        else:
            normalised.append({"name": f"task{index}", "source": task})
    return normalised


_UNSET: Any = object()


def verify_many(
    tasks: Sequence[Union[str, tuple[str, str], dict[str, str]]],
    refiner: str = _UNSET,
    strategy: str = _UNSET,
    budget: Optional[Budget] = None,
    incremental: bool = _UNSET,
    jobs: Optional[int] = None,
    options: Optional[Any] = None,
) -> list[dict[str, Any]]:
    """Verify a corpus of programs, optionally on a process pool.

    A compatibility wrapper over :meth:`repro.core.api.Session.run_many`
    (cold — every task starts from the empty precision, matching the
    historical behaviour; use a :class:`~repro.core.api.Session` directly
    for warm-started batches).  The superseded tuning kwargs (``refiner``,
    ``strategy``, ``budget``, ``incremental``) still work but emit a
    ``DeprecationWarning``; prefer ``options=``.

    Parameters
    ----------
    tasks:
        Built-in program names, raw mini-C sources, ``(name, source)`` pairs,
        or ``{"name", "source"}`` dicts, freely mixed.
    jobs:
        Pool width.  ``None`` picks ``min(len(tasks), cpu_count)``; ``1``
        (or a single task) runs sequentially in-process.  If the platform
        refuses to spawn a pool (sandboxes without semaphores), the batch
        silently degrades to sequential execution.

    Returns one JSON-serialisable result dict per task, in input order
    (see :meth:`Result.to_json` for the versioned schema).
    """
    from .api import Session, VerifierOptions, resolve_legacy_options

    legacy = {
        name: value
        for name, value in (
            ("refiner", refiner),
            ("strategy", strategy),
            ("incremental", incremental),
        )
        if value is not _UNSET
    }
    if budget is not None:
        legacy["budget"] = budget

    def build() -> VerifierOptions:
        effective_budget = budget or Budget()
        return VerifierOptions(
            refiner=refiner if refiner is not _UNSET else "path-invariant",
            strategy=strategy if strategy is not _UNSET else "bfs",
            incremental=incremental if incremental is not _UNSET else True,
            max_refinements=effective_budget.max_refinements,
            max_nodes=effective_budget.max_nodes,
            max_seconds=effective_budget.max_seconds,
            max_solver_calls=effective_budget.max_solver_calls,
        )

    options = resolve_legacy_options("verify_many", options, legacy, build)
    # This wrapper guarantees cold runs regardless of how the options were
    # built; warm-started batches go through Session.run_many.
    session = Session(options.replace(warm_start=False))
    return session.run_many(_normalise_tasks(tasks), jobs=jobs)
