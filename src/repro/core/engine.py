"""The incremental lazy-abstraction verification engine.

:class:`VerificationEngine` owns everything one verification task needs — the
program, the growing precision, the persistent abstract reachability tree,
the refiner, the exploration strategy and the budgets — and drives the CEGAR
loop through them:

1. *Explore*: advance the persistent ART's frontier under the current
   precision (:meth:`~repro.core.predabs.Art.explore`).
2. *Analyse*: decide feasibility of the abstract counterexample.
3. *Refine*: ask the refiner for new predicates, then *repair* the ART with
   :meth:`~repro.core.predabs.Art.apply_refinement` instead of discarding it
   (pass ``incremental=False`` for the restart-the-world baseline).

Per-iteration statistics record how much work was reused versus recomputed
(`nodes reused`, `post decisions`, repair counters), which is what the
``bench_e8`` benchmark tracks over time.

The module also hosts the batch layer: :func:`verify_many` runs a corpus of
programs concurrently on a process pool with per-task budgets and returns
machine-readable results (wired to the ``python -m repro`` CLI).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from ..lang.ast import FunctionDef
from ..lang.cfg import Program, build_program, program_from_source
from ..smt.vcgen import VcChecker
from .cex import CounterexampleAnalysis, analyze_counterexample
from .predabs import (
    FRONTIER_NAMES,
    Art,
    ExploreLimits,
    Frontier,
    Precision,
    ReachabilityOutcome,
    make_frontier,
)
from .refiners import PathInvariantRefiner, Refiner, RefinementOutcome

__all__ = [
    "Verdict",
    "Budget",
    "IterationRecord",
    "CegarResult",
    "VerificationEngine",
    "STRATEGY_NAMES",
    "verify_many",
    "result_to_dict",
]

#: The exploration strategies the engine accepts by name.
STRATEGY_NAMES = FRONTIER_NAMES


class Verdict:
    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"


@dataclass
class Budget:
    """Resource limits of one verification task.

    ``max_refinements`` bounds CEGAR iterations (the problem is undecidable,
    so a bound is required; the baseline refiner in particular diverges by
    design on the paper's examples).  ``max_nodes`` bounds cumulative ART
    nodes, ``max_seconds`` the wall clock, and ``max_solver_calls`` the
    checker's Hoare-triple count.
    """

    max_refinements: int = 25
    max_nodes: Optional[int] = 4000
    max_seconds: Optional[float] = None
    max_solver_calls: Optional[int] = None


@dataclass
class IterationRecord:
    """Statistics of one CEGAR iteration."""

    iteration: int
    reachability: ReachabilityOutcome
    counterexample_length: int = 0
    counterexample_feasible: Optional[bool] = None
    refinement: Optional[RefinementOutcome] = None
    seconds: float = 0.0
    #: Cumulative checker/solver counters at the end of the iteration (the
    #: shared VcChecker memoises queries across iterations, so deltas between
    #: consecutive records show what each round actually cost).
    solver_stats: Optional[dict[str, int]] = None
    #: Abstract-post decisions requested by reachability this iteration.
    post_decisions: int = 0
    #: ART nodes created this iteration.
    nodes_created: int = 0
    #: Repair counters of the refinement closing this iteration
    #: (``rechecked`` / ``reused`` / ``strengthened`` / ``invalidated``);
    #: None on the restart baseline and on iterations without a refinement.
    repair: Optional[dict[str, int]] = None


@dataclass
class CegarResult:
    """Final outcome of a CEGAR run."""

    verdict: str
    program: Program
    iterations: list[IterationRecord] = field(default_factory=list)
    precision: Optional[Precision] = None
    counterexample: Optional[CounterexampleAnalysis] = None
    reason: str = ""
    total_seconds: float = 0.0
    #: Engine-level reuse counters (strategy, incremental flag, cumulative
    #: ART statistics); None for results not produced by the engine.
    engine_stats: Optional[dict[str, Any]] = None

    @property
    def is_safe(self) -> bool:
        return self.verdict == Verdict.SAFE

    @property
    def is_unsafe(self) -> bool:
        return self.verdict == Verdict.UNSAFE

    @property
    def num_refinements(self) -> int:
        return sum(1 for record in self.iterations if record.refinement is not None)

    def total_predicates(self) -> int:
        return self.precision.total_predicates() if self.precision else 0

    def post_decisions(self) -> int:
        """Abstract-post decisions requested across the whole run."""
        return sum(record.post_decisions for record in self.iterations)

    def nodes_reused(self) -> int:
        """ART nodes that survived a repair (work a restart would redo).

        Summed over all repairs: a node retained across ``k`` refinements
        counts ``k`` times, because a restart engine would re-derive it
        ``k`` times.
        """
        return sum(
            record.repair.get("retained", 0)
            for record in self.iterations
            if record.repair is not None
        )

    def summary(self) -> str:
        lines = [
            f"program:      {self.program.name}",
            f"verdict:      {self.verdict}",
            f"iterations:   {len(self.iterations)}",
            f"refinements:  {self.num_refinements}",
            f"predicates:   {self.total_predicates()}",
            f"time:         {self.total_seconds:.2f}s",
        ]
        if self.engine_stats:
            lines.append(
                "art:          "
                f"{self.engine_stats.get('nodes_created', 0)} nodes created, "
                f"{self.engine_stats.get('nodes_reused', 0)} reused, "
                f"{self.engine_stats.get('nodes_invalidated', 0)} invalidated, "
                f"{self.post_decisions()} post decisions "
                f"({self.engine_stats.get('strategy', '?')}, "
                f"{'incremental' if self.engine_stats.get('incremental') else 'restart'})"
            )
        if self.iterations and self.iterations[-1].solver_stats:
            stats = self.iterations[-1].solver_stats
            lines.append(
                "solver:       "
                f"{stats.get('sat_queries', 0)} sat queries, "
                f"{stats.get('cache_hits', 0)} cache hits, "
                f"{stats.get('splits', 0)} splits, "
                f"{stats.get('triple_cache_hits', 0)} triple cache hits"
            )
        if self.reason:
            lines.append(f"reason:       {self.reason}")
        return "\n".join(lines)


class VerificationEngine:
    """Counterexample-guided abstraction refinement over a persistent ART."""

    def __init__(
        self,
        program: Union[str, FunctionDef, Program],
        refiner: Optional[Refiner] = None,
        checker: Optional[VcChecker] = None,
        strategy: Union[str, Frontier] = "bfs",
        budget: Optional[Budget] = None,
        incremental: bool = True,
    ) -> None:
        if isinstance(program, str):
            program = program_from_source(program)
        elif isinstance(program, FunctionDef):
            program = build_program(program)
        self.program = program
        self.checker = checker or VcChecker()
        self.refiner = refiner if refiner is not None else PathInvariantRefiner(self.checker)
        self.budget = budget or Budget()
        self.incremental = incremental
        if isinstance(strategy, Frontier):
            # A frontier instance is consumed by the first tree only; later
            # fresh trees (restart mode, repeated run()) get a new frontier —
            # sharing one would leak obligations of a discarded tree.
            self.strategy_name = strategy.name
            self._given_frontier: Optional[Frontier] = strategy
        else:
            self.strategy_name = strategy
            self._given_frontier = None
            make_frontier(strategy, self.program)  # fail fast on unknown names
        self.art: Optional[Art] = None

    # ------------------------------------------------------------------
    def run(self, initial_precision: Optional[Precision] = None) -> CegarResult:
        start = time.perf_counter()
        precision = initial_precision.copy() if initial_precision else Precision()
        iterations: list[IterationRecord] = []
        deadline = (
            start + self.budget.max_seconds if self.budget.max_seconds is not None else None
        )
        limits = ExploreLimits(
            max_nodes=self.budget.max_nodes,
            deadline=deadline,
            max_solver_calls=self.budget.max_solver_calls,
        )
        self.art = self._fresh_art()

        for iteration in range(self.budget.max_refinements + 1):
            iteration_start = time.perf_counter()
            posts_before = self.art.post_decisions
            created_before = self.art.nodes_created
            outcome = self.art.explore(precision, limits)
            record = IterationRecord(iteration, outcome)
            iterations.append(record)

            def seal(
                record: IterationRecord = record,
                started: float = iteration_start,
                art: Art = self.art,
                posts_before: int = posts_before,
                created_before: int = created_before,
            ) -> None:
                record.seconds = time.perf_counter() - started
                record.solver_stats = self.checker.statistics()
                record.post_decisions = art.post_decisions - posts_before
                record.nodes_created = art.nodes_created - created_before

            if outcome.exhausted:
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"abstract reachability stopped: {outcome.exhausted_reason}",
                )
            if outcome.counterexample is None:
                seal()
                return self._finish(Verdict.SAFE, precision, iterations, start)

            path = outcome.counterexample
            record.counterexample_length = len(path)
            analysis = analyze_counterexample(path, self.checker)
            record.counterexample_feasible = analysis.feasible
            if analysis.feasible:
                seal()
                result = self._finish(Verdict.UNSAFE, precision, iterations, start)
                result.counterexample = analysis
                if analysis.approximate:
                    result.reason = "feasibility decided with an approximate integer check"
                return result

            if iteration == self.budget.max_refinements:
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"refinement budget of {self.budget.max_refinements} exhausted",
                )

            mark = precision.mark()
            refinement = self.refiner.refine(self.program, path, precision)
            record.refinement = refinement
            if not refinement.progress:
                seal()
                return self._finish(
                    Verdict.UNKNOWN, precision, iterations, start,
                    reason=f"refinement made no progress: {refinement.description}",
                )
            if self.incremental:
                record.repair = self.art.apply_refinement(
                    precision, precision.added_since(mark)
                )
            else:
                self.art = self._fresh_art()
            seal()
        return self._finish(
            Verdict.UNKNOWN, precision, iterations, start, reason="iteration budget exhausted"
        )

    # ------------------------------------------------------------------
    def _fresh_art(self) -> Art:
        frontier, self._given_frontier = self._given_frontier, None
        if frontier is None:
            try:
                frontier = make_frontier(self.strategy_name, self.program)
            except ValueError:
                raise ValueError(
                    f"cannot build a fresh {self.strategy_name!r} frontier for a new "
                    "tree; custom Frontier instances support a single tree only"
                ) from None
        return Art(self.program, self.checker, frontier)

    def _finish(
        self,
        verdict: str,
        precision: Precision,
        iterations: list[IterationRecord],
        start: float,
        reason: str = "",
    ) -> CegarResult:
        engine_stats: dict[str, Any] = {
            "strategy": self.strategy_name,
            "incremental": self.incremental,
        }
        if self.art is not None:
            art_stats = self.art.statistics()
            engine_stats.update(art_stats)
            # Normalise reuse to the result-level definition: nodes retained
            # across repairs (each retention is work a restart would redo).
            engine_stats["nodes_reused"] = sum(
                r.repair.get("retained", 0) for r in iterations if r.repair is not None
            )
            if not self.incremental:
                # The restart baseline discards trees; report run-wide totals
                # instead of the last tree's counters.
                engine_stats["nodes_created"] = sum(r.nodes_created for r in iterations)
                engine_stats["post_decisions"] = sum(r.post_decisions for r in iterations)
        return CegarResult(
            verdict=verdict,
            program=self.program,
            iterations=iterations,
            precision=precision,
            reason=reason,
            total_seconds=time.perf_counter() - start,
            engine_stats=engine_stats,
        )


# ----------------------------------------------------------------------
# Batch verification
# ----------------------------------------------------------------------
def result_to_dict(result: CegarResult, name: Optional[str] = None) -> dict[str, Any]:
    """A JSON-serialisable view of a :class:`CegarResult`."""
    payload: dict[str, Any] = {
        "name": name or result.program.name,
        "verdict": result.verdict,
        "reason": result.reason,
        "iterations": len(result.iterations),
        "refinements": result.num_refinements,
        "predicates": result.total_predicates(),
        "seconds": round(result.total_seconds, 6),
        "post_decisions": result.post_decisions(),
        "nodes_reused": result.nodes_reused(),
        "engine": result.engine_stats,
        "per_iteration": [
            {
                "iteration": record.iteration,
                "nodes_created": record.nodes_created,
                "post_decisions": record.post_decisions,
                "counterexample_length": record.counterexample_length,
                "counterexample_feasible": record.counterexample_feasible,
                "new_predicates": (
                    record.refinement.new_predicates if record.refinement else 0
                ),
                "repair": record.repair,
                "seconds": round(record.seconds, 6),
            }
            for record in result.iterations
        ],
    }
    if result.counterexample is not None and result.counterexample.model:
        payload["witness"] = {
            str(var): str(value) for var, value in result.counterexample.model.items()
        }
    if result.iterations and result.iterations[-1].solver_stats:
        payload["solver"] = result.iterations[-1].solver_stats
    return payload


def _run_batch_task(payload: dict[str, Any]) -> dict[str, Any]:
    """Process-pool worker: verify one source text and return a result dict.

    Module-level so it pickles; builds everything from primitives because
    Program/VcChecker instances do not cross process boundaries.
    """
    try:
        engine = VerificationEngine(
            payload["source"],
            strategy=payload["strategy"],
            budget=Budget(**payload["budget"]),
            incremental=payload["incremental"],
        )
        # The refiner needs the engine's checker; build it here rather than
        # shipping one over.
        from .verifier import make_refiner

        engine.refiner = make_refiner(payload["refiner"], engine.checker)
        result = engine.run()
        return result_to_dict(result, name=payload["name"])
    except Exception as error:  # pragma: no cover - defensive per-task isolation
        return {"name": payload["name"], "verdict": "error", "reason": repr(error)}


def _normalise_tasks(
    tasks: Sequence[Union[str, tuple[str, str], dict[str, str]]]
) -> list[dict[str, str]]:
    """Accept builtin names, raw sources, (name, source) pairs or dicts."""
    from ..lang.programs import PROGRAMS

    normalised = []
    for index, task in enumerate(tasks):
        if isinstance(task, dict):
            normalised.append({"name": task["name"], "source": task["source"]})
        elif isinstance(task, tuple):
            name, source = task
            normalised.append({"name": name, "source": source})
        elif task in PROGRAMS:
            normalised.append({"name": task, "source": PROGRAMS[task].source})
        else:
            normalised.append({"name": f"task{index}", "source": task})
    return normalised


def verify_many(
    tasks: Sequence[Union[str, tuple[str, str], dict[str, str]]],
    refiner: str = "path-invariant",
    strategy: str = "bfs",
    budget: Optional[Budget] = None,
    incremental: bool = True,
    jobs: Optional[int] = None,
) -> list[dict[str, Any]]:
    """Verify a corpus of programs, optionally on a process pool.

    Parameters
    ----------
    tasks:
        Built-in program names, raw mini-C sources, ``(name, source)`` pairs,
        or ``{"name", "source"}`` dicts, freely mixed.
    jobs:
        Pool width.  ``None`` picks ``min(len(tasks), cpu_count)``; ``1``
        (or a single task) runs sequentially in-process.  If the platform
        refuses to spawn a pool (sandboxes without semaphores), the batch
        silently degrades to sequential execution.

    Returns one JSON-serialisable result dict per task, in input order.
    """
    budget = budget or Budget()
    payloads = [
        {
            "name": task["name"],
            "source": task["source"],
            "refiner": refiner,
            "strategy": strategy,
            "budget": vars(budget),
            "incremental": incremental,
        }
        for task in _normalise_tasks(tasks)
    ]
    if jobs is None:
        jobs = min(len(payloads), os.cpu_count() or 1)
    if jobs > 1 and len(payloads) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(_run_batch_task, payloads))
        except (OSError, PermissionError, ImportError):
            pass  # fall through to the sequential path
    return [_run_batch_task(payload) for payload in payloads]
