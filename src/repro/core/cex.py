"""Counterexample analysis (the second phase of the CEGAR loop).

An abstract counterexample is a path from the initial location to the error
location in the abstract reachability tree.  This module decides whether the
path is *feasible* — i.e. whether its SSA path formula is satisfiable over the
integers — and packages the verdict together with a witness valuation (for
genuine bugs) for the bug report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..lang.cfg import Transition
from ..lang.commands import Command
from ..logic.terms import Var
from ..smt.vcgen import VcChecker

__all__ = ["CounterexampleAnalysis", "analyze_counterexample", "path_commands"]


def path_commands(path: Sequence[Transition]) -> list[Command]:
    """The concatenated command sequence of an error path."""
    commands: list[Command] = []
    for transition in path:
        commands.extend(transition.commands)
    return commands


@dataclass
class CounterexampleAnalysis:
    """Feasibility verdict for an abstract counterexample."""

    path: tuple[Transition, ...]
    feasible: bool
    #: A witness valuation of the SSA variables (only for feasible paths).
    model: Optional[dict[Var, Fraction]] = None
    #: True when the feasibility verdict relied on an over-approximation
    #: (branch-and-bound budget exhausted); such a path is treated as
    #: potentially feasible and reported as an inconclusive alarm.
    approximate: bool = False

    def witness_inputs(self, variables: Sequence[str]) -> dict[str, Fraction]:
        """Initial values of the program variables extracted from the model."""
        if self.model is None:
            return {}
        values: dict[str, Fraction] = {}
        for name in variables:
            for candidate in (f"{name}@0", name):
                for var, value in self.model.items():
                    if var.name == candidate:
                        values[name] = value
                        break
                if name in values:
                    break
        return values


def analyze_counterexample(
    path: Sequence[Transition], checker: Optional[VcChecker] = None
) -> CounterexampleAnalysis:
    """Check whether the abstract counterexample is concretely executable."""
    checker = checker or VcChecker()
    feasibility = checker.is_feasible(path_commands(path))
    return CounterexampleAnalysis(
        tuple(path),
        feasible=feasibility.feasible,
        model=feasibility.model,
        approximate=feasibility.approximate,
    )
