"""Intra-run parallel ART exploration: speculative decide, sequential commit.

The batched abstract-post oracle (PR 5) made each frontier expansion a
self-contained unit of solver work keyed by ``(source-state, transition)``:
one edge-feasibility check plus one batched predicate family, with verdicts
that depend on nothing but that key — never on the precision, the tree shape
or the exploration order.  That is exactly the shape of work that can be
*speculated*: decided ahead of time, on any solver, in any order, without
changing what the engine concludes.

:class:`SpeculativePool` exploits this.  A pool of workers (threads by
default; a process backend behind the same interface) each owns a private
:class:`~repro.smt.vcgen.VcChecker` *shard* — its own ``SmtSolver``, its own
prepared-edge contexts, its own memo tables — so workers never contend on
solver state.  The protocol:

* **offer** — every obligation entering the frontier is offered to the pool
  (:meth:`Art._enqueue_all` calls :meth:`offer`).  The offer captures the
  obligation's immutable inputs *at push time*: the source state (a
  frozenset), the transition, and the frame-filtered predicate list under
  the current precision (via
  :func:`~repro.core.predabs.split_frame_predicates`, the same pure filter
  the commit path applies).  The predicate family is *column-sharded*: it
  is split into up to ``jobs`` chunks, one future per chunk, so a single
  wide batch — the common shape on chain-like ARTs where only one
  obligation is pending at a time — still spreads across every shard.
  Workers decide only posts; edge feasibility stays with the commit path
  (it is one unsharded query, and it gates whether the posts are needed).

* **install (the merge lock)** — the commit path is the *unchanged
  sequential explore loop* on the main thread.  Just before
  :meth:`Art._expand_edge` queries the shared checker, it claims the
  obligation's chunks: first the edge verdict is decided on the *shared*
  checker (the exact query, and the exact budget charge, the commit was
  about to make — afterwards the commit's own call is a cache hit).  An
  infeasible edge discards the chunks unmerged; a feasible one awaits each
  chunk future — queued chunks are awaited too, not cancelled, so the
  pool's shards (not the main thread) pay the decide latency — and merges
  the verdicts into the shared checker's memo tables
  (:meth:`VcChecker.install_speculated`), turning the commit's queries
  into cache hits.  Because the shared ``Art`` is only ever mutated by the
  main thread, the single merge lock degenerates to the claim-and-install
  step — workers communicate results exclusively through futures.

* **barrier** — a discovered counterexample or a refinement drains the pool:
  pending futures are cancelled, in-flight ones awaited and *discarded*
  (installing them would pre-warm caches the sequential engine never
  warmed, skewing budget counters), ``apply_refinement`` runs sequentially,
  and :meth:`prime` re-offers the surviving frontier under the grown
  precision.

**Determinism guarantee.**  Verdicts, precisions, refinement pivots, node
ids and ``post_decisions`` are bit-identical to the sequential engine, for
every strategy and refiner: the commit path *is* the sequential algorithm —
workers only pre-compute answers the commit would have computed itself, and
both decide each ``(state, transition, predicate)`` triple by the same
deterministic procedure.  Speculation can be wasted (an obligation pruned by
coverage, a stale epoch) but never wrong, and never observable in the
result.  Budget fidelity: each installed verdict counts as one
``num_triple_checks`` on the shared checker — the same price the sequential
engine pays — so ``max_solver_calls`` budgets trip at the same point.

The speedup comes from latency hiding: while the main thread commits one
obligation, workers are already deciding the next ones.  With the CPython
GIL, wall-clock gains on a single core require the solver work to release
the interpreter (I/O, sleeps, or future C-level solving); on multi-core
interpreters and for the process backend the shards run truly concurrently.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Sequence

from ..logic.formulas import Formula
from ..smt.vcgen import VcChecker
from .predabs import Art, ArtNode, Precision, split_frame_predicates

__all__ = ["PARALLEL_BACKENDS", "SpeculativePool"]

#: Supported worker backends.  ``thread`` shards the checker per worker
#: thread (cheap, shares hash-consed formulas under the intern lock);
#: ``process`` ships pickled obligations to worker processes, each with its
#: own interpreter and checker (no GIL, higher per-obligation cost).
PARALLEL_BACKENDS = ("thread", "process")


# ----------------------------------------------------------------------
# Process backend plumbing (module level: must be picklable by name)
# ----------------------------------------------------------------------
_PROCESS_SHARD: Optional[VcChecker] = None


def _init_process_shard(settings: dict) -> None:
    global _PROCESS_SHARD
    _PROCESS_SHARD = VcChecker(**settings)


def _process_speculate(
    state: frozenset, transition, predicates: tuple
) -> tuple[bool, ...]:
    """Worker-process task: decide one predicate chunk on the process shard.

    Formulas and transitions re-intern on unpickling (``__reduce__``), and
    only booleans travel back — the parent zips them with its own predicate
    objects, so no formula identity ever crosses the process boundary.
    """
    assert _PROCESS_SHARD is not None
    return _speculate(_PROCESS_SHARD, state, transition, predicates)


def _speculate(
    shard: VcChecker, state: frozenset, transition, predicates: Sequence[Formula]
) -> tuple[bool, ...]:
    """Decide one chunk of an obligation's post family on ``shard``.

    Verdicts depend only on the ``(state, transition, predicate)`` triple —
    never on which shard decides them or how the family was chunked — so
    the answers are bit-identical to the commit path's own oracle.
    """
    verdicts = shard.post_all_predicates(state, transition, predicates)
    return tuple(verdicts[predicate] for predicate in predicates)


class SpeculativePool:
    """A worker pool that pre-decides frontier obligations on checker shards.

    Attach to a tree by setting ``art.speculator = pool`` and calling
    :meth:`prime`; detach (and release worker solvers) with
    :meth:`shutdown`.  All public methods are main-thread-only — worker
    threads touch nothing but their own shard and the future they resolve.
    """

    def __init__(
        self,
        jobs: int,
        checker: VcChecker,
        backend: str = "thread",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; expected one of "
                f"{PARALLEL_BACKENDS}"
            )
        self.jobs = jobs
        self.backend = backend
        self._checker = checker
        self._shard_settings = {
            "integer_mode": checker.solver.integer_mode,
            "bb_limit": checker.solver.bb_limit,
            "max_cache_entries": checker.max_cache_entries,
            "batched_posts": checker.batched_posts,
        }
        self._precision: Optional[Precision] = None
        #: Claimable speculation, keyed by ``(state, transition)``:
        #: ``key -> ((future, chunk-predicates), ...)`` — one entry per
        #: column chunk of the obligation's post family.
        self._futures: dict[
            tuple, tuple[tuple[Future, tuple[Formula, ...]], ...]
        ] = {}
        self._executor = None
        # Thread backend: one lazily created shard per worker thread.
        self._local = threading.local()
        self._shards: list[VcChecker] = []
        self._shards_lock = threading.Lock()
        # Counters (main-thread-only mutation).
        self.offered = 0
        self.chunks = 0
        self.deduplicated = 0
        self.installed = 0
        self.missed = 0
        self.wasted = 0
        self.failed = 0

    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-spec"
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_init_process_shard,
                    initargs=(self._shard_settings,),
                )
        return self._executor

    def _thread_shard(self) -> VcChecker:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = VcChecker(**self._shard_settings)
            self._local.shard = shard
            with self._shards_lock:
                self._shards.append(shard)
        return shard

    def _thread_speculate(self, state, transition, predicates):
        return _speculate(self._thread_shard(), state, transition, predicates)

    # ------------------------------------------------------------------
    # Main-thread protocol
    # ------------------------------------------------------------------
    def set_precision(self, precision: Precision) -> None:
        """The live precision offers read their predicate lists from."""
        self._precision = precision

    def offer(self, node: ArtNode, transition) -> None:
        """Speculate one obligation (called as it enters the frontier).

        Captures every input immutably at offer time and column-shards the
        frame-filtered predicate family into up to ``jobs`` chunks, one
        future each.  An obligation whose family is empty (nothing for the
        oracle to decide) is not offered; duplicate keys (the same abstract
        state re-offered after an epoch bump) reuse the existing futures.
        """
        if self._precision is None:
            return
        key = (node.state, transition)
        if key in self._futures:
            self.deduplicated += 1
            return
        predicates = tuple(
            split_frame_predicates(
                node.state,
                transition,
                self._precision.predicates_at(transition.target),
            )[1]
        )
        if not predicates:
            return
        task = (
            self._thread_speculate if self.backend == "thread" else _process_speculate
        )
        executor = self._ensure_executor()
        shard_count = min(self.jobs, len(predicates))
        entries = []
        for start in range(shard_count):
            chunk = predicates[start::shard_count]
            entries.append(
                (executor.submit(task, node.state, transition, chunk), chunk)
            )
        self._futures[key] = tuple(entries)
        self.offered += 1
        self.chunks += len(entries)

    def install(self, state: frozenset, transition) -> bool:
        """Claim an obligation's speculation and merge it into the checker.

        Returns ``True`` when verdicts were installed.  The edge verdict is
        decided here on the shared checker — the identical query (and the
        identical budget charge) the commit was about to make, so its own
        call becomes a cache hit.  An infeasible edge discards the chunks
        unmerged: the commit never asks for those posts, and installing
        them would pre-warm the memo beyond what the sequential engine
        pays.  On a feasible edge every chunk is awaited — queued chunks
        included, so the shards (not the main thread) absorb the decide
        latency; that wait is the straggling-worker window the
        ``slow-post`` fault exercises.
        """
        entries = self._futures.pop((state, transition), None)
        if entries is None:
            self.missed += 1
            return False
        if not self._checker.edge_feasible(state, transition):
            self._discard(entries)
            self.wasted += 1
            return False
        merged = False
        for future, chunk in entries:
            try:
                verdict_bits = future.result()
            except Exception:
                # A worker failure is never fatal: the commit just decides
                # the chunk inline.  (Process backend: a dead worker or an
                # unpicklable edge.)
                self.failed += 1
                continue
            self._checker.install_speculated(
                state, transition, None, dict(zip(chunk, verdict_bits))
            )
            merged = True
        if merged:
            self.installed += 1
        return merged

    def _discard(self, entries) -> None:
        for future, _ in entries:
            if not future.cancel():
                try:
                    future.result()
                except Exception:
                    self.failed += 1

    def drain(self) -> None:
        """The refinement/counterexample barrier: cancel or wait out workers.

        In-flight results are discarded rather than installed — installing
        work the sequential engine never requested would pre-warm its memo
        and skew the budget counters the two modes are proven equal on.
        """
        for entries in self._futures.values():
            self._discard(entries)
        self.wasted += len(self._futures)
        self._futures.clear()

    def prime(self, art: Art) -> None:
        """(Re-)offer every still-valid pending obligation of ``art``.

        Called when the pool is attached and after each refinement barrier:
        the frontier survives refinement repair, but its speculation was
        drained, so the pipeline restarts here.
        """
        for node, transition, epoch in art.frontier.pending():
            if node.removed or node.covered_by is not None or epoch != node.epoch:
                continue
            self.offer(node, transition)

    def shutdown(self) -> None:
        """Drain and release the workers (and their solver shards)."""
        self.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """Pool counters plus aggregated shard solver counters."""
        stats = {
            "backend": self.backend,
            "jobs": self.jobs,
            "offered": self.offered,
            "chunks": self.chunks,
            "deduplicated": self.deduplicated,
            "installed": self.installed,
            "missed": self.missed,
            "wasted": self.wasted,
            "failed": self.failed,
            "shards": len(self._shards),
        }
        if self._shards:
            aggregate: dict[str, float] = {}
            for shard in self._shards:
                for key, value in shard.statistics().items():
                    if isinstance(value, (int, float)):
                        aggregate[key] = aggregate.get(key, 0) + value
            stats["shard_totals"] = {
                key: round(value, 6) if isinstance(value, float) else value
                for key, value in sorted(aggregate.items())
            }
        return stats
