"""Path programs (Section 3 of the paper).

Given a program ``P`` and an error path ``pi``, the path program ``P[pi]`` is
the counterexample object used for refinement: it contains one location per
path position, the transitions of the path, and — at the position where each
*nested block* of the path is exited — a "hatted" copy of that block through
which the path program can iterate the block arbitrarily often.  ``P[pi]``
therefore represents the whole family of error paths obtained from ``pi`` by
unwinding its loops, while using no transition that does not occur in ``pi``.

The nested blocks of a path are recovered by structurally parsing the
sequence of visited locations: the outermost repeated location delimits a
block occurrence; its iterations are delimited by the repeats of that
location and are parsed recursively.  On the example of Figure 4 this
produces exactly the block structure and transition set printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..lang.cfg import Location, Program, Transition
from ..lang.commands import Skip

__all__ = ["Block", "PathProgram", "nested_blocks", "build_path_program"]


@dataclass(frozen=True)
class Block:
    """A nested block of an error path.

    ``start``/``end`` are path positions (indices into the location sequence);
    ``end`` is the last revisit of the block's header, which is where the
    hatted copy is attached.  ``locations`` is the set of program locations
    the block spans.
    """

    header: Location
    start: int
    end: int
    locations: frozenset[Location]

    def __str__(self) -> str:
        names = ", ".join(sorted(l.name for l in self.locations))
        return f"Block({self.header}, [{self.start}..{self.end}], {{{names}}})"


@dataclass
class PathProgram:
    """The path program ``P[pi]`` together with its provenance."""

    program: Program
    original: Program
    path: tuple[Transition, ...]
    blocks: tuple[Block, ...]
    #: Maps every path-program location back to the original location.
    origin: dict[Location, Location] = field(default_factory=dict)

    def locations_of(self, original_location: Location) -> list[Location]:
        """Path-program locations corresponding to an original location."""
        return [pp for pp, orig in self.origin.items() if orig == original_location]


# ----------------------------------------------------------------------
# Nested-block analysis
# ----------------------------------------------------------------------
def nested_blocks(locations: Sequence[Location]) -> list[Block]:
    """The nested blocks of a location sequence (recursively parsed)."""
    blocks: list[Block] = []
    _parse_blocks(locations, 0, len(locations) - 1, blocks)
    blocks.sort(key=lambda b: (b.start, -(b.end - b.start)))
    return blocks


def _parse_blocks(
    locations: Sequence[Location], start: int, end: int, out: list[Block]
) -> None:
    """Parse positions ``[start..end]`` for block occurrences."""
    position = start
    while position <= end:
        header = locations[position]
        occurrences = [
            p for p in range(position, end + 1) if locations[p] == header
        ]
        if len(occurrences) < 2:
            position += 1
            continue
        last = occurrences[-1]
        block_locations = frozenset(locations[position : last + 1])
        out.append(Block(header, position, last, block_locations))
        # Parse each iteration's interior separately: the second occurrence of
        # the header inside another iteration of an enclosing loop is *not*
        # part of this block occurrence.
        for first, second in zip(occurrences, occurrences[1:]):
            _parse_blocks(locations, first + 1, second - 1, out)
        position = last + 1


# ----------------------------------------------------------------------
# Path-program construction
# ----------------------------------------------------------------------
def build_path_program(program: Program, path: Sequence[Transition]) -> PathProgram:
    """Construct ``P[pi]`` for an error path ``pi`` of ``program``."""
    if not path:
        raise ValueError("cannot build a path program from an empty path")
    if path[0].source != program.initial:
        raise ValueError("error path must start at the initial location")

    locations = [path[0].source] + [t.target for t in path]
    blocks = nested_blocks(locations)
    block_exit: dict[int, Block] = {}
    for block in blocks:
        # At a shared exit position the maximal (outermost) block wins.
        existing = block_exit.get(block.end)
        if existing is None or len(block.locations) > len(existing.locations):
            block_exit[block.end] = block

    #: transitions of the path, deduplicated (T.pi in the paper)
    path_transitions: list[Transition] = []
    seen: set[tuple] = set()
    for transition in path:
        key = (transition.source, transition.commands, transition.target)
        if key not in seen:
            seen.add(key)
            path_transitions.append(transition)

    def plain(index: int) -> Location:
        return Location(f"{locations[index].name}#{index}")

    def hatted(original: Location, index: int) -> Location:
        return Location(f"{original.name}#{index}^")

    origin: dict[Location, Location] = {}
    new_locations: list[Location] = []
    new_transitions: list[Transition] = []

    for index, location in enumerate(locations):
        pp_location = plain(index)
        new_locations.append(pp_location)
        origin[pp_location] = location

    # The transitions of the path itself.
    for index, transition in enumerate(path):
        new_transitions.append(
            Transition(plain(index), transition.commands, plain(index + 1))
        )

    # Hatted block copies at block-exit positions.
    for index, block in sorted(block_exit.items()):
        anchor = plain(index)
        bridge_commands = (Skip(),)
        hat_of: dict[Location, Location] = {}
        for location in sorted(block.locations, key=lambda l: l.name):
            hat = hatted(location, index)
            hat_of[location] = hat
            new_locations.append(hat)
            origin[hat] = location
        new_transitions.append(Transition(anchor, bridge_commands, hat_of[locations[index]]))
        new_transitions.append(Transition(hat_of[locations[index]], bridge_commands, anchor))
        for transition in path_transitions:
            if transition.source in block.locations and transition.target in block.locations:
                new_transitions.append(
                    Transition(
                        hat_of[transition.source],
                        transition.commands,
                        hat_of[transition.target],
                    )
                )

    initial = plain(0)
    error = plain(len(locations) - 1)
    pp = Program(
        name=f"{program.name}[pi]",
        variables=program.variables,
        arrays=program.arrays,
        locations=tuple(new_locations),
        initial=initial,
        error=error,
        transitions=tuple(new_transitions),
    )
    return PathProgram(pp, program, tuple(path), tuple(blocks), origin)
