"""The typed task/session API — the stable public surface of the verifier.

Three first-class objects replace the historical kwarg funnel:

* :class:`VerifierOptions` — every knob of a verification run as one frozen,
  validated dataclass, with ``to_dict``/``from_dict`` round-tripping and
  TOML/JSON file loading (``repro verify --options opts.toml``).
* :class:`VerificationTask` — *what* to verify: program source/AST/transition
  system, a task name, per-task option overrides, and an optional seed
  :class:`~repro.core.predabs.Precision`.
* :class:`Session` — *how* to run many tasks: owns the shared hash-consed
  :class:`~repro.smt.vcgen.VcChecker` (abstract-post verdicts are
  precision-independent, so tasks reuse each other's solver work), a
  :class:`PrecisionStore` keyed by program fingerprint, and a scheduler that
  runs tasks sequentially or on a process pool — **warm-starting** each task
  from precisions discovered earlier.  Predicates are picklable (they
  re-intern on load), so warm-start seeds travel *into* pool workers and
  discovered precisions travel *back*, including the portfolio
  process-race winner's.

Results come back as the unified :class:`~repro.core.engine.Result`
hierarchy, whose :meth:`~repro.core.engine.Result.to_json` document
(versioned by :data:`~repro.core.engine.RESULT_SCHEMA_VERSION`) is shared by
the CLI, :func:`~repro.core.engine.verify_many` and the benchmark harness.

The historical entry points (:func:`repro.verify`,
:class:`~repro.core.cegar.CegarLoop`, ``verify_many``) are thin
compatibility wrappers over this module.

Quickstart::

    from repro import Session, VerifierOptions

    session = Session(VerifierOptions(refiner="path-invariant"))
    first = session.run("forward")            # cold: discovers the invariant
    again = session.run("forward")            # warm: strictly less work
    assert first.is_safe and again.is_safe
    assert again.post_decisions() < first.post_decisions()
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

try:  # advisory file locking for the disk-backed store (POSIX only)
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

from ..lang.ast import FunctionDef
from ..lang.cfg import Program, build_program, program_from_source
from ..logic.formulas import Formula
from ..smt.vcgen import VcChecker
from . import faults as _faults
from .supervision import RetryPolicy, Supervisor
from .engine import (
    PORTFOLIO_MODES,
    PORTFOLIO_REFINERS,
    RESULT_SCHEMA_VERSION,
    Budget,
    PortfolioEngine,
    Result,
    Verdict,
    VerificationEngine,
    _run_batch_task,
    error_doc,
)
from .predabs import FRONTIER_NAMES, Precision
from .refiners import Refiner

__all__ = [
    "VerifierOptions",
    "VerificationTask",
    "PrecisionStore",
    "Session",
    "program_fingerprint",
    "RESULT_SCHEMA_VERSION",
]


def program_fingerprint(program: Program) -> str:
    """A stable identity of a transition system, portable across processes.

    Two parses of the same source yield the same fingerprint, which is what
    lets a :class:`PrecisionStore` recognise a program it has seen before —
    in another task, another session epoch, or another process.  The
    transitions are hashed in *sorted rendering order*: the CFG builder
    emits them in an order that varies with Python's per-process hash seed,
    so the raw list order would break exactly the cross-process recognition
    a disk-backed store exists for.  Location names and the rendering itself
    are deterministic.
    """
    digest = hashlib.sha256()
    digest.update(program.name.encode())
    digest.update(b"|v:" + ",".join(program.variables).encode())
    digest.update(b"|a:" + ",".join(program.arrays).encode())
    digest.update(b"|i:" + program.initial.name.encode())
    digest.update(b"|e:" + program.error.name.encode())
    for rendered in sorted(str(transition) for transition in program.transitions):
        digest.update(b"|t:" + rendered.encode())
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Options
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VerifierOptions:
    """Every knob of a verification run, validated at construction.

    Instances are frozen (safe to share across tasks and sessions) and
    round-trip losslessly through :meth:`to_dict`/:meth:`from_dict`; the CLI
    loads them from TOML or JSON files via :meth:`from_file`.
    """

    #: Refinement strategy: ``path-invariant`` (the paper), ``path-formula``
    #: (the BLAST-style baseline) or ``portfolio`` (race both).
    refiner: str = "path-invariant"
    #: ART exploration order: ``bfs``, ``dfs`` or ``error-distance``.
    strategy: str = "bfs"
    #: CEGAR iteration budget.
    max_refinements: int = 25
    #: Cumulative ART node budget (``None`` = unbounded).
    max_nodes: Optional[int] = 4000
    #: Wall-clock budget in seconds (``None`` = unbounded).
    max_seconds: Optional[float] = None
    #: Checker triple-check budget (``None`` = unbounded).
    max_solver_calls: Optional[int] = None
    #: Keep one persistent ART across refinements (``False`` = the
    #: restart-the-world baseline).
    incremental: bool = True
    #: With ``refiner="portfolio"``: ``auto``, ``process`` or ``round-robin``.
    portfolio_mode: str = "auto"
    #: The refiners a portfolio races.
    portfolio_refiners: tuple[str, ...] = PORTFOLIO_REFINERS
    #: Refinements granted per round-robin slice.
    slice_refinements: int = 2
    #: Optional wall-clock cap per round-robin slice.
    slice_seconds: Optional[float] = None
    #: Sliding window of the divergence monitor (>= 2).
    monitor_window: int = 3
    #: Cap on predicates tracked per location (``None`` = unbounded); bounds
    #: the path-formula refiner's array-predicate flood.
    max_predicates_per_location: Optional[int] = None
    #: Let a :class:`Session` seed tasks from previously discovered
    #: precisions.  Seeding never changes a decided verdict (predicates only
    #: refine the abstraction); it removes refinement rounds already paid
    #: for.
    warm_start: bool = True
    #: Cap on entries of the shared :class:`~repro.smt.vcgen.VcChecker`'s
    #: memo tables (triple/edge/post verdicts and prepared solver contexts),
    #: evicted least-recently-used.  ``None`` (the default) keeps the
    #: historical unbounded growth; set it for long-lived service sessions.
    max_cache_entries: Optional[int] = None
    #: Per-task wall-clock bound for supervised pool batches: a worker that
    #: exceeds it is declared hung and killed, and the task is retried
    #: (``None`` = no supervision timeout).
    task_timeout: Optional[float] = None
    #: How many times a supervised pool task is retried after a charged
    #: failure (worker crash / hang / infrastructure error) before it
    #: settles as verdict ``unknown`` with a structured ``failure`` record.
    task_retries: int = 2
    #: Halve a task's resource budgets on each supervised retry.  Off by
    #: default: a degraded retry may legitimately return a weaker verdict.
    degrade_on_retry: bool = False
    #: Worker count for intra-run parallel ART exploration (``1`` = strictly
    #: sequential, no pool).  Verdicts, precisions and post-decision counts
    #: are bit-identical for every value — workers only pre-compute solver
    #: verdicts the sequential commit path then consumes as cache hits
    #: (:mod:`repro.core.parallel`).  Distinct from the *batch* ``jobs=`` of
    #: :meth:`Session.run_many`, which parallelises across tasks.
    jobs: int = 1

    def __post_init__(self) -> None:
        from .verifier import ENGINE_REFINER_NAMES, REFINER_NAMES

        if not isinstance(self.portfolio_refiners, tuple):
            object.__setattr__(
                self, "portfolio_refiners", tuple(self.portfolio_refiners)
            )
        if self.refiner not in ENGINE_REFINER_NAMES:
            raise ValueError(
                f"unknown refiner {self.refiner!r}; expected one of {ENGINE_REFINER_NAMES}"
            )
        if self.strategy not in FRONTIER_NAMES:
            raise ValueError(
                f"unknown exploration strategy {self.strategy!r}; "
                f"expected one of {FRONTIER_NAMES}"
            )
        if self.portfolio_mode not in PORTFOLIO_MODES:
            raise ValueError(
                f"unknown portfolio mode {self.portfolio_mode!r}; "
                f"expected one of {PORTFOLIO_MODES}"
            )
        if not self.portfolio_refiners:
            raise ValueError("portfolio_refiners must name at least one refiner")
        for name in self.portfolio_refiners:
            if name not in REFINER_NAMES:
                raise ValueError(
                    f"unknown portfolio refiner {name!r}; expected one of {REFINER_NAMES}"
                )
        if self.max_refinements < 0:
            raise ValueError(f"max_refinements must be >= 0, got {self.max_refinements}")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1 or None, got {self.max_nodes}")
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ValueError(f"max_seconds must be >= 0 or None, got {self.max_seconds}")
        if self.max_solver_calls is not None and self.max_solver_calls < 1:
            raise ValueError(
                f"max_solver_calls must be >= 1 or None, got {self.max_solver_calls}"
            )
        if self.slice_refinements < 1:
            raise ValueError(
                f"slice_refinements must be >= 1, got {self.slice_refinements}"
            )
        if self.slice_seconds is not None and self.slice_seconds <= 0:
            raise ValueError(
                f"slice_seconds must be > 0 or None, got {self.slice_seconds}"
            )
        if self.monitor_window < 2:
            raise ValueError(f"monitor_window must be >= 2, got {self.monitor_window}")
        if (
            self.max_predicates_per_location is not None
            and self.max_predicates_per_location < 1
        ):
            raise ValueError(
                "max_predicates_per_location must be >= 1 or None, "
                f"got {self.max_predicates_per_location}"
            )
        if self.max_cache_entries is not None and self.max_cache_entries < 1:
            raise ValueError(
                f"max_cache_entries must be >= 1 or None, got {self.max_cache_entries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be > 0 or None, got {self.task_timeout}"
            )
        if self.task_retries < 0:
            raise ValueError(f"task_retries must be >= 0, got {self.task_retries}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    # ------------------------------------------------------------------
    def budget(self) -> Budget:
        """The engine-level :class:`Budget` these options describe."""
        return Budget(
            max_refinements=self.max_refinements,
            max_nodes=self.max_nodes,
            max_seconds=self.max_seconds,
            max_solver_calls=self.max_solver_calls,
        )

    def replace(self, **changes: Any) -> "VerifierOptions":
        """A copy with ``changes`` applied (validated like a fresh instance)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """A JSON/TOML-safe dict; ``from_dict`` inverts it exactly."""
        payload = dataclasses.asdict(self)
        payload["portfolio_refiners"] = list(self.portfolio_refiners)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerifierOptions":
        """Build options from a mapping; unknown keys are an error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown option keys {unknown}; expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "VerifierOptions":
        """Load options from a ``.toml`` or ``.json`` file.

        TOML has no null, so optional knobs (``max_seconds``,
        ``max_predicates_per_location``, ...) are simply omitted there.
        """
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError as error:  # pragma: no cover - Python 3.10
                raise ValueError(
                    f"{path}: TOML options files need Python 3.11+ "
                    "(tomllib); use a .json file instead"
                ) from error

            data = tomllib.loads(text)
        else:
            data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: expected a table/object of options")
        return cls.from_dict(data)


def resolve_legacy_options(
    entry: str,
    options: Optional[VerifierOptions],
    legacy: Mapping[str, Any],
    build: Callable[[], VerifierOptions],
) -> VerifierOptions:
    """The shared deprecation shim behind ``verify``/``verify_many``.

    ``options=`` and the superseded tuning kwargs are mutually exclusive;
    passing any of the latter emits one ``DeprecationWarning`` naming the
    entry point, then ``build()`` translates them into options.
    """
    if options is not None:
        if legacy:
            raise ValueError(
                "pass either options= or the legacy keyword arguments, not both "
                f"(got options and {sorted(legacy)})"
            )
        return options
    if legacy:
        warnings.warn(
            f"{entry}({', '.join(sorted(legacy))}=...) keyword tuning is "
            "deprecated; pass options=VerifierOptions(...) or use repro.Session",
            DeprecationWarning,
            stacklevel=3,  # resolve_legacy_options -> shim -> caller
        )
    return build()


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------
@dataclass
class VerificationTask:
    """One unit of verification work: a program plus how to verify it.

    ``program`` may be mini-C source text, a parsed
    :class:`~repro.lang.ast.FunctionDef`, or a built
    :class:`~repro.lang.cfg.Program`.  ``options`` overrides the session's
    defaults for this task only.  ``initial_precision`` seeds the abstraction
    explicitly (a session otherwise seeds from its own store when
    ``warm_start`` is on).  ``refiner`` optionally pins a concrete
    :class:`~repro.core.refiners.Refiner` *instance* — an in-process escape
    hatch that never crosses a pool (named refiners in ``options`` do).
    """

    program: Union[str, FunctionDef, Program]
    name: Optional[str] = None
    options: Optional[VerifierOptions] = None
    initial_precision: Optional[Precision] = None
    refiner: Optional[Refiner] = None
    _resolved: Optional[Program] = field(
        default=None, init=False, repr=False, compare=False
    )
    _fingerprint: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def source(self) -> Optional[str]:
        """The raw source text, when the task was built from one."""
        return self.program if isinstance(self.program, str) else None

    def resolved(self) -> Program:
        """The transition system (parsed/built once, then cached)."""
        if self._resolved is None:
            program = self.program
            if isinstance(program, str):
                program = program_from_source(program)
            elif isinstance(program, FunctionDef):
                program = build_program(program)
            self._resolved = program
            if self.name is None:
                self.name = program.name
        return self._resolved

    @property
    def fingerprint(self) -> str:
        """The resolved program's :func:`program_fingerprint` (cached)."""
        if self._fingerprint is None:
            self._fingerprint = program_fingerprint(self.resolved())
        return self._fingerprint


# ----------------------------------------------------------------------
# The precision store
# ----------------------------------------------------------------------
#: Framing of one journal record: magic, 4-byte big-endian payload length,
#: then the pickled ``(fingerprint, payload)`` pair.  A torn tail (partial
#: record from a crashed writer) is detected by the framing and dropped.
_JOURNAL_MAGIC = b"RJN1"

#: Fold the journal into a fresh snapshot once it grows past this.
JOURNAL_COMPACT_BYTES = 256 * 1024


class PrecisionStore:
    """Discovered predicates, keyed by program fingerprint.

    Internally location-*name* indexed (names are stable across parses and
    processes, unlike :class:`~repro.lang.cfg.Location` identities), merging
    monotonically: re-verifying a program only ever adds predicates.
    Payloads are picklable, so a session can ship them into pool workers and
    merge what comes back — and, with ``path`` set, the whole map survives
    *process lifetimes*: the store loads (merges) the file's contents at
    construction and writes them back so a service restart or a later CI
    shard warm-starts from everything earlier runs discovered.  Formulas
    pickle via ``__reduce__`` and re-intern on load.

    The disk form is **crash-safe and multi-session-safe**:

    * every write happens under an advisory ``flock`` on a *stable* sibling
      ``<name>.lock`` file (never deleted or replaced — locking the snapshot
      itself would race its own atomic-replace inode swap);
    * :meth:`bank` appends one fsynced record to an append-only sibling
      ``<name>.journal`` instead of rewriting the snapshot, so concurrent
      sessions interleave records rather than overwrite each other;
    * :meth:`save` *merges on write*: under the lock it re-reads whatever is
      on disk (snapshot plus journal — including other sessions' records),
      folds it into memory, then atomically replaces the snapshot and
      truncates the journal.  Two sessions banking concurrently both land
      their predicates; last-writer-wins is gone;
    * a corrupted or truncated snapshot (torn write, bad disk) is
      **quarantined** — renamed to ``<name>.corrupt``, a ``RuntimeWarning``
      issued — and the store starts cold instead of crashing the session;
      a torn journal tail is silently dropped (the framing detects it).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._store: dict[str, dict[str, set[Formula]]] = {}
        self.path = Path(path) if path is not None else None
        #: Snapshot files quarantined (renamed ``*.corrupt``) by this store.
        self.quarantined: list[Path] = []
        if self.path is not None:
            self._load_own()

    # ------------------------------------------------------------------
    # Disk persistence
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        """The append-only merge journal next to the snapshot."""
        assert self.path is not None
        return self.path.with_name(self.path.name + ".journal")

    @property
    def lock_path(self) -> Path:
        """The stable advisory-lock file next to the snapshot."""
        assert self.path is not None
        return self.path.with_name(self.path.name + ".lock")

    @staticmethod
    @contextlib.contextmanager
    def _locked_path(target: Path) -> Iterator[None]:
        """Hold the advisory lock guarding ``target`` and its journal.

        The lock lives on a separate, stable file: ``flock`` is per-inode,
        and :meth:`save` replaces the snapshot's inode, so locking the
        snapshot itself would let two processes each hold "the" lock.
        No-op where ``fcntl`` is unavailable (Windows): single-process
        correctness is unaffected, only cross-process exclusion is lost.
        """
        if fcntl is None:  # pragma: no cover - Windows
            yield
            return
        lock = target.with_name(target.name + ".lock")
        lock.parent.mkdir(parents=True, exist_ok=True)
        with open(lock, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _load_own(self) -> int:
        """Load this store's own snapshot + journal (quarantining, not raising)."""
        path = self.path
        assert path is not None
        if not (path.exists() or self.journal_path.exists()):
            return 0  # nothing on disk: create no files at construction
        with self._locked_path(path):
            added = self._read_snapshot_with_quarantine(path)
            added += self._replay_journal(self.journal_path)
        return added

    def _read_snapshot_with_quarantine(self, path: Path) -> int:
        """Read the own snapshot; quarantine it if it will not parse.

        The fault-injection ``store-load`` site fires here (keyed by the
        path and its basename): ``corrupt-store`` truncates the file before
        the read, ``flaky-pickle`` makes one read raise transiently.  One
        retry distinguishes the two — a transient error recovers, a
        corrupted file fails twice and is quarantined.
        """
        if not path.exists():
            return 0
        last_error: Optional[Exception] = None
        for attempt in range(2):
            spec = _faults.fire("store-load", (str(path), path.name), attempt)
            try:
                if spec is not None:
                    if spec.kind == "corrupt-store":
                        _faults.corrupt_file(path)
                    elif spec.kind == "flaky-pickle":
                        raise pickle.UnpicklingError("injected flaky pickle read")
                return self.load(path)
            except (ValueError, OSError, EOFError, pickle.UnpicklingError) as error:
                last_error = error
        self._quarantine(path, last_error)
        return 0

    def _quarantine(self, path: Path, error: Optional[Exception]) -> Path:
        """Rename a corrupt snapshot aside and warn; the store starts cold."""
        target = path.with_name(path.name + ".corrupt")
        counter = 0
        while target.exists():
            counter += 1
            target = path.with_name(f"{path.name}.corrupt.{counter}")
        os.replace(path, target)
        self.quarantined.append(target)
        warnings.warn(
            f"{path}: corrupt precision store quarantined to {target.name}; "
            f"starting cold ({error!r})",
            RuntimeWarning,
            stacklevel=4,
        )
        return target

    def _replay_journal(self, journal: Path) -> int:
        """Merge every intact journal record; a torn tail is dropped."""
        if not journal.exists():
            return 0
        try:
            data = journal.read_bytes()
        except OSError:
            return 0
        added, offset = 0, 0
        while offset + 8 <= len(data):
            if data[offset : offset + 4] != _JOURNAL_MAGIC:
                break  # garbage: stop replaying, keep what we have
            length = int.from_bytes(data[offset + 4 : offset + 8], "big")
            end = offset + 8 + length
            if end > len(data):
                break  # torn tail: a crashed writer's partial record
            try:
                fingerprint, payload = pickle.loads(data[offset + 8 : end])
                added += self.merge(fingerprint, payload or {})
            except Exception:
                break
            offset = end
        return added

    def load(self, path: Union[str, Path]) -> int:
        """Merge a saved store file into this one; returns predicates added.

        Loading *merges* (monotonically, like everything else here) rather
        than replacing, so a store can aggregate several files.  A file that
        is not a precision store raises ``ValueError`` — quarantine-and-
        continue applies only to the store's *own* snapshot at construction.
        """
        with open(path, "rb") as handle:
            try:
                payload = pickle.load(handle)
            except Exception as error:
                raise ValueError(
                    f"{path}: not a precision-store file ({error!r})"
                ) from error
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: not a precision-store file")
        added = 0
        for fingerprint, by_name in payload.items():
            added += self.merge(fingerprint, by_name)
        return added

    def bank(self, fingerprint: str) -> Path:
        """Durably land one fingerprint's predicates without a full rewrite.

        Appends a single fsynced record to the journal under the lock —
        concurrent sessions interleave instead of overwriting — then
        compacts (:meth:`save`) when the snapshot does not exist yet or the
        journal has outgrown :data:`JOURNAL_COMPACT_BYTES`.
        """
        if self.path is None:
            raise ValueError("no path: bank() needs a disk-backed store")
        record = pickle.dumps((fingerprint, self.payload(fingerprint) or {}))
        journal = self.journal_path
        with self._locked_path(self.path):
            journal.parent.mkdir(parents=True, exist_ok=True)
            with open(journal, "ab") as handle:
                handle.write(_JOURNAL_MAGIC)
                handle.write(len(record).to_bytes(4, "big"))
                handle.write(record)
                handle.flush()
                os.fsync(handle.fileno())
            journal_size = journal.stat().st_size
            compact = not self.path.exists() or journal_size > JOURNAL_COMPACT_BYTES
        if compact:  # save() takes the lock itself: do not hold it here
            self.save()
        return self.path

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Merge-on-write the store to ``path`` (default: its own ``path``).

        Under the advisory lock: re-read whatever is on disk (another
        session may have written since we loaded; a corrupt snapshot is
        quarantined), replay the journal, fold both into memory, then
        atomically replace the snapshot (temp file + ``os.replace``) and
        truncate the journal.  The result is the *union* of both sessions'
        predicates — the concurrent-write semantics the monotone store
        always promised.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path: pass save(path) or construct with path=")
        target.parent.mkdir(parents=True, exist_ok=True)
        own = self.path is not None and target == self.path
        with self._locked_path(target):
            if target.exists():
                try:
                    self.load(target)  # merge-on-write: fold in others' work
                except (ValueError, OSError) as error:
                    self._quarantine(target, error)
            if own:
                self._replay_journal(self.journal_path)
            payload = {
                fingerprint: self.payload(fingerprint)
                for fingerprint in self.fingerprints()
                if self.payload(fingerprint)
            }
            temp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
            try:
                with open(temp, "wb") as handle:
                    pickle.dump(payload, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp, target)
            finally:
                if temp.exists():  # only on a failed dump; os.replace consumed it
                    temp.unlink()
            if own and self.journal_path.exists():
                self.journal_path.unlink()
        return target

    # ------------------------------------------------------------------
    def merge(
        self, fingerprint: str, by_name: Mapping[str, Iterable[Formula]]
    ) -> int:
        """Merge a location-name payload; returns how many predicates are new."""
        entry = self._store.setdefault(fingerprint, {})
        added = 0
        for location, predicates in by_name.items():
            bucket = entry.setdefault(location, set())
            for predicate in predicates:
                if predicate not in bucket:
                    bucket.add(predicate)
                    added += 1
        return added

    def update(self, fingerprint: str, precision: Precision) -> int:
        """Merge a run's discovered :class:`Precision` into the store."""
        return self.merge(fingerprint, precision.by_location_name())

    def payload(self, fingerprint: str) -> Optional[dict[str, tuple[Formula, ...]]]:
        """The stored predicates as a picklable location-name payload."""
        entry = self._store.get(fingerprint)
        if not entry:
            return None
        return {
            location: tuple(sorted(predicates, key=str))
            for location, predicates in entry.items()
            if predicates
        }

    def seed_for(
        self,
        fingerprint: str,
        program: Program,
        max_per_location: Optional[int] = None,
    ) -> Optional[Precision]:
        """A :class:`Precision` bound to ``program``'s locations, or ``None``."""
        payload = self.payload(fingerprint)
        if payload is None:
            return None
        return Precision.from_location_names(program, payload, max_per_location)

    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        return sorted(self._store)

    def total_predicates(self, fingerprint: str) -> int:
        return sum(len(p) for p in self._store.get(fingerprint, {}).values())

    def __contains__(self, fingerprint: str) -> bool:
        return bool(self._store.get(fingerprint))

    def __len__(self) -> int:
        return len(self._store)


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class Session:
    """A reusable verification context: shared checker, precisions, scheduler.

    One session amortises everything that outlives a single task:

    * the hash-consed :class:`~repro.smt.vcgen.VcChecker` (memoised Hoare
      triples and abstract-post verdicts, shared by every in-process task);
    * the :class:`PrecisionStore` — each decided task's discovered predicates
      are banked under the program's fingerprint, and later tasks on the
      same program **warm-start** from them (strictly fewer abstract-post
      decisions on reruns; a seed can never flip a decided verdict);
    * the scheduler — :meth:`run` executes one task in-process,
      :meth:`run_many` a corpus, sequentially or on a process pool.  Pool
      workers receive warm-start seeds and ship their discovered precisions
      back (predicates pickle and re-intern), so the bank grows even when
      the work happened in another process — including the portfolio
      process-race winner's predicates.
    """

    def __init__(
        self,
        options: Optional[VerifierOptions] = None,
        checker: Optional[VcChecker] = None,
        store: Optional[PrecisionStore] = None,
        store_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.options = options or VerifierOptions()
        if checker is None:
            checker = VcChecker(max_cache_entries=self.options.max_cache_entries)
        elif self.options.max_cache_entries is not None:
            # An explicitly set cap applies to a caller-supplied checker too
            # (matching the pool-worker path); an unset option leaves an
            # externally configured cap alone.
            checker.max_cache_entries = self.options.max_cache_entries
        self.checker = checker
        if store is not None and store_path is not None:
            raise ValueError("pass either store= or store_path=, not both")
        #: With ``store_path`` the precision bank is disk-backed: existing
        #: contents are merged in at construction and every newly banked
        #: predicate triggers an atomic re-save, so warm starts survive a
        #: process restart (see :class:`PrecisionStore`).
        self.store = store if store is not None else PrecisionStore(path=store_path)
        #: Scheduler counters: tasks run, warm starts granted, precisions
        #: banked (see :meth:`statistics`).
        self.tasks_run = 0
        self.warm_starts = 0
        self.predicates_banked = 0
        #: The :class:`~repro.core.supervision.Supervisor` of the most
        #: recent :meth:`run_many` pool batch (``None`` before the first) —
        #: its counters surface in :meth:`statistics` as ``supervision``.
        self.last_supervisor: Optional[Supervisor] = None

    # ------------------------------------------------------------------
    def task(
        self,
        program: Union[str, FunctionDef, Program, VerificationTask],
        name: Optional[str] = None,
        options: Optional[VerifierOptions] = None,
        initial_precision: Optional[Precision] = None,
        refiner: Optional[Refiner] = None,
    ) -> VerificationTask:
        """Normalise anything task-like into a :class:`VerificationTask`.

        A plain string is looked up among the built-in benchmark programs
        first (``session.run("forward")``), then treated as source text.
        """
        if isinstance(program, VerificationTask):
            return program
        if isinstance(program, str):
            from ..lang.programs import PROGRAMS

            if program in PROGRAMS:
                name = name or program
                program = PROGRAMS[program].source
        return VerificationTask(
            program,
            name=name,
            options=options,
            initial_precision=initial_precision,
            refiner=refiner,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        task: Union[str, FunctionDef, Program, VerificationTask],
        **task_kwargs: Any,
    ) -> Result:
        """Run one task in-process and bank its discovered precision."""
        task = self.task(task, **task_kwargs)
        opts = task.options or self.options
        program = task.resolved()
        fingerprint = task.fingerprint
        seed = task.initial_precision
        warm = False
        if seed is None and opts.warm_start:
            seed = self.store.seed_for(
                fingerprint, program, opts.max_predicates_per_location
            )
            warm = seed is not None
        result = self._execute(task, program, opts, seed)
        self.tasks_run += 1
        if warm:
            self.warm_starts += 1
        self._bank_decided(
            fingerprint,
            result.verdict,
            result.precision.by_location_name() if result.precision else None,
        )
        if result.engine_stats is not None:
            result.engine_stats["session"] = self._provenance(
                fingerprint, warm, seed.total_predicates() if seed else 0
            )
        return result

    def _bank_decided(
        self,
        fingerprint: str,
        verdict: Optional[str],
        payload: Optional[Mapping[str, Iterable[Formula]]],
    ) -> None:
        """Bank a run's predicates — decided verdicts only.

        An undecided run's precision is dominated by whatever made it
        diverge (e.g. the path-formula flood); seeding from it would make
        later runs *slower*.  One definition shared by the in-process and
        pool paths, so both bank under exactly the same rule.  A disk-backed
        store is re-saved whenever banking actually added predicates.
        """
        if payload and verdict in (Verdict.SAFE, Verdict.UNSAFE):
            added = self.store.merge(fingerprint, payload)
            self.predicates_banked += added
            if added and self.store.path is not None:
                self.store.bank(fingerprint)

    @staticmethod
    def _provenance(fingerprint: str, warm: bool, seeded: int) -> dict[str, Any]:
        """The ``engine.session`` stamp both scheduling paths attach."""
        return {
            "fingerprint": fingerprint,
            "warm_started": warm,
            "seeded_predicates": seeded,
        }

    def _execute(
        self,
        task: VerificationTask,
        program: Program,
        opts: VerifierOptions,
        seed: Optional[Precision],
    ) -> Result:
        if task.refiner is None and opts.refiner == "portfolio":
            portfolio = PortfolioEngine(
                task.source if task.source is not None else program,
                refiners=opts.portfolio_refiners,
                strategy=opts.strategy,
                budget=opts.budget(),
                incremental=opts.incremental,
                checker=self.checker,
                mode=opts.portfolio_mode,
                slice_refinements=opts.slice_refinements,
                slice_seconds=opts.slice_seconds,
                monitor_window=opts.monitor_window,
                initial_precision=seed,
                max_predicates_per_location=opts.max_predicates_per_location,
            )
            return portfolio.run()
        engine = self._make_engine(program, opts, refiner=task.refiner)
        return engine.run(initial_precision=seed)

    def _make_engine(
        self,
        program: Union[str, FunctionDef, Program],
        opts: VerifierOptions,
        refiner: Optional[Refiner] = None,
        strategy: Any = None,
    ) -> VerificationEngine:
        """One construction path for engines sharing this session's checker."""
        from .verifier import make_refiner

        if refiner is None:
            refiner = make_refiner(opts.refiner, self.checker)
        return VerificationEngine(
            program,
            refiner=refiner,
            checker=self.checker,
            strategy=opts.strategy if strategy is None else strategy,
            budget=opts.budget(),
            incremental=opts.incremental,
            max_predicates_per_location=opts.max_predicates_per_location,
            jobs=opts.jobs,
        )

    # ------------------------------------------------------------------
    def run_many(
        self,
        tasks: Sequence[Union[str, tuple[str, str], dict, VerificationTask]],
        jobs: Optional[int] = None,
    ) -> list[dict[str, Any]]:
        """Verify a corpus; returns one versioned JSON document per task.

        ``jobs=None`` picks ``min(len(tasks), cpu_count)``; ``1`` runs
        sequentially in-process (tasks later in the list then warm-start
        from earlier ones on the same program).  On a pool, seeds reflect
        the store at submit time and every worker ships its discovered
        precision back, so the bank still grows.  The pool requires every
        task to be shippable — if *any* task lacks source text (pre-built
        program) or pins an in-process refiner instance or seed precision,
        the **whole batch** runs sequentially.

        The pool path is **supervised** (see
        :class:`~repro.core.supervision.Supervisor`): tasks are submitted
        as individual futures, worker crashes and hangs are detected and
        retried with backoff (``options.task_retries`` /
        ``options.task_timeout`` / ``options.degrade_on_retry``), a
        repeatedly broken pool degrades to in-process execution, and a task
        that exhausts its retries yields verdict ``unknown`` with a
        structured ``failure`` record — no exception ever escapes to the
        caller, and one bad task never discards its siblings' results.
        """
        normalised = [self._coerce(entry) for entry in tasks]
        if jobs is None:
            jobs = min(len(normalised), os.cpu_count() or 1)
        poolable = jobs > 1 and len(normalised) > 1 and all(
            task.source is not None and task.refiner is None
            and task.initial_precision is None
            for task in normalised
        )
        if poolable:
            # (task, payload, error_doc) per input: a task whose source does
            # not even parse becomes an error doc here instead of aborting
            # the batch (the same isolation the workers give runtime errors).
            prepared: list[tuple[VerificationTask, Optional[dict], Optional[dict]]] = []
            for index, task in enumerate(normalised):
                try:
                    opts = task.options or self.options
                    program = task.resolved()
                    seed = (
                        self.store.payload(task.fingerprint)
                        if opts.warm_start
                        else None
                    )
                    payload = {
                        "name": task.name or program.name,
                        "source": task.source,
                        "refiner": opts.refiner,
                        "strategy": opts.strategy,
                        "budget": vars(opts.budget()),
                        "incremental": opts.incremental,
                        "max_predicates_per_location": opts.max_predicates_per_location,
                        "max_cache_entries": opts.max_cache_entries,
                        "portfolio_refiners": list(opts.portfolio_refiners),
                        "slice_refinements": opts.slice_refinements,
                        "slice_seconds": opts.slice_seconds,
                        "monitor_window": opts.monitor_window,
                        "jobs": opts.jobs,
                        "seed": seed,
                        "ship_precision": True,
                    }
                    prepared.append((task, payload, None))
                except Exception as error:
                    prepared.append(
                        (task, None, error_doc(task.name or f"task{index}", error))
                    )
            payloads = [payload for _, payload, _ in prepared if payload is not None]
            keys = [
                (task.fingerprint,)
                for task, payload, _ in prepared
                if payload is not None
            ]
            # The Supervisor owns every pool failure mode: per-task futures
            # (one worker exception no longer discards the batch), per-task
            # timeouts, crash retries with backoff, and degradation to
            # in-process execution when pools are repeatedly broken or
            # cannot be created at all.  It never raises for a task.
            supervisor = Supervisor(
                worker=_run_batch_task,
                jobs=jobs,
                task_timeout=self.options.task_timeout,
                retry=RetryPolicy(
                    max_retries=self.options.task_retries,
                    degrade=self.options.degrade_on_retry,
                ),
            )
            self.last_supervisor = supervisor
            pool_docs = supervisor.run_batch(payloads, keys=keys)
            results = iter(pool_docs)
            docs = []
            for task, payload, parse_error_doc in prepared:
                self.tasks_run += 1
                if payload is None:
                    docs.append(parse_error_doc)
                    continue
                doc = next(results)
                if doc.get("verdict") == "error" or doc.get("failure"):
                    # The worker crashed/errored before running warm: keep
                    # the counters honest and the doc's key set lean.
                    doc.pop("_precision", None)
                    docs.append(doc)
                    continue
                if payload["seed"]:
                    self.warm_starts += 1
                self._bank_decided(
                    task.fingerprint, doc.get("verdict"), doc.pop("_precision", None)
                )
                doc.setdefault("engine", {})
                if isinstance(doc["engine"], dict):
                    doc["engine"]["session"] = self._provenance(
                        task.fingerprint,
                        bool(payload["seed"]),
                        sum(
                            len(preds)
                            for preds in (payload["seed"] or {}).values()
                        ),
                    )
                docs.append(doc)
            return docs
        docs = []
        for index, task in enumerate(normalised):
            # Per-task isolation, matching the pool workers: one malformed
            # source must yield an error doc, not abort the whole batch.
            before = self.tasks_run
            try:
                docs.append(self.run(task).to_json(name=task.name))
            except Exception as error:
                if self.tasks_run == before:
                    # run() raised before its own accounting (parse failure):
                    # the task still happened, keep the counters path-agnostic.
                    self.tasks_run += 1
                docs.append(error_doc(task.name or f"task{index}", error))
        return docs

    def _coerce(self, entry: Any) -> VerificationTask:
        if isinstance(entry, VerificationTask):
            return entry
        if isinstance(entry, tuple):
            name, source = entry
            return VerificationTask(source, name=name)
        if isinstance(entry, dict):
            options = entry.get("options")
            if isinstance(options, Mapping):
                options = VerifierOptions.from_dict(options)
            return VerificationTask(
                entry["source"], name=entry.get("name"), options=options
            )
        return self.task(entry)

    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, Any]:
        """Session-level counters: scheduler, store, checker and its caches."""
        stats = {
            "tasks_run": self.tasks_run,
            "warm_starts": self.warm_starts,
            "predicates_banked": self.predicates_banked,
            "programs_known": len(self.store),
            "checker": self.checker.statistics(),
            "checker_caches": self.checker.cache_sizes(),
        }
        if self.last_supervisor is not None:
            stats["supervision"] = self.last_supervisor.statistics()
        return stats
