"""The supervised execution layer: pools that survive crashes, hangs and worse.

Historically a batch ran through ``pool.map``: one worker segfault (or
OOM-kill, or injected ``os._exit``) raised ``BrokenProcessPool`` in the
parent and lost *every* task's result, and one hung worker blocked the batch
forever.  The :class:`Supervisor` replaces that with per-task futures and an
explicit failure policy:

* **individual submission** — each task is its own future; completed results
  are collected as they finish and are never discarded because an unrelated
  task failed;
* **per-task wall-clock timeouts** — a worker that exceeds ``task_timeout``
  is declared hung, its process is killed, and the pool is rebuilt;
* **crash detection** — a dead worker breaks the pool; the supervisor
  records a structured failure for every in-flight task, rebuilds the pool,
  and resubmits;
* **capped exponential backoff retries** — failures attributable to a task
  (unambiguous crash / timeout / worker exception) consume its retry budget
  (:class:`RetryPolicy`); collateral losses (the pool died underneath an
  innocent task, or broke with several tasks in flight — the guilty one is
  indistinguishable) are retried without charge.  Retries run on a fresh
  worker, optionally with degraded options (halved budgets);
* **graceful degradation** — when the pool breaks more than
  ``max_pool_rebuilds`` times (or cannot be created at all), the remaining
  tasks run in-process sequentially.  Slower, but the batch completes;
* **no escaping exceptions** — every task always yields a result document.
  A task that exhausts its retries yields verdict ``unknown`` with a
  structured ``failure`` record and its ``attempts`` count (result schema
  version 2) instead of raising.

Fault injection (:mod:`repro.core.faults`) hooks the worker entry point:
an installed :class:`~repro.core.faults.FaultPlan` travels into each worker
inside the task payload, so injected crashes genuinely kill worker processes
and every policy above is exercised by deterministic tier-1 tests.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from . import faults
from .faults import FaultPlan

__all__ = [
    "RetryPolicy",
    "Supervisor",
    "failure_record",
    "failure_doc",
    "supervised_call",
]

#: Failure kinds a supervised task can accumulate.
FAILURE_KINDS = ("crash", "timeout", "worker-error", "pool-broken", "pool-lost")


@dataclass(frozen=True)
class RetryPolicy:
    """How failed tasks are retried.

    ``max_retries`` bounds *charged* failures per task (crash / timeout /
    worker exception); collateral pool losses are free.  The backoff before
    retry ``n`` is ``backoff_base * backoff_factor**n`` capped at
    ``backoff_max`` seconds.  With ``degrade`` set, each retry halves the
    task's resource budgets (``max_nodes`` / ``max_seconds`` /
    ``max_solver_calls`` and ``max_predicates_per_location`` where set) —
    off by default because a degraded retry may legitimately return a
    different (weaker) verdict than the original budget would have.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    degrade: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay(self, charged_failures: int) -> float:
        """Backoff before the retry following the ``n``-th charged failure."""
        if charged_failures <= 0:
            return 0.0
        return min(
            self.backoff_base * self.backoff_factor ** (charged_failures - 1),
            self.backoff_max,
        )


def failure_record(
    kind: str, message: str, attempt: int, elapsed: Optional[float] = None
) -> dict[str, Any]:
    """One structured failure: what went wrong on which attempt."""
    record: dict[str, Any] = {"kind": kind, "message": message, "attempt": attempt}
    if elapsed is not None:
        record["elapsed_seconds"] = round(elapsed, 3)
    return record


def failure_doc(
    name: str, failures: list[dict[str, Any]], attempts: int
) -> dict[str, Any]:
    """The schema-v2 document of a task that exhausted its retries.

    Verdict ``unknown`` — the task was never decided — with the terminal
    failure under ``failure``, the full per-attempt history under
    ``failures`` and the attempt count under ``attempts``.  Never raises
    into the caller: this document *is* the exception, structured.
    """
    from .engine import RESULT_SCHEMA_VERSION

    last = failures[-1] if failures else failure_record("pool-lost", "unknown", 0)
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "name": name,
        "verdict": "unknown",
        "reason": (
            f"task execution failed after {attempts} attempt(s): "
            f"{last['kind']}: {last['message']}"
        ),
        "failure": last,
        "failures": failures,
        "attempts": attempts,
    }


# ----------------------------------------------------------------------
# The worker entry point (module-level: must pickle into pool workers)
# ----------------------------------------------------------------------
def supervised_call(worker: Callable[[dict], dict], payload: dict[str, Any]) -> dict:
    """Run one task under the (optional) shipped fault plan.

    Strips the supervisor's control keys (``_attempt`` / ``_task_keys`` /
    ``_faults`` / ``_in_worker``) before delegating, installs the fault plan
    for the duration of the call, and fires the ``task`` site — which is
    where an injected crash ``os._exit``\\ s the worker process.
    """
    payload = dict(payload)
    attempt = payload.pop("_attempt", 0)
    keys = payload.pop("_task_keys", (payload.get("name", "*"),))
    plan_payload = payload.pop("_faults", None)
    in_worker = payload.pop("_in_worker", True)
    plan = FaultPlan.from_payload(plan_payload) if plan_payload else None
    previous = faults.active_plan()
    if plan is not None:
        faults.install(plan)
    try:
        faults.fire("task", keys, attempt, in_worker=in_worker)
        return worker(payload)
    finally:
        if plan is not None:
            if previous is not None:
                faults.install(previous)
            else:
                faults.uninstall()


@dataclass
class _Supervised:
    """Per-task supervision state."""

    index: int
    payload: dict[str, Any]
    keys: tuple[str, ...]
    name: str
    attempts: int = 0
    charged: int = 0
    failures: list[dict[str, Any]] = field(default_factory=list)
    doc: Optional[dict[str, Any]] = None
    not_before: float = 0.0
    started: float = 0.0


class Supervisor:
    """Run a batch of task payloads to completion, whatever the workers do.

    ``worker`` is the module-level task function (defaults to the engine's
    batch worker); it must be picklable and must return a result document.
    ``jobs`` is the pool width (``<= 1`` runs everything in-process unless
    ``force_pool`` asks for process isolation even for a single task).
    ``task_timeout`` is the per-task wall-clock bound, enforced by killing
    the worker's process — it is therefore only enforceable in pool mode;
    the in-process fallback notes a hang but cannot preempt it (injected
    hangs raise there instead, see :mod:`repro.core.faults`).

    :meth:`run_batch` returns one document per payload, in input order, and
    never raises for a task-level failure.
    """

    #: Scheduler poll interval while futures are in flight.
    poll_seconds = 0.02
    #: How many times a broken pool is rebuilt before degrading to
    #: in-process sequential execution.
    max_pool_rebuilds = 3

    def __init__(
        self,
        worker: Optional[Callable[[dict], dict]] = None,
        jobs: Optional[int] = None,
        task_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_pool_rebuilds: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        force_pool: bool = False,
        mp_context: Optional[Any] = None,
    ) -> None:
        if worker is None:
            from .engine import _run_batch_task

            worker = _run_batch_task
        self.worker = worker
        self.jobs = max(1, jobs or 1)
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0 or None, got {task_timeout}")
        self.task_timeout = task_timeout
        self.retry = retry or RetryPolicy()
        #: The plan shipped into every worker (defaults to the plan installed
        #: in this process, so ``with installed(plan):`` covers pools too).
        self.fault_plan = fault_plan if fault_plan is not None else faults.active_plan()
        if max_pool_rebuilds is not None:
            self.max_pool_rebuilds = max_pool_rebuilds
        #: Use the pool path even at ``jobs == 1`` — process isolation for a
        #: single task (the daemon's ``worker_backend="process"`` runs every
        #: request this way so a hard worker death cannot take the service).
        self.force_pool = force_pool
        #: Multiprocessing context (or start-method name) for pool workers.
        #: A multi-threaded parent must not ``fork`` mid-lock — pass
        #: ``"forkserver"`` or ``"spawn"`` there.
        if isinstance(mp_context, str):
            import multiprocessing

            mp_context = multiprocessing.get_context(mp_context)
        self.mp_context = mp_context
        self._sleep = sleep
        # Counters (see statistics()).
        self.tasks_supervised = 0
        self.retries = 0
        self.crashes = 0
        self.timeouts = 0
        self.worker_errors = 0
        self.pool_rebuilds = 0
        self.collateral_requeues = 0
        self.tasks_recovered = 0
        self.tasks_failed = 0
        self.degraded_to_sequential = False

    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, Any]:
        """Supervision counters for session stats and batch provenance."""
        return {
            "task_timeout": self.task_timeout,
            "max_retries": self.retry.max_retries,
            "tasks_supervised": self.tasks_supervised,
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "worker_errors": self.worker_errors,
            "pool_rebuilds": self.pool_rebuilds,
            "collateral_requeues": self.collateral_requeues,
            "tasks_recovered": self.tasks_recovered,
            "tasks_failed": self.tasks_failed,
            "degraded_to_sequential": self.degraded_to_sequential,
        }

    # ------------------------------------------------------------------
    def run_batch(
        self,
        payloads: Sequence[dict[str, Any]],
        keys: Optional[Sequence[Sequence[str]]] = None,
    ) -> list[dict[str, Any]]:
        """Run every payload to a result document (input order preserved).

        ``keys`` optionally gives each task extra fault/reporting keys
        (e.g. its program fingerprint) beyond its payload ``name``.
        """
        tasks = []
        for index, payload in enumerate(payloads):
            name = str(payload.get("name", f"task{index}"))
            extra = tuple(str(k) for k in (keys[index] if keys else ()))
            task_keys = (name,) + tuple(k for k in extra if k != name)
            tasks.append(_Supervised(index, payload, task_keys, name))
        self.tasks_supervised += len(tasks)
        if len(tasks) == 0:
            return []
        if self.jobs > 1 or self.force_pool:
            self._run_pool(tasks)
        else:
            self._run_sequential(tasks)
        docs = []
        for task in tasks:
            if task.doc is None:  # exhausted retries (or pool lost it for good)
                self.tasks_failed += 1
                task.doc = failure_doc(task.name, task.failures, task.attempts)
            elif task.failures:
                self.tasks_recovered += 1
                task.doc.setdefault("failures", task.failures)
            task.doc.setdefault("attempts", max(task.attempts, 1))
            docs.append(task.doc)
        return docs

    # ------------------------------------------------------------------
    # Pool scheduling
    # ------------------------------------------------------------------
    def _run_pool(self, tasks: list[_Supervised]) -> None:
        try:
            from concurrent.futures import FIRST_COMPLETED, wait
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:  # pragma: no cover - no concurrent.futures
            self._degrade(tasks)
            return

        queue = deque(tasks)
        inflight: dict[Any, _Supervised] = {}
        executor: Optional[ProcessPoolExecutor] = None

        def teardown(kill: bool) -> None:
            nonlocal executor
            if executor is None:
                return
            if kill:
                self._kill_workers(executor)
            try:
                executor.shutdown(wait=not kill, cancel_futures=True)
            except Exception:  # pragma: no cover - defensive
                pass
            executor = None

        def fail_inflight(kind: str, message: str, charged: bool) -> None:
            """Record a failure for every in-flight task and requeue/settle."""
            for future, task in list(inflight.items()):
                future.cancel()
                self._record_failure(
                    task,
                    kind,
                    message,
                    charged=charged,
                    elapsed=time.monotonic() - task.started,
                )
                if not charged:
                    self.collateral_requeues += 1
                self._requeue_or_fail(task, queue)
            inflight.clear()

        try:
            while queue or inflight:
                if executor is None:
                    if self.pool_rebuilds > self.max_pool_rebuilds:
                        break  # degrade below
                    try:
                        if self.mp_context is not None:
                            executor = ProcessPoolExecutor(
                                max_workers=self.jobs, mp_context=self.mp_context
                            )
                        else:
                            executor = ProcessPoolExecutor(max_workers=self.jobs)
                    except (OSError, PermissionError, ImportError):
                        break  # platform refuses pools: degrade below
                # Fill free slots with ready tasks (backoff-respecting).
                now = time.monotonic()
                deferred = []
                while queue and len(inflight) < self.jobs:
                    task = queue.popleft()
                    if task.not_before > now:
                        deferred.append(task)
                        continue
                    task.attempts += 1
                    task.started = now
                    try:
                        future = executor.submit(
                            supervised_call, self.worker, self._decorate(task)
                        )
                    except Exception as error:
                        # Submitting to a broken/shutting-down pool.
                        queue.appendleft(task)
                        task.attempts -= 1
                        fail_inflight("pool-broken", repr(error), charged=False)
                        teardown(kill=False)
                        self.pool_rebuilds += 1
                        break
                    inflight[future] = task
                queue.extend(deferred)
                if executor is None:
                    continue
                if not inflight:
                    if queue:
                        # Everything is backing off; sleep to the nearest slot.
                        pause = max(
                            min(task.not_before for task in queue) - time.monotonic(),
                            0.0,
                        )
                        self._sleep(min(pause, self.retry.backoff_max) or self.poll_seconds)
                        continue
                    break
                done, _ = wait(
                    list(inflight), timeout=self.poll_seconds,
                    return_when=FIRST_COMPLETED,
                )
                broken_tasks: list[tuple[_Supervised, float]] = []
                for future in done:
                    task = inflight.pop(future)
                    elapsed = time.monotonic() - task.started
                    try:
                        task.doc = future.result()
                    except BrokenProcessPool:
                        broken_tasks.append((task, elapsed))
                    except Exception as error:
                        self.worker_errors += 1
                        self._record_failure(
                            task, "worker-error", repr(error),
                            charged=True, elapsed=elapsed,
                        )
                        self._requeue_or_fail(task, queue)
                if broken_tasks:
                    # A dead worker breaks the whole pool, so *every* task in
                    # flight surfaces BrokenProcessPool and the guilty one is
                    # indistinguishable from its innocent siblings.  Charge
                    # the retry budget only when exactly one task was in
                    # flight (unambiguous guilt); otherwise retry everyone
                    # for free — a serial crasher is still bounded by the
                    # pool-rebuild cap and is convicted in degraded
                    # sequential mode, where attribution is exact.
                    charged = len(broken_tasks) == 1 and not inflight
                    for task, elapsed in broken_tasks:
                        self.crashes += 1
                        self._record_failure(
                            task, "crash",
                            "worker process died (BrokenProcessPool)",
                            charged=charged, elapsed=elapsed,
                        )
                        if not charged:
                            self.collateral_requeues += 1
                        self._requeue_or_fail(task, queue)
                    # Anything still in flight is collateral too.
                    fail_inflight(
                        "pool-broken", "pool broke under a concurrent task",
                        charged=False,
                    )
                    teardown(kill=False)
                    self.pool_rebuilds += 1
                    continue
                # Hang detection: kill the pool when any in-flight task
                # exceeds its wall-clock budget.
                if self.task_timeout is not None and inflight:
                    now = time.monotonic()
                    hung = [
                        (future, task)
                        for future, task in inflight.items()
                        if now - task.started > self.task_timeout
                        and not future.done()
                    ]
                    if hung:
                        for future, task in hung:
                            del inflight[future]
                            self.timeouts += 1
                            self._record_failure(
                                task, "timeout",
                                f"task exceeded the {self.task_timeout}s timeout; "
                                "worker killed",
                                charged=True, elapsed=now - task.started,
                            )
                            self._requeue_or_fail(task, queue)
                        fail_inflight(
                            "pool-broken",
                            "pool killed to recover a hung sibling task",
                            charged=False,
                        )
                        teardown(kill=True)
                        self.pool_rebuilds += 1
        finally:
            # On a normal exit nothing is in flight and a graceful shutdown
            # is free.  On an exceptional exit (KeyboardInterrupt, a test
            # timeout) tasks may still be running — possibly wedged — and
            # shutdown(wait=True) would block on them forever: kill instead.
            teardown(kill=bool(inflight))
        if queue:
            # The pool broke repeatedly (or never existed): finish in-process.
            self._degrade(list(queue))

    def _decorate(self, task: _Supervised) -> dict[str, Any]:
        """The per-attempt payload: control keys plus optional degradation."""
        payload = dict(task.payload)
        payload["_attempt"] = task.attempts - 1  # 0-based attempt number
        payload["_task_keys"] = task.keys
        payload["_in_worker"] = True
        if self.fault_plan is not None:
            payload["_faults"] = self.fault_plan.to_payload()
        if self.retry.degrade and task.charged > 0:
            payload = self._degraded_payload(payload, task.charged)
        return payload

    @staticmethod
    def _degraded_payload(payload: dict[str, Any], retries: int) -> dict[str, Any]:
        """Halve resource budgets once per charged retry (floor 1)."""
        payload = dict(payload)
        factor = 2 ** retries
        budget = dict(payload.get("budget") or {})
        for knob in ("max_nodes", "max_seconds", "max_solver_calls"):
            if budget.get(knob) is not None:
                budget[knob] = max(budget[knob] / factor, 1)
                if knob != "max_seconds":
                    budget[knob] = max(int(budget[knob]), 1)
        payload["budget"] = budget
        cap = payload.get("max_predicates_per_location")
        if cap is not None:
            payload["max_predicates_per_location"] = max(cap // factor, 1)
        return payload

    def _record_failure(
        self,
        task: _Supervised,
        kind: str,
        message: str,
        charged: bool,
        elapsed: Optional[float] = None,
    ) -> None:
        task.failures.append(
            failure_record(kind, message, task.attempts - 1, elapsed)
        )
        if charged:
            task.charged += 1

    def _requeue_or_fail(self, task: _Supervised, queue: deque) -> None:
        """Queue a retry with backoff, unless the retry budget is exhausted."""
        if task.charged > self.retry.max_retries:
            return  # run_batch turns the missing doc into a failure doc
        self.retries += 1
        task.not_before = time.monotonic() + self.retry.delay(task.charged)
        queue.append(task)

    @staticmethod
    def _kill_workers(executor: Any) -> None:
        """Forcibly terminate an executor's worker processes (hang recovery).

        ``ProcessPoolExecutor`` has no public kill; its ``_processes`` map
        has been stable since 3.7 and killing via it is the only way to
        reclaim a truly wedged worker.  Defensive: missing attributes mean
        we fall back to abandoning the processes.
        """
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already dead
                pass

    # ------------------------------------------------------------------
    # In-process sequential execution (degraded mode and jobs=1)
    # ------------------------------------------------------------------
    def _run_sequential(self, tasks: list[_Supervised]) -> None:
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            pause = task.not_before - time.monotonic()
            if pause > 0:
                self._sleep(pause)
            task.attempts += 1
            task.started = time.monotonic()
            payload = self._decorate(task)
            payload["_in_worker"] = False
            try:
                task.doc = supervised_call(self.worker, payload)
            except Exception as error:
                # In-process, an injected crash/hang surfaces as an exception
                # (there is no worker process to kill); classify it the way
                # the pool path would have.
                from .faults import InjectedCrash, InjectedHang

                if isinstance(error, InjectedCrash):
                    kind = "crash"
                    self.crashes += 1
                elif isinstance(error, InjectedHang):
                    kind = "timeout"
                    self.timeouts += 1
                else:
                    kind = "worker-error"
                    self.worker_errors += 1
                self._record_failure(
                    task, kind, repr(error), charged=True,
                    elapsed=time.monotonic() - task.started,
                )
                self._requeue_or_fail(task, queue)

    def _degrade(self, tasks: list[_Supervised]) -> None:
        self.degraded_to_sequential = True
        self._run_sequential(tasks)
